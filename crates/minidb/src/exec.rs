//! Query execution: predicate evaluation, index-assisted scans, joins.

use crate::error::DbError;
use crate::sql::ast::{AggFunc, CmpOp, ColumnRef, Expr, Operand, OrderDir, SelectItem, SelectStmt};
use crate::table::Table;
use crate::value::{like_match, Value};

/// A resolved column: which table in the join order, which column index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Resolved {
    table_idx: usize,
    col_idx: usize,
}

/// The execution context: the ordered list of tables in the FROM/JOIN
/// chain.
pub(crate) struct ExecContext<'a> {
    tables: Vec<(&'a str, &'a Table)>,
}

impl<'a> ExecContext<'a> {
    pub(crate) fn new(tables: Vec<(&'a str, &'a Table)>) -> Self {
        ExecContext { tables }
    }

    fn resolve(&self, col: &ColumnRef) -> Result<Resolved, DbError> {
        match &col.table {
            Some(t) => {
                let table_idx = self
                    .tables
                    .iter()
                    .position(|(name, _)| name.eq_ignore_ascii_case(t))
                    .ok_or_else(|| DbError::UnknownTable { table: t.clone() })?;
                let col_idx = self.tables[table_idx]
                    .1
                    .schema()
                    .column_index(&col.column)
                    .ok_or_else(|| DbError::UnknownColumn { column: col.to_string() })?;
                Ok(Resolved { table_idx, col_idx })
            }
            None => {
                let mut found = None;
                for (table_idx, (_, table)) in self.tables.iter().enumerate() {
                    if let Some(col_idx) = table.schema().column_index(&col.column) {
                        if found.is_some() {
                            return Err(DbError::AmbiguousColumn { column: col.column.clone() });
                        }
                        found = Some(Resolved { table_idx, col_idx });
                    }
                }
                found.ok_or_else(|| DbError::UnknownColumn { column: col.column.clone() })
            }
        }
    }

    /// Evaluates a predicate over one joined row (a slice of per-table
    /// rows). SQL three-valued logic collapses UNKNOWN to false at the
    /// top.
    fn eval(&self, expr: &Expr, rows: &[&[Value]]) -> Result<Option<bool>, DbError> {
        Ok(match expr {
            Expr::Compare { left, op, right } => {
                let l = self.value_of(left, rows)?;
                let r = match right {
                    Operand::Literal(v) => v.clone(),
                    Operand::Column(c) => self.value_of(c, rows)?,
                };
                l.compare(&r).map(|ord| match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => !ord.is_eq(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                })
            }
            Expr::Like { column, pattern, negated } => {
                let v = self.value_of(column, rows)?;
                match v {
                    Value::Null => None,
                    Value::Text(s) => Some(like_match(&s, pattern) != *negated),
                    other => Some(like_match(&other.render(), pattern) != *negated),
                }
            }
            Expr::IsNull { column, negated } => {
                let v = self.value_of(column, rows)?;
                Some(v.is_null() != *negated)
            }
            Expr::And(a, b) => match (self.eval(a, rows)?, self.eval(b, rows)?) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            Expr::Or(a, b) => match (self.eval(a, rows)?, self.eval(b, rows)?) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            Expr::Not(e) => self.eval(e, rows)?.map(|b| !b),
        })
    }

    fn value_of(&self, col: &ColumnRef, rows: &[&[Value]]) -> Result<Value, DbError> {
        let r = self.resolve(col)?;
        Ok(rows[r.table_idx][r.col_idx].clone())
    }
}

/// Runs a SELECT over the given table chain (base table first, joined
/// tables in join order). Returns `(column_names, rows)`.
pub(crate) fn run_select(
    stmt: &SelectStmt,
    ctx: &ExecContext<'_>,
) -> Result<(Vec<String>, Vec<Vec<Value>>), DbError> {
    // Aggregation takes a separate path.
    if stmt.has_aggregates() || stmt.group_by.is_some() {
        return run_aggregate_select(stmt, ctx);
    }

    // Validate projection and predicate up front so errors surface even on
    // empty tables.
    let plain_columns: Vec<&ColumnRef> = stmt
        .projection
        .iter()
        .map(|item| match item {
            SelectItem::Column(c) => Ok(c),
            SelectItem::Aggregate { .. } => unreachable!("aggregates handled above"),
        })
        .collect::<Result<_, DbError>>()?;
    let projection: Vec<Resolved> = if plain_columns.is_empty() {
        ctx.tables
            .iter()
            .enumerate()
            .flat_map(|(ti, (_, t))| {
                (0..t.schema().arity()).map(move |ci| Resolved { table_idx: ti, col_idx: ci })
            })
            .collect()
    } else {
        plain_columns.iter().map(|c| ctx.resolve(c)).collect::<Result<_, _>>()?
    };
    let names: Vec<String> = if plain_columns.is_empty() {
        ctx.tables
            .iter()
            .flat_map(|(_, t)| t.schema().columns().iter().map(|c| c.name().to_string()))
            .collect()
    } else {
        plain_columns.iter().map(|c| c.column.clone()).collect()
    };
    if let Some(pred) = &stmt.predicate {
        validate_expr(pred, ctx)?;
    }
    let order = match &stmt.order_by {
        Some((col, dir)) => Some((ctx.resolve(col)?, *dir)),
        None => None,
    };

    // Join: start from the base table's candidate rows, then nested-loop
    // (index-assisted on the right side) through the join clauses.
    let base = ctx.tables[0].1;
    let base_rids = candidate_rows(stmt, ctx, base)?;

    let mut joined: Vec<Vec<&[Value]>> =
        base_rids.into_iter().filter_map(|rid| base.row(rid).map(|r| vec![r])).collect();

    for (ji, join) in stmt.joins.iter().enumerate() {
        let right_table = ctx.tables[ji + 1].1;
        let left = ctx.resolve(&join.left)?;
        let right = ctx.resolve(&join.right)?;
        // Normalize: `probe` is the side already materialized, `build` the
        // new table.
        let (probe, build) = if right.table_idx == ji + 1 {
            (left, right)
        } else if left.table_idx == ji + 1 {
            (right, left)
        } else {
            return Err(DbError::TypeMismatch {
                message: format!("join condition does not reference table `{}`", join.table),
            });
        };
        if probe.table_idx > ji {
            return Err(DbError::TypeMismatch {
                message: format!("join condition for `{}` references a later table", join.table),
            });
        }
        let mut next: Vec<Vec<&[Value]>> = Vec::new();
        for row_chain in joined {
            let key = &row_chain[probe.table_idx][probe.col_idx];
            for rid in right_table.lookup(build.col_idx, key) {
                if let Some(r) = right_table.row(rid) {
                    let mut chain = row_chain.clone();
                    chain.push(r);
                    next.push(chain);
                }
            }
        }
        joined = next;
    }

    // Filter.
    let mut result_rows: Vec<Vec<Value>> = Vec::new();
    let mut order_keys: Vec<Value> = Vec::new();
    for chain in &joined {
        if let Some(pred) = &stmt.predicate {
            if ctx.eval(pred, chain)? != Some(true) {
                continue;
            }
        }
        if let Some((r, _)) = &order {
            order_keys.push(chain[r.table_idx][r.col_idx].clone());
        }
        result_rows
            .push(projection.iter().map(|r| chain[r.table_idx][r.col_idx].clone()).collect());
    }

    // Distinct: keep the first occurrence of each projected row
    // (applied before ORDER BY so order keys stay aligned).
    if stmt.distinct {
        let mut seen = std::collections::BTreeSet::new();
        let mut kept_rows = Vec::with_capacity(result_rows.len());
        let mut kept_keys = Vec::with_capacity(order_keys.len());
        for (i, row) in result_rows.into_iter().enumerate() {
            if seen.insert(row.clone()) {
                if let Some(k) = order_keys.get(i) {
                    kept_keys.push(k.clone());
                }
                kept_rows.push(row);
            }
        }
        result_rows = kept_rows;
        order_keys = kept_keys;
    }

    // Order.
    if let Some((_, dir)) = order {
        let mut pairs: Vec<(Value, Vec<Value>)> = order_keys.into_iter().zip(result_rows).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        if dir == OrderDir::Desc {
            pairs.reverse();
        }
        result_rows = pairs.into_iter().map(|(_, r)| r).collect();
    }

    // Limit.
    if let Some(n) = stmt.limit {
        result_rows.truncate(n);
    }

    Ok((names, result_rows))
}

/// SELECT with aggregates and/or GROUP BY.
///
/// Rules: plain columns in the projection must be the GROUP BY column;
/// ORDER BY may reference only the GROUP BY column; without GROUP BY the
/// whole filtered input forms one group.
fn run_aggregate_select(
    stmt: &SelectStmt,
    ctx: &ExecContext<'_>,
) -> Result<(Vec<String>, Vec<Vec<Value>>), DbError> {
    let group_col = match &stmt.group_by {
        Some(c) => Some(ctx.resolve(c)?),
        None => None,
    };

    // Validate projection items.
    let mut names: Vec<String> = Vec::with_capacity(stmt.projection.len());
    enum Output {
        Group,
        Agg(AggFunc, Option<Resolved>),
    }
    let mut outputs: Vec<Output> = Vec::with_capacity(stmt.projection.len());
    for item in &stmt.projection {
        match item {
            SelectItem::Column(c) => {
                let r = ctx.resolve(c)?;
                match group_col {
                    Some(g) if g == r => {
                        names.push(c.column.clone());
                        outputs.push(Output::Group);
                    }
                    _ => {
                        return Err(DbError::TypeMismatch {
                            message: format!(
                                "column `{c}` must appear in GROUP BY or inside an aggregate"
                            ),
                        })
                    }
                }
            }
            SelectItem::Aggregate { func, arg } => {
                let resolved = match arg {
                    Some(c) => {
                        names.push(format!("{}({})", func.name(), c.column));
                        Some(ctx.resolve(c)?)
                    }
                    None => {
                        names.push(format!("{}(*)", func.name()));
                        None
                    }
                };
                if resolved.is_none() && *func != AggFunc::Count {
                    return Err(DbError::TypeMismatch {
                        message: format!("{}(*) is not valid", func.name()),
                    });
                }
                outputs.push(Output::Agg(*func, resolved));
            }
        }
    }
    if outputs.is_empty() {
        return Err(DbError::TypeMismatch {
            message: "aggregate query needs a projection".to_string(),
        });
    }
    if let Some(pred) = &stmt.predicate {
        validate_expr(pred, ctx)?;
    }
    // ORDER BY: only the grouped column.
    let order_dir = match &stmt.order_by {
        Some((col, dir)) => {
            let r = ctx.resolve(col)?;
            if group_col != Some(r) {
                return Err(DbError::TypeMismatch {
                    message: "ORDER BY in an aggregate query must use the GROUP BY column"
                        .to_string(),
                });
            }
            Some(*dir)
        }
        None => None,
    };

    // Collect the filtered row chains (joins reuse the plain path by
    // rebuilding the chain here).
    let chains = build_filtered_chains(stmt, ctx)?;

    // Group.
    let mut groups: std::collections::BTreeMap<Option<Value>, Vec<&Vec<Value>>> =
        std::collections::BTreeMap::new();
    let flat: Vec<Vec<Value>> = chains;
    for row in &flat {
        let key = group_col.map(|g| row[flat_index(ctx, g)].clone());
        groups.entry(key).or_default().push(row);
    }
    if group_col.is_none() && groups.is_empty() {
        // One empty group so global aggregates return a row.
        groups.insert(None, Vec::new());
    }

    let mut result_rows: Vec<Vec<Value>> = Vec::new();
    for (key, rows) in &groups {
        let mut out = Vec::with_capacity(outputs.len());
        for o in &outputs {
            match o {
                Output::Group => out.push(key.clone().unwrap_or(Value::Null)),
                Output::Agg(func, arg) => {
                    out.push(aggregate(*func, *arg, rows, ctx));
                }
            }
        }
        result_rows.push(out);
    }
    // BTreeMap iteration is ascending by group key already.
    if order_dir == Some(OrderDir::Desc) {
        result_rows.reverse();
    }
    if let Some(n) = stmt.limit {
        result_rows.truncate(n);
    }
    Ok((names, result_rows))
}

/// Builds fully-joined, predicate-filtered rows flattened into one
/// `Vec<Value>` per chain (columns of all tables concatenated).
fn build_filtered_chains(
    stmt: &SelectStmt,
    ctx: &ExecContext<'_>,
) -> Result<Vec<Vec<Value>>, DbError> {
    let base = ctx.tables[0].1;
    let base_rids = candidate_rows(stmt, ctx, base)?;
    let mut joined: Vec<Vec<&[Value]>> =
        base_rids.into_iter().filter_map(|rid| base.row(rid).map(|r| vec![r])).collect();
    for (ji, join) in stmt.joins.iter().enumerate() {
        let right_table = ctx.tables[ji + 1].1;
        let left = ctx.resolve(&join.left)?;
        let right = ctx.resolve(&join.right)?;
        let (probe, build) = if right.table_idx == ji + 1 {
            (left, right)
        } else if left.table_idx == ji + 1 {
            (right, left)
        } else {
            return Err(DbError::TypeMismatch {
                message: format!("join condition does not reference table `{}`", join.table),
            });
        };
        let mut next: Vec<Vec<&[Value]>> = Vec::new();
        for row_chain in joined {
            let key = &row_chain[probe.table_idx][probe.col_idx];
            for rid in right_table.lookup(build.col_idx, key) {
                if let Some(r) = right_table.row(rid) {
                    let mut chain = row_chain.clone();
                    chain.push(r);
                    next.push(chain);
                }
            }
        }
        joined = next;
    }
    let mut out = Vec::new();
    for chain in &joined {
        if let Some(pred) = &stmt.predicate {
            if ctx.eval(pred, chain)? != Some(true) {
                continue;
            }
        }
        out.push(chain.iter().flat_map(|r| r.iter().cloned()).collect());
    }
    Ok(out)
}

/// Flattened column index of a resolved `(table, column)` pair.
fn flat_index(ctx: &ExecContext<'_>, r: Resolved) -> usize {
    ctx.tables[..r.table_idx].iter().map(|(_, t)| t.schema().arity()).sum::<usize>() + r.col_idx
}

fn aggregate(
    func: AggFunc,
    arg: Option<Resolved>,
    rows: &[&Vec<Value>],
    ctx: &ExecContext<'_>,
) -> Value {
    let values = |r: Resolved| {
        let idx = flat_index(ctx, r);
        rows.iter().map(move |row| &row[idx]).filter(|v| !v.is_null())
    };
    match (func, arg) {
        (AggFunc::Count, None) => Value::Int(rows.len() as i64),
        (AggFunc::Count, Some(r)) => Value::Int(values(r).count() as i64),
        (AggFunc::Sum, Some(r)) => {
            let nums: Vec<f64> = values(r).filter_map(|v| v.as_float()).collect();
            if nums.is_empty() {
                Value::Null
            } else if values(r).all(|v| v.as_int().is_some()) {
                Value::Int(nums.iter().sum::<f64>() as i64)
            } else {
                Value::Float(nums.iter().sum())
            }
        }
        (AggFunc::Avg, Some(r)) => {
            let nums: Vec<f64> = values(r).filter_map(|v| v.as_float()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        (AggFunc::Min, Some(r)) => {
            values(r).min_by(|a, b| a.total_cmp(b)).cloned().unwrap_or(Value::Null)
        }
        (AggFunc::Max, Some(r)) => {
            values(r).max_by(|a, b| a.total_cmp(b)).cloned().unwrap_or(Value::Null)
        }
        (_, None) => Value::Null, // unreachable: validated earlier
    }
}

/// Chooses base-table candidate rows: if the predicate contains a
/// top-level (conjunctive) equality on an indexed base column, use the
/// index; otherwise scan.
fn candidate_rows(
    stmt: &SelectStmt,
    ctx: &ExecContext<'_>,
    base: &Table,
) -> Result<Vec<usize>, DbError> {
    if let Some(pred) = &stmt.predicate {
        let mut eqs: Vec<(&ColumnRef, &Value)> = Vec::new();
        collect_conjunctive_equalities(pred, &mut eqs);
        for (col, val) in eqs {
            if let Ok(r) = ctx.resolve(col) {
                if r.table_idx == 0 && base.has_index(r.col_idx) {
                    return Ok(base.lookup(r.col_idx, val));
                }
            }
        }
    }
    Ok(base.scan().map(|(rid, _)| rid).collect())
}

fn collect_conjunctive_equalities<'e>(expr: &'e Expr, out: &mut Vec<(&'e ColumnRef, &'e Value)>) {
    match expr {
        Expr::Compare { left, op: CmpOp::Eq, right: Operand::Literal(v) } => {
            out.push((left, v));
        }
        Expr::And(a, b) => {
            collect_conjunctive_equalities(a, out);
            collect_conjunctive_equalities(b, out);
        }
        _ => {}
    }
}

/// Validates every column reference in an expression.
pub(crate) fn validate_expr(expr: &Expr, ctx: &ExecContext<'_>) -> Result<(), DbError> {
    match expr {
        Expr::Compare { left, right, .. } => {
            ctx.resolve(left)?;
            if let Operand::Column(c) = right {
                ctx.resolve(c)?;
            }
            Ok(())
        }
        Expr::Like { column, .. } | Expr::IsNull { column, .. } => ctx.resolve(column).map(drop),
        Expr::And(a, b) | Expr::Or(a, b) => {
            validate_expr(a, ctx)?;
            validate_expr(b, ctx)
        }
        Expr::Not(e) => validate_expr(e, ctx),
    }
}

/// Evaluates a predicate against a single table's row (used by UPDATE and
/// DELETE).
pub(crate) fn eval_single(
    expr: &Expr,
    table_name: &str,
    table: &Table,
    row: &[Value],
) -> Result<bool, DbError> {
    let ctx = ExecContext::new(vec![(table_name, table)]);
    Ok(ctx.eval(expr, &[row])? == Some(true))
}
