//! Error type for the relational engine.

use std::error::Error;
use std::fmt;

/// An error produced while parsing or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL syntax error.
    Syntax {
        /// Byte position in the statement.
        position: usize,
        /// Description.
        message: String,
    },
    /// Referenced table does not exist.
    UnknownTable {
        /// Table name.
        table: String,
    },
    /// Referenced column does not exist.
    UnknownColumn {
        /// Column name as written.
        column: String,
    },
    /// Table created twice.
    DuplicateTable {
        /// Table name.
        table: String,
    },
    /// Ambiguous unqualified column in a join.
    AmbiguousColumn {
        /// Column name.
        column: String,
    },
    /// Value count or type mismatch on insert/update.
    TypeMismatch {
        /// Description of the mismatch.
        message: String,
    },
    /// A primary-key constraint was violated.
    ConstraintViolation {
        /// Description.
        message: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Syntax { position, message } => {
                write!(f, "sql syntax error at byte {position}: {message}")
            }
            DbError::UnknownTable { table } => write!(f, "unknown table `{table}`"),
            DbError::UnknownColumn { column } => write!(f, "unknown column `{column}`"),
            DbError::DuplicateTable { table } => write!(f, "table `{table}` already exists"),
            DbError::AmbiguousColumn { column } => write!(f, "ambiguous column `{column}`"),
            DbError::TypeMismatch { message } => write!(f, "type mismatch: {message}"),
            DbError::ConstraintViolation { message } => {
                write!(f, "constraint violation: {message}")
            }
        }
    }
}

impl Error for DbError {}
