//! Property tests for the ontology layer: hierarchy laws, closure
//! consistency, serialization round-trips, path resolution.

use proptest::prelude::*;
use s2s_owl::{AttributePath, Ontology, Reasoner};

/// Strategy: a random class tree of 1..=20 classes (each class's parent
/// is an earlier class or none), with 0..=2 properties per class.
fn arb_ontology() -> impl Strategy<Value = Ontology> {
    (
        proptest::collection::vec(proptest::option::of(0usize..20), 1..20),
        proptest::collection::vec(0usize..3, 1..20),
    )
        .prop_map(|(parents, prop_counts)| {
            let n = parents.len();
            let mut b = Ontology::builder("http://prop.example/#");
            for (i, parent_pick) in parents.iter().enumerate().take(n) {
                let parent = parent_pick.filter(|&p| p < i).map(|p| format!("K{p}"));
                b = b.class(&format!("K{i}"), parent.as_deref()).unwrap();
            }
            for (i, &count) in prop_counts.iter().take(n).enumerate() {
                for j in 0..count {
                    b = b
                        .datatype_property(
                            &format!("q{i}x{j}"),
                            &format!("K{i}"),
                            "http://www.w3.org/2001/XMLSchema#string",
                        )
                        .unwrap();
                }
            }
            b.build().unwrap()
        })
}

proptest! {
    /// Subsumption is reflexive and transitive; the reasoner closure
    /// agrees with the ontology's on-demand computation.
    #[test]
    fn subsumption_laws(o in arb_ontology()) {
        let r = Reasoner::new(&o);
        let classes: Vec<_> = o.classes().map(|c| c.iri().clone()).collect();
        for a in &classes {
            prop_assert!(o.is_subclass_of(a, a));
            prop_assert!(r.subsumes(a, a));
            for b in &classes {
                prop_assert_eq!(o.is_subclass_of(a, b), r.subsumes(b, a));
                for c in &classes {
                    if o.is_subclass_of(a, b) && o.is_subclass_of(b, c) {
                        prop_assert!(o.is_subclass_of(a, c));
                    }
                }
            }
        }
    }

    /// subclasses() and superclasses() are inverse relations.
    #[test]
    fn sub_super_inverse(o in arb_ontology()) {
        let classes: Vec<_> = o.classes().map(|c| c.iri().clone()).collect();
        for a in &classes {
            for b in o.subclasses(a) {
                prop_assert!(o.superclasses(&b).contains(a));
            }
            for s in o.superclasses(a) {
                prop_assert!(o.subclasses(&s).contains(a));
            }
        }
    }

    /// RDF serialization round-trips the structure.
    #[test]
    fn rdf_roundtrip(o in arb_ontology()) {
        let g = s2s_owl::serialize::to_graph(&o);
        let o2 = s2s_owl::serialize::from_graph(&g, "http://prop.example/#").unwrap();
        prop_assert_eq!(o2.class_count(), o.class_count());
        prop_assert_eq!(o2.property_count(), o.property_count());
        // Subsumption preserved.
        let classes: Vec<_> = o.classes().map(|c| c.iri().clone()).collect();
        for a in &classes {
            for b in &classes {
                prop_assert_eq!(o.is_subclass_of(a, b), o2.is_subclass_of(a, b));
            }
        }
    }

    /// Every generated canonical path resolves back to its own
    /// class/property pair.
    #[test]
    fn path_roundtrip(o in arb_ontology()) {
        for class in o.classes() {
            for prop in o.properties_of_class(class.iri()) {
                let path =
                    AttributePath::for_attribute(&o, class.iri(), prop.iri()).unwrap();
                let resolved = path.resolve(&o).unwrap();
                prop_assert_eq!(&resolved.class, class.iri());
                prop_assert_eq!(&resolved.property, prop.iri());
                // And the textual form re-parses to the same path.
                let reparsed: AttributePath = path.to_string().parse().unwrap();
                prop_assert_eq!(reparsed, path);
            }
        }
    }

    /// properties_of_class grows monotonically down the hierarchy: a
    /// subclass sees at least its superclass's attributes.
    #[test]
    fn attribute_inheritance_monotone(o in arb_ontology()) {
        for class in o.classes() {
            let own: Vec<_> =
                o.properties_of_class(class.iri()).iter().map(|p| p.iri().clone()).collect();
            for sub in o.subclasses(class.iri()) {
                let sub_props: Vec<_> =
                    o.properties_of_class(&sub).iter().map(|p| p.iri().clone()).collect();
                for p in &own {
                    prop_assert!(sub_props.contains(p));
                }
            }
        }
    }

    /// Materialization is idempotent and only ever adds type triples for
    /// superclasses of asserted types.
    #[test]
    fn materialization_idempotent(o in arb_ontology(), picks in proptest::collection::vec(0usize..20, 0..6)) {
        use s2s_rdf::{Graph, Iri, Triple};
        let classes: Vec<_> = o.classes().map(|c| c.iri().clone()).collect();
        let mut g = Graph::new();
        for (i, &pick) in picks.iter().enumerate() {
            let class = &classes[pick % classes.len()];
            let ind = Iri::new(format!("http://prop.example/data/i{i}")).unwrap();
            g.insert(Triple::new(ind, s2s_rdf::vocab::rdf::type_(), class.clone()));
        }
        let r = Reasoner::new(&o);
        r.materialize(&mut g);
        let len = g.len();
        prop_assert_eq!(r.materialize(&mut g), 0);
        prop_assert_eq!(g.len(), len);
    }
}
