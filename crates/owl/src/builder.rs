//! Fluent construction of [`Ontology`] values.

use std::collections::{BTreeMap, BTreeSet};

use s2s_rdf::{Iri, Literal};

use crate::error::OwlError;
use crate::model::{ClassParts, Ontology, PropertyKind, PropertyParts, Restriction};

/// Builds an [`Ontology`] incrementally.
///
/// Names may be given as local names (resolved against the builder's
/// namespace) or as full IRIs. Classes must be declared before they are
/// referenced as parents or domains, which rules out dangling references
/// and — together with the cycle check in [`OntologyBuilder::build`] —
/// guarantees a well-formed hierarchy.
///
/// # Examples
///
/// ```
/// use s2s_owl::Ontology;
///
/// # fn main() -> Result<(), s2s_owl::OwlError> {
/// let onto = Ontology::builder("http://example.org/schema#")
///     .class("Product", None)?
///     .class("Watch", Some("Product"))?
///     .datatype_property("brand", "Product", "http://www.w3.org/2001/XMLSchema#string")?
///     .build()?;
/// assert_eq!(onto.class_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OntologyBuilder {
    namespace: String,
    classes: BTreeMap<Iri, ClassBuild>,
    properties: BTreeMap<Iri, PropertyBuild>,
}

#[derive(Debug)]
struct ClassBuild {
    label: Option<String>,
    comment: Option<String>,
    parents: BTreeSet<Iri>,
    disjoint_with: BTreeSet<Iri>,
    equivalent_to: BTreeSet<Iri>,
    restrictions: Vec<Restriction>,
}

#[derive(Debug)]
struct PropertyBuild {
    kind: PropertyKind,
    label: Option<String>,
    domains: BTreeSet<Iri>,
    ranges: BTreeSet<Iri>,
    functional: bool,
    parents: BTreeSet<Iri>,
    inverse_of: Option<Iri>,
}

impl OntologyBuilder {
    pub(crate) fn new(namespace: impl Into<String>) -> Self {
        OntologyBuilder {
            namespace: namespace.into(),
            classes: BTreeMap::new(),
            properties: BTreeMap::new(),
        }
    }

    fn resolve(&self, name: &str) -> Result<Iri, OwlError> {
        let iri = if name.contains(':') {
            Iri::new(name)?
        } else {
            Iri::new(format!("{}{}", self.namespace, name))?
        };
        Ok(iri)
    }

    fn known_class(&self, name: &str) -> Result<Iri, OwlError> {
        let iri = self.resolve(name)?;
        if self.classes.contains_key(&iri) {
            Ok(iri)
        } else {
            Err(OwlError::UnknownClass { name: name.to_string() })
        }
    }

    fn known_property(&self, name: &str) -> Result<Iri, OwlError> {
        let iri = self.resolve(name)?;
        if self.properties.contains_key(&iri) {
            Ok(iri)
        } else {
            Err(OwlError::UnknownProperty { name: name.to_string() })
        }
    }

    /// Declares a class, optionally as a subclass of `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::Duplicate`] if the class was already declared
    /// and [`OwlError::UnknownClass`] if `parent` has not been declared.
    pub fn class(mut self, name: &str, parent: Option<&str>) -> Result<Self, OwlError> {
        let iri = self.resolve(name)?;
        if self.classes.contains_key(&iri) {
            return Err(OwlError::Duplicate { name: name.to_string() });
        }
        let mut parents = BTreeSet::new();
        if let Some(parent) = parent {
            parents.insert(self.known_class(parent)?);
        }
        self.classes.insert(
            iri,
            ClassBuild {
                label: None,
                comment: None,
                parents,
                disjoint_with: BTreeSet::new(),
                equivalent_to: BTreeSet::new(),
                restrictions: Vec::new(),
            },
        );
        Ok(self)
    }

    /// Adds an additional superclass to an existing class.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`] if either class is undeclared.
    pub fn subclass_of(mut self, class: &str, parent: &str) -> Result<Self, OwlError> {
        let class_iri = self.known_class(class)?;
        let parent_iri = self.known_class(parent)?;
        self.classes.get_mut(&class_iri).expect("checked").parents.insert(parent_iri);
        Ok(self)
    }

    /// Sets `rdfs:label` on a class.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`] if the class is undeclared.
    pub fn class_label(mut self, class: &str, label: &str) -> Result<Self, OwlError> {
        let iri = self.known_class(class)?;
        self.classes.get_mut(&iri).expect("checked").label = Some(label.to_string());
        Ok(self)
    }

    /// Sets `rdfs:comment` on a class.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`] if the class is undeclared.
    pub fn class_comment(mut self, class: &str, comment: &str) -> Result<Self, OwlError> {
        let iri = self.known_class(class)?;
        self.classes.get_mut(&iri).expect("checked").comment = Some(comment.to_string());
        Ok(self)
    }

    /// Declares two classes disjoint.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`] if either class is undeclared.
    pub fn disjoint(mut self, a: &str, b: &str) -> Result<Self, OwlError> {
        let ia = self.known_class(a)?;
        let ib = self.known_class(b)?;
        self.classes.get_mut(&ia).expect("checked").disjoint_with.insert(ib.clone());
        self.classes.get_mut(&ib).expect("checked").disjoint_with.insert(ia);
        Ok(self)
    }

    /// Declares two classes equivalent (`owl:equivalentClass`):
    /// mutual subsumption, shared attributes, shared instances under
    /// materialization.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`] if either class is undeclared.
    pub fn equivalent(mut self, a: &str, b: &str) -> Result<Self, OwlError> {
        let ia = self.known_class(a)?;
        let ib = self.known_class(b)?;
        if ia != ib {
            self.classes.get_mut(&ia).expect("checked").equivalent_to.insert(ib.clone());
            self.classes.get_mut(&ib).expect("checked").equivalent_to.insert(ia);
        }
        Ok(self)
    }

    /// Declares two object properties inverse of each other
    /// (`owl:inverseOf`); materialization mirrors every triple.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownProperty`] if either property is
    /// undeclared.
    pub fn inverse(mut self, a: &str, b: &str) -> Result<Self, OwlError> {
        let ia = self.known_property(a)?;
        let ib = self.known_property(b)?;
        self.properties.get_mut(&ia).expect("checked").inverse_of = Some(ib.clone());
        self.properties.get_mut(&ib).expect("checked").inverse_of = Some(ia);
        Ok(self)
    }

    /// Declares a datatype property with one domain class and a datatype
    /// range IRI (e.g. `xsd:string`).
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::Duplicate`] on redeclaration and
    /// [`OwlError::UnknownClass`] if the domain is undeclared.
    pub fn datatype_property(
        mut self,
        name: &str,
        domain: &str,
        range: &str,
    ) -> Result<Self, OwlError> {
        let iri = self.resolve(name)?;
        if self.properties.contains_key(&iri) {
            return Err(OwlError::Duplicate { name: name.to_string() });
        }
        let domain = self.known_class(domain)?;
        let range = Iri::new(range)?;
        self.properties.insert(
            iri,
            PropertyBuild {
                kind: PropertyKind::Datatype,
                label: None,
                domains: BTreeSet::from([domain]),
                ranges: BTreeSet::from([range]),
                functional: false,
                parents: BTreeSet::new(),
                inverse_of: None,
            },
        );
        Ok(self)
    }

    /// Declares an object property between two declared classes.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::Duplicate`] on redeclaration and
    /// [`OwlError::UnknownClass`] if domain or range is undeclared.
    pub fn object_property(
        mut self,
        name: &str,
        domain: &str,
        range: &str,
    ) -> Result<Self, OwlError> {
        let iri = self.resolve(name)?;
        if self.properties.contains_key(&iri) {
            return Err(OwlError::Duplicate { name: name.to_string() });
        }
        let domain = self.known_class(domain)?;
        let range = self.known_class(range)?;
        self.properties.insert(
            iri,
            PropertyBuild {
                kind: PropertyKind::Object,
                label: None,
                domains: BTreeSet::from([domain]),
                ranges: BTreeSet::from([range]),
                functional: false,
                parents: BTreeSet::new(),
                inverse_of: None,
            },
        );
        Ok(self)
    }

    /// Marks a property functional (at most one value per individual).
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownProperty`] if the property is
    /// undeclared.
    pub fn functional(mut self, property: &str) -> Result<Self, OwlError> {
        let iri = self.known_property(property)?;
        self.properties.get_mut(&iri).expect("checked").functional = true;
        Ok(self)
    }

    /// Declares `sub` a subproperty of `sup`.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownProperty`] if either is undeclared.
    pub fn subproperty_of(mut self, sub: &str, sup: &str) -> Result<Self, OwlError> {
        let sub_iri = self.known_property(sub)?;
        let sup_iri = self.known_property(sup)?;
        self.properties.get_mut(&sub_iri).expect("checked").parents.insert(sup_iri);
        Ok(self)
    }

    /// Adds an additional domain class to a property.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownProperty`]/[`OwlError::UnknownClass`] as
    /// appropriate.
    pub fn property_domain(mut self, property: &str, domain: &str) -> Result<Self, OwlError> {
        let p = self.known_property(property)?;
        let d = self.known_class(domain)?;
        self.properties.get_mut(&p).expect("checked").domains.insert(d);
        Ok(self)
    }

    /// Attaches a minimum-cardinality restriction to a class.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`]/[`OwlError::UnknownProperty`] as
    /// appropriate.
    pub fn min_cardinality(
        mut self,
        class: &str,
        property: &str,
        min: u32,
    ) -> Result<Self, OwlError> {
        let c = self.known_class(class)?;
        let p = self.known_property(property)?;
        self.classes
            .get_mut(&c)
            .expect("checked")
            .restrictions
            .push(Restriction::MinCardinality { property: p, min });
        Ok(self)
    }

    /// Attaches a maximum-cardinality restriction to a class.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`]/[`OwlError::UnknownProperty`] as
    /// appropriate.
    pub fn max_cardinality(
        mut self,
        class: &str,
        property: &str,
        max: u32,
    ) -> Result<Self, OwlError> {
        let c = self.known_class(class)?;
        let p = self.known_property(property)?;
        self.classes
            .get_mut(&c)
            .expect("checked")
            .restrictions
            .push(Restriction::MaxCardinality { property: p, max });
        Ok(self)
    }

    /// Attaches an `owl:hasValue` restriction to a class.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`]/[`OwlError::UnknownProperty`] as
    /// appropriate.
    pub fn has_value(
        mut self,
        class: &str,
        property: &str,
        value: Literal,
    ) -> Result<Self, OwlError> {
        let c = self.known_class(class)?;
        let p = self.known_property(property)?;
        self.classes
            .get_mut(&c)
            .expect("checked")
            .restrictions
            .push(Restriction::HasValue { property: p, value });
        Ok(self)
    }

    /// Attaches an `owl:someValuesFrom` restriction to a class.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`]/[`OwlError::UnknownProperty`] as
    /// appropriate.
    pub fn some_values_from(
        mut self,
        class: &str,
        property: &str,
        filler: &str,
    ) -> Result<Self, OwlError> {
        let c = self.known_class(class)?;
        let p = self.known_property(property)?;
        let f = self.known_class(filler)?;
        self.classes
            .get_mut(&c)
            .expect("checked")
            .restrictions
            .push(Restriction::SomeValuesFrom { property: p, class: f });
        Ok(self)
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::HierarchyCycle`] if the subclass graph is
    /// cyclic.
    pub fn build(self) -> Result<Ontology, OwlError> {
        // Cycle detection over the subclass graph (depth-first, 3-color).
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: BTreeMap<&Iri, Color> =
            self.classes.keys().map(|k| (k, Color::White)).collect();

        fn visit<'a>(
            node: &'a Iri,
            classes: &'a BTreeMap<Iri, ClassBuild>,
            color: &mut BTreeMap<&'a Iri, Color>,
        ) -> Result<(), OwlError> {
            match color.get(node).copied() {
                Some(Color::Black) | None => return Ok(()),
                Some(Color::Grey) => {
                    return Err(OwlError::HierarchyCycle { on: node.as_str().to_string() })
                }
                Some(Color::White) => {}
            }
            color.insert(node, Color::Grey);
            if let Some(def) = classes.get(node) {
                for parent in &def.parents {
                    visit(parent, classes, color)?;
                }
            }
            color.insert(node, Color::Black);
            Ok(())
        }

        let keys: Vec<&Iri> = self.classes.keys().collect();
        for k in keys {
            visit(k, &self.classes, &mut color)?;
        }

        let classes = self
            .classes
            .into_iter()
            .map(|(iri, b)| {
                (
                    iri.clone(),
                    ClassParts {
                        iri,
                        label: b.label,
                        comment: b.comment,
                        parents: b.parents,
                        disjoint_with: b.disjoint_with,
                        equivalent_to: b.equivalent_to,
                        restrictions: b.restrictions,
                    }
                    .into(),
                )
            })
            .collect();
        let properties = self
            .properties
            .into_iter()
            .map(|(iri, b)| {
                (
                    iri.clone(),
                    PropertyParts {
                        iri,
                        kind: b.kind,
                        label: b.label,
                        domains: b.domains,
                        ranges: b.ranges,
                        functional: b.functional,
                        parents: b.parents,
                        inverse_of: b.inverse_of,
                    }
                    .into(),
                )
            })
            .collect();
        Ok(Ontology::from_parts(self.namespace, classes, properties))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_class_rejected() {
        let r = Ontology::builder("http://x.org/#").class("A", None).unwrap().class("A", None);
        assert!(matches!(r, Err(OwlError::Duplicate { .. })));
    }

    #[test]
    fn unknown_parent_rejected() {
        let r = Ontology::builder("http://x.org/#").class("A", Some("Missing"));
        assert!(matches!(r, Err(OwlError::UnknownClass { .. })));
    }

    #[test]
    fn cycle_detected() {
        let r = Ontology::builder("http://x.org/#")
            .class("A", None)
            .unwrap()
            .class("B", Some("A"))
            .unwrap()
            .subclass_of("A", "B")
            .unwrap()
            .build();
        assert!(matches!(r, Err(OwlError::HierarchyCycle { .. })));
    }

    #[test]
    fn self_cycle_detected() {
        let r = Ontology::builder("http://x.org/#")
            .class("A", None)
            .unwrap()
            .subclass_of("A", "A")
            .unwrap()
            .build();
        assert!(matches!(r, Err(OwlError::HierarchyCycle { .. })));
    }

    #[test]
    fn multiple_inheritance_allowed() {
        let o = Ontology::builder("http://x.org/#")
            .class("A", None)
            .unwrap()
            .class("B", None)
            .unwrap()
            .class("C", Some("A"))
            .unwrap()
            .subclass_of("C", "B")
            .unwrap()
            .build()
            .unwrap();
        let c = o.class_iri("C").unwrap();
        assert_eq!(o.superclasses(&c).len(), 2);
    }

    #[test]
    fn restrictions_attach() {
        let o = Ontology::builder("http://x.org/#")
            .class("Watch", None)
            .unwrap()
            .datatype_property("brand", "Watch", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .min_cardinality("Watch", "brand", 1)
            .unwrap()
            .max_cardinality("Watch", "brand", 1)
            .unwrap()
            .has_value("Watch", "brand", Literal::string("Seiko"))
            .unwrap()
            .build()
            .unwrap();
        let w = o.class_iri("Watch").unwrap();
        assert_eq!(o.class(&w).unwrap().restrictions().len(), 3);
    }

    #[test]
    fn labels_and_comments() {
        let o = Ontology::builder("http://x.org/#")
            .class("A", None)
            .unwrap()
            .class_label("A", "Class A")
            .unwrap()
            .class_comment("A", "first class")
            .unwrap()
            .build()
            .unwrap();
        let a = o.class_iri("A").unwrap();
        assert_eq!(o.class(&a).unwrap().label(), Some("Class A"));
        assert_eq!(o.class(&a).unwrap().comment(), Some("first class"));
    }

    #[test]
    fn functional_and_subproperty() {
        let o = Ontology::builder("http://x.org/#")
            .class("A", None)
            .unwrap()
            .datatype_property("id", "A", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .datatype_property("key", "A", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .functional("id")
            .unwrap()
            .subproperty_of("key", "id")
            .unwrap()
            .build()
            .unwrap();
        let id = o.property_iri("id").unwrap();
        assert!(o.property(&id).unwrap().functional());
        let key = o.property_iri("key").unwrap();
        assert_eq!(o.property(&key).unwrap().parents().count(), 1);
    }

    #[test]
    fn disjointness_recorded_symmetrically() {
        let o = Ontology::builder("http://x.org/#")
            .class("A", None)
            .unwrap()
            .class("B", None)
            .unwrap()
            .disjoint("A", "B")
            .unwrap()
            .build()
            .unwrap();
        let a = o.class_iri("A").unwrap();
        let b = o.class_iri("B").unwrap();
        assert!(o.class(&a).unwrap().disjoint_with().any(|x| x == &b));
        assert!(o.class(&b).unwrap().disjoint_with().any(|x| x == &a));
    }
}
