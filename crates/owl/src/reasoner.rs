//! Structural reasoner over an [`Ontology`] and instance graphs.
//!
//! The reproduction bands note the Rust ecosystem has "ontology reasoning
//! missing" — so this module supplies the reasoning the S2S middleware
//! needs, implemented from scratch:
//!
//! * **subsumption closure** — materialize all transitive
//!   `rdfs:subClassOf` facts,
//! * **type inference** — `rdfs:domain`/`rdfs:range` based typing of
//!   individuals plus supertype propagation,
//! * **realization** — most-specific classes of each individual,
//! * **consistency checking** — disjointness, functional-property,
//!   cardinality, and datatype-range violations over an instance graph.

use std::collections::{BTreeMap, BTreeSet};

use s2s_rdf::vocab::{rdf, xsd};
use s2s_rdf::{Graph, Iri, Literal, Term, Triple};

use crate::model::{Ontology, PropertyKind, Restriction};

/// A consistency problem found in an instance graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyIssue {
    /// An individual is typed by two disjoint classes.
    DisjointViolation {
        /// The individual.
        individual: Term,
        /// First class.
        class_a: Iri,
        /// Second (disjoint) class.
        class_b: Iri,
    },
    /// A functional property has more than one value.
    FunctionalViolation {
        /// The individual.
        individual: Term,
        /// The functional property.
        property: Iri,
        /// Number of distinct values found.
        count: usize,
    },
    /// A cardinality restriction is violated.
    CardinalityViolation {
        /// The individual.
        individual: Term,
        /// The restricted property.
        property: Iri,
        /// The class carrying the restriction.
        on_class: Iri,
        /// Number of values found.
        found: usize,
        /// Human-readable bound description (e.g. `min 1`, `max 1`).
        bound: String,
    },
    /// A datatype-property value does not conform to the declared range.
    RangeViolation {
        /// The individual.
        individual: Term,
        /// The property.
        property: Iri,
        /// The offending value.
        value: Literal,
        /// The expected datatype.
        expected: Iri,
    },
}

impl std::fmt::Display for ConsistencyIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyIssue::DisjointViolation { individual, class_a, class_b } => write!(
                f,
                "{individual} is typed by disjoint classes {} and {}",
                class_a.local_name(),
                class_b.local_name()
            ),
            ConsistencyIssue::FunctionalViolation { individual, property, count } => write!(
                f,
                "{individual} has {count} values for functional property {}",
                property.local_name()
            ),
            ConsistencyIssue::CardinalityViolation {
                individual,
                property,
                on_class,
                found,
                bound,
            } => write!(
                f,
                "{individual} violates {bound} on {} (class {}): found {found}",
                property.local_name(),
                on_class.local_name()
            ),
            ConsistencyIssue::RangeViolation { individual, property, value, expected } => write!(
                f,
                "{individual}.{} = {value} does not conform to {}",
                property.local_name(),
                expected.local_name()
            ),
        }
    }
}

/// A reasoner bound to one ontology.
///
/// Precomputes the subsumption closure at construction; all query methods
/// are then cheap lookups.
///
/// # Examples
///
/// ```
/// use s2s_owl::{Ontology, Reasoner};
///
/// # fn main() -> Result<(), s2s_owl::OwlError> {
/// let onto = Ontology::builder("http://example.org/schema#")
///     .class("Product", None)?
///     .class("Watch", Some("Product"))?
///     .build()?;
/// let reasoner = Reasoner::new(&onto);
/// let watch = onto.class_iri("Watch")?;
/// let product = onto.class_iri("Product")?;
/// assert!(reasoner.subsumes(&product, &watch));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reasoner<'o> {
    ontology: &'o Ontology,
    /// class → all transitive superclasses (excluding itself).
    closure: BTreeMap<Iri, BTreeSet<Iri>>,
}

impl<'o> Reasoner<'o> {
    /// Builds the reasoner, computing the subsumption closure.
    pub fn new(ontology: &'o Ontology) -> Self {
        let mut closure: BTreeMap<Iri, BTreeSet<Iri>> = BTreeMap::new();
        for class in ontology.classes() {
            let supers: BTreeSet<Iri> = ontology.superclasses(class.iri()).into_iter().collect();
            closure.insert(class.iri().clone(), supers);
        }
        Reasoner { ontology, closure }
    }

    /// The ontology this reasoner is bound to.
    pub fn ontology(&self) -> &Ontology {
        self.ontology
    }

    /// Whether `sup` subsumes `sub` (reflexive).
    pub fn subsumes(&self, sup: &Iri, sub: &Iri) -> bool {
        sup == sub || self.closure.get(sub).is_some_and(|s| s.contains(sup))
    }

    /// All superclasses of `class` from the precomputed closure.
    pub fn superclasses(&self, class: &Iri) -> impl Iterator<Item = &Iri> {
        self.closure.get(class).into_iter().flatten()
    }

    /// Materializes inferred triples into `graph`:
    ///
    /// 1. domain typing: `(s, p, o)` with `p` having domain `C` adds
    ///    `(s, rdf:type, C)`;
    /// 2. range typing for object properties: adds `(o, rdf:type, R)`;
    /// 3. supertype propagation: `(s, rdf:type, C)` and `C ⊑ D` adds
    ///    `(s, rdf:type, D)` (equivalent classes are in the closure, so
    ///    their members are cross-typed too);
    /// 4. subproperty and inverse-property propagation.
    ///
    /// Returns the number of triples added. Runs passes to fixpoint
    /// (inverse-property triples can enable further domain/range
    /// typings).
    pub fn materialize(&self, graph: &mut Graph) -> usize {
        let mut total = 0;
        loop {
            let added = self.materialize_pass(graph);
            total += added;
            if added == 0 {
                return total;
            }
        }
    }

    fn materialize_pass(&self, graph: &mut Graph) -> usize {
        let rdf_type = rdf::type_();
        let mut new_triples: Vec<Triple> = Vec::new();

        for t in graph.iter() {
            if t.predicate() == &rdf_type {
                if let Some(class) = t.object().as_iri() {
                    for sup in self.superclasses(class) {
                        new_triples.push(Triple::new(
                            t.subject().clone(),
                            rdf_type.clone(),
                            sup.clone(),
                        ));
                    }
                }
                continue;
            }
            if let Some(prop) = self.ontology.property(t.predicate()) {
                for domain in prop.domains() {
                    new_triples.push(Triple::new(
                        t.subject().clone(),
                        rdf_type.clone(),
                        domain.clone(),
                    ));
                    for sup in self.superclasses(domain) {
                        new_triples.push(Triple::new(
                            t.subject().clone(),
                            rdf_type.clone(),
                            sup.clone(),
                        ));
                    }
                }
                if prop.kind() == PropertyKind::Object && t.object().is_subject() {
                    for range in prop.ranges() {
                        if self.ontology.class(range).is_some() {
                            new_triples.push(Triple::new(
                                t.object().clone(),
                                rdf_type.clone(),
                                range.clone(),
                            ));
                            for sup in self.superclasses(range) {
                                new_triples.push(Triple::new(
                                    t.object().clone(),
                                    rdf_type.clone(),
                                    sup.clone(),
                                ));
                            }
                        }
                    }
                }
                // Subproperty propagation: p ⊑ q ⇒ (s, q, o).
                for parent in prop.parents() {
                    new_triples.push(Triple::new(
                        t.subject().clone(),
                        parent.clone(),
                        t.object().clone(),
                    ));
                }
                // Inverse propagation: p ≡ q⁻ ⇒ (o, q, s).
                if let Some(inverse) = prop.inverse_of() {
                    if t.object().is_subject() {
                        if let Some(triple) = Triple::try_new(
                            t.object().clone(),
                            inverse.clone(),
                            t.subject().clone(),
                        ) {
                            new_triples.push(triple);
                        }
                    }
                }
            }
        }

        let mut added = 0;
        for t in new_triples {
            if graph.insert(t) {
                added += 1;
            }
        }
        added
    }

    /// The most specific classes of `individual` in `graph` (asserted or
    /// materialized types with no asserted subtype also present).
    pub fn realize(&self, graph: &Graph, individual: &Term) -> Vec<Iri> {
        let rdf_type = rdf::type_();
        let types: BTreeSet<Iri> =
            graph.objects(individual, &rdf_type).filter_map(|o| o.as_iri().cloned()).collect();
        types
            .iter()
            .filter(|c| {
                // keep c iff no other asserted type is a strict subclass of c
                !types.iter().any(|d| d != *c && self.subsumes(c, d))
            })
            .cloned()
            .collect()
    }

    /// Checks `graph` for consistency issues against the ontology.
    ///
    /// Assumes types have been [`materialize`](Reasoner::materialize)d;
    /// call that first for complete results.
    pub fn check_consistency(&self, graph: &Graph) -> Vec<ConsistencyIssue> {
        let rdf_type = rdf::type_();
        let mut issues = Vec::new();

        // Collect (individual → asserted classes).
        let mut types: BTreeMap<Term, BTreeSet<Iri>> = BTreeMap::new();
        for t in graph.match_pattern(None, Some(&rdf_type), None) {
            if let Some(c) = t.object().as_iri() {
                types.entry(t.subject().clone()).or_default().insert(c.clone());
            }
        }

        // Disjointness.
        for (individual, classes) in &types {
            for a in classes {
                if let Some(def) = self.ontology.class(a) {
                    for b in def.disjoint_with() {
                        if classes.contains(b) && a < b {
                            issues.push(ConsistencyIssue::DisjointViolation {
                                individual: individual.clone(),
                                class_a: a.clone(),
                                class_b: b.clone(),
                            });
                        }
                    }
                }
            }
        }

        // Functional properties + datatype ranges.
        for prop in self.ontology.properties() {
            let subjects: BTreeSet<Term> = graph
                .match_pattern(None, Some(prop.iri()), None)
                .map(|t| t.subject().clone())
                .collect();
            for s in subjects {
                let values: Vec<Term> = graph.objects(&s, prop.iri()).collect();
                if prop.functional() && values.len() > 1 {
                    issues.push(ConsistencyIssue::FunctionalViolation {
                        individual: s.clone(),
                        property: prop.iri().clone(),
                        count: values.len(),
                    });
                }
                if prop.kind() == PropertyKind::Datatype {
                    for range in prop.ranges() {
                        for v in &values {
                            if let Some(lit) = v.as_literal() {
                                if !literal_conforms(lit, range) {
                                    issues.push(ConsistencyIssue::RangeViolation {
                                        individual: s.clone(),
                                        property: prop.iri().clone(),
                                        value: lit.clone(),
                                        expected: range.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        // Cardinality restrictions: apply to every individual typed by the
        // restricted class.
        for class in self.ontology.classes() {
            if class.restrictions().is_empty() {
                continue;
            }
            let class_term = Term::from(class.iri().clone());
            let members: Vec<Term> = graph.subjects(&rdf_type, &class_term).collect();
            for r in class.restrictions() {
                for m in &members {
                    let count = graph.objects(m, r.property()).count();
                    match r {
                        Restriction::MinCardinality { min, .. } if (count as u32) < *min => {
                            issues.push(ConsistencyIssue::CardinalityViolation {
                                individual: m.clone(),
                                property: r.property().clone(),
                                on_class: class.iri().clone(),
                                found: count,
                                bound: format!("min {min}"),
                            });
                        }
                        Restriction::MaxCardinality { max, .. } if (count as u32) > *max => {
                            issues.push(ConsistencyIssue::CardinalityViolation {
                                individual: m.clone(),
                                property: r.property().clone(),
                                on_class: class.iri().clone(),
                                found: count,
                                bound: format!("max {max}"),
                            });
                        }
                        _ => {}
                    }
                }
            }
        }

        issues
    }
}

/// Whether a literal's lexical form conforms to a datatype IRI.
///
/// Unknown datatypes conform trivially (open-world).
pub fn literal_conforms(lit: &Literal, datatype: &Iri) -> bool {
    match datatype.as_str() {
        xsd::STRING => true,
        xsd::INTEGER => lit.as_integer().is_some(),
        xsd::DECIMAL | xsd::DOUBLE => lit.as_decimal().is_some(),
        xsd::BOOLEAN => lit.as_boolean().is_some(),
        xsd::DATE => {
            let s = lit.lexical();
            let b: Vec<&str> = s.split('-').collect();
            b.len() == 3
                && b[0].len() == 4
                && b.iter().all(|p| p.chars().all(|c| c.is_ascii_digit()))
        }
        xsd::ANY_URI => Iri::new(lit.lexical()).is_ok(),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Ontology;

    fn onto() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .class("Watch", Some("Product"))
            .unwrap()
            .class("Provider", None)
            .unwrap()
            .disjoint("Product", "Provider")
            .unwrap()
            .datatype_property("brand", "Product", xsd::STRING)
            .unwrap()
            .datatype_property("price", "Product", xsd::DECIMAL)
            .unwrap()
            .object_property("provider", "Product", "Provider")
            .unwrap()
            .functional("price")
            .unwrap()
            .min_cardinality("Watch", "brand", 1)
            .unwrap()
            .build()
            .unwrap()
    }

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn ex(name: &str) -> Iri {
        iri(&format!("http://example.org/schema#{name}"))
    }

    fn ind(name: &str) -> Term {
        Term::from(iri(&format!("http://example.org/data/{name}")))
    }

    #[test]
    fn closure_subsumption() {
        let o = onto();
        let r = Reasoner::new(&o);
        assert!(r.subsumes(&ex("Product"), &ex("Watch")));
        assert!(r.subsumes(&ex("Watch"), &ex("Watch")));
        assert!(!r.subsumes(&ex("Watch"), &ex("Product")));
    }

    #[test]
    fn materialize_domain_and_supertypes() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        g.insert(Triple::new(
            ind("w1").as_iri().unwrap().clone(),
            ex("brand"),
            Literal::string("Seiko"),
        ));
        let added = r.materialize(&mut g);
        assert!(added >= 1, "added={added}");
        let types: Vec<_> = g.objects(&ind("w1"), &rdf::type_()).collect();
        assert!(types.contains(&Term::from(ex("Product"))));
    }

    #[test]
    fn materialize_range_typing_for_object_property() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        g.insert(Triple::new(
            ind("w1").as_iri().unwrap().clone(),
            ex("provider"),
            ind("casio").as_iri().unwrap().clone(),
        ));
        r.materialize(&mut g);
        let types: Vec<_> = g.objects(&ind("casio"), &rdf::type_()).collect();
        assert!(types.contains(&Term::from(ex("Provider"))));
    }

    #[test]
    fn materialize_supertype_propagation_from_asserted_type() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        g.insert(Triple::new(ind("w1").as_iri().unwrap().clone(), rdf::type_(), ex("Watch")));
        r.materialize(&mut g);
        let types: Vec<_> = g.objects(&ind("w1"), &rdf::type_()).collect();
        assert!(types.contains(&Term::from(ex("Product"))));
    }

    #[test]
    fn materialize_is_idempotent() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        g.insert(Triple::new(ind("w1").as_iri().unwrap().clone(), rdf::type_(), ex("Watch")));
        r.materialize(&mut g);
        let len = g.len();
        assert_eq!(r.materialize(&mut g), 0);
        assert_eq!(g.len(), len);
    }

    #[test]
    fn realization_picks_most_specific() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        g.insert(Triple::new(ind("w1").as_iri().unwrap().clone(), rdf::type_(), ex("Watch")));
        r.materialize(&mut g);
        let real = r.realize(&g, &ind("w1"));
        assert_eq!(real, vec![ex("Watch")]);
    }

    #[test]
    fn disjointness_detected() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        let w = ind("x").as_iri().unwrap().clone();
        g.insert(Triple::new(w.clone(), rdf::type_(), ex("Product")));
        g.insert(Triple::new(w, rdf::type_(), ex("Provider")));
        let issues = r.check_consistency(&g);
        assert!(
            issues.iter().any(|i| matches!(i, ConsistencyIssue::DisjointViolation { .. })),
            "{issues:?}"
        );
    }

    #[test]
    fn functional_violation_detected() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        let w = ind("w1").as_iri().unwrap().clone();
        g.insert(Triple::new(w.clone(), ex("price"), Literal::decimal(10.0)));
        g.insert(Triple::new(w, ex("price"), Literal::decimal(12.0)));
        let issues = r.check_consistency(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ConsistencyIssue::FunctionalViolation { count: 2, .. })));
    }

    #[test]
    fn min_cardinality_violation_detected() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        // A Watch with no brand violates min 1 brand.
        g.insert(Triple::new(ind("w1").as_iri().unwrap().clone(), rdf::type_(), ex("Watch")));
        let issues = r.check_consistency(&g);
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, ConsistencyIssue::CardinalityViolation { found: 0, .. })),
            "{issues:?}"
        );
    }

    #[test]
    fn range_violation_detected() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        g.insert(Triple::new(
            ind("w1").as_iri().unwrap().clone(),
            ex("price"),
            Literal::string("cheap"),
        ));
        let issues = r.check_consistency(&g);
        assert!(issues.iter().any(|i| matches!(i, ConsistencyIssue::RangeViolation { .. })));
    }

    #[test]
    fn consistent_graph_has_no_issues() {
        let o = onto();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        let w = ind("w1").as_iri().unwrap().clone();
        g.insert(Triple::new(w.clone(), rdf::type_(), ex("Watch")));
        g.insert(Triple::new(w.clone(), ex("brand"), Literal::string("Seiko")));
        g.insert(Triple::new(w, ex("price"), Literal::decimal(129.99)));
        r.materialize(&mut g);
        let issues = r.check_consistency(&g);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn literal_conformance_rules() {
        assert!(literal_conforms(&Literal::string("x"), &iri(xsd::STRING)));
        assert!(literal_conforms(&Literal::string("42"), &iri(xsd::INTEGER)));
        assert!(!literal_conforms(&Literal::string("x"), &iri(xsd::INTEGER)));
        assert!(literal_conforms(&Literal::string("1.5"), &iri(xsd::DECIMAL)));
        assert!(literal_conforms(&Literal::string("true"), &iri(xsd::BOOLEAN)));
        assert!(literal_conforms(&Literal::string("2026-07-04"), &iri(xsd::DATE)));
        assert!(!literal_conforms(&Literal::string("July 4"), &iri(xsd::DATE)));
        assert!(literal_conforms(&Literal::string("http://x.org/"), &iri(xsd::ANY_URI)));
        assert!(!literal_conforms(&Literal::string("not a uri"), &iri(xsd::ANY_URI)));
        // Unknown datatype: open world.
        assert!(literal_conforms(&Literal::string("?"), &iri("http://x.org/custom")));
    }

    #[test]
    fn inverse_property_mirrored() {
        let o = Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .class("Provider", None)
            .unwrap()
            .object_property("suppliedBy", "Product", "Provider")
            .unwrap()
            .object_property("supplies", "Provider", "Product")
            .unwrap()
            .inverse("suppliedBy", "supplies")
            .unwrap()
            .build()
            .unwrap();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        let w = iri("http://example.org/data/w1");
        let p = iri("http://example.org/data/acme");
        g.insert(Triple::new(w.clone(), ex("suppliedBy"), p.clone()));
        r.materialize(&mut g);
        // Mirror triple exists...
        assert!(g.contains(&Triple::new(p.clone(), ex("supplies"), w.clone())));
        // ...and its domain typing was applied in the fixpoint loop.
        let types: Vec<_> = g.objects(&Term::from(p), &rdf::type_()).collect();
        assert!(types.contains(&Term::from(ex("Provider"))), "{types:?}");
        // Idempotent.
        assert_eq!(r.materialize(&mut g), 0);
    }

    #[test]
    fn equivalent_classes_share_instances_and_attributes() {
        let o = Ontology::builder("http://example.org/schema#")
            .class("Car", None)
            .unwrap()
            .class("Automobile", None)
            .unwrap()
            .equivalent("Car", "Automobile")
            .unwrap()
            .datatype_property("vin", "Car", xsd::STRING)
            .unwrap()
            .build()
            .unwrap();
        // Mutual subsumption.
        assert!(o.is_subclass_of(&ex("Car"), &ex("Automobile")));
        assert!(o.is_subclass_of(&ex("Automobile"), &ex("Car")));
        // Attributes flow across the equivalence.
        let attrs = o.properties_of_class(&ex("Automobile"));
        assert!(attrs.iter().any(|p| p.iri().local_name() == "vin"));
        // Instances are cross-typed by materialization.
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        g.insert(Triple::new(iri("http://example.org/data/c1"), rdf::type_(), ex("Car")));
        r.materialize(&mut g);
        let types: Vec<_> =
            g.objects(&Term::from(iri("http://example.org/data/c1")), &rdf::type_()).collect();
        assert!(types.contains(&Term::from(ex("Automobile"))), "{types:?}");
    }

    #[test]
    fn subproperty_values_propagate() {
        let o = Ontology::builder("http://example.org/schema#")
            .class("A", None)
            .unwrap()
            .datatype_property("id", "A", xsd::STRING)
            .unwrap()
            .datatype_property("key", "A", xsd::STRING)
            .unwrap()
            .subproperty_of("key", "id")
            .unwrap()
            .build()
            .unwrap();
        let r = Reasoner::new(&o);
        let mut g = Graph::new();
        let a = iri("http://example.org/data/a1");
        g.insert(Triple::new(a.clone(), ex("key"), Literal::string("k1")));
        r.materialize(&mut g);
        let vals: Vec<_> = g.objects(&Term::from(a), &ex("id")).collect();
        assert_eq!(vals.len(), 1);
    }
}
