//! The ontology model: classes, properties, restrictions.

use std::collections::{BTreeMap, BTreeSet};

use s2s_rdf::{Iri, Literal};

use crate::error::OwlError;

/// The kind of an OWL property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PropertyKind {
    /// `owl:DatatypeProperty`: values are literals.
    Datatype,
    /// `owl:ObjectProperty`: values are individuals.
    Object,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    iri: Iri,
    label: Option<String>,
    comment: Option<String>,
    parents: BTreeSet<Iri>,
    disjoint_with: BTreeSet<Iri>,
    equivalent_to: BTreeSet<Iri>,
    restrictions: Vec<Restriction>,
}

impl ClassDef {
    /// The class IRI.
    pub fn iri(&self) -> &Iri {
        &self.iri
    }

    /// `rdfs:label`, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// `rdfs:comment`, if any.
    pub fn comment(&self) -> Option<&str> {
        self.comment.as_deref()
    }

    /// Direct superclasses.
    pub fn parents(&self) -> impl Iterator<Item = &Iri> {
        self.parents.iter()
    }

    /// Classes declared disjoint with this one.
    pub fn disjoint_with(&self) -> impl Iterator<Item = &Iri> {
        self.disjoint_with.iter()
    }

    /// Classes declared equivalent to this one (`owl:equivalentClass`).
    pub fn equivalent_to(&self) -> impl Iterator<Item = &Iri> {
        self.equivalent_to.iter()
    }

    /// Restrictions this class is a subclass of.
    pub fn restrictions(&self) -> &[Restriction] {
        &self.restrictions
    }
}

/// A property definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyDef {
    iri: Iri,
    kind: PropertyKind,
    label: Option<String>,
    domains: BTreeSet<Iri>,
    ranges: BTreeSet<Iri>,
    functional: bool,
    parents: BTreeSet<Iri>,
    inverse_of: Option<Iri>,
}

impl PropertyDef {
    /// The property IRI.
    pub fn iri(&self) -> &Iri {
        &self.iri
    }

    /// Datatype or object property.
    pub fn kind(&self) -> PropertyKind {
        self.kind
    }

    /// `rdfs:label`, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Declared `rdfs:domain` classes.
    pub fn domains(&self) -> impl Iterator<Item = &Iri> {
        self.domains.iter()
    }

    /// Declared `rdfs:range` classes or datatypes.
    pub fn ranges(&self) -> impl Iterator<Item = &Iri> {
        self.ranges.iter()
    }

    /// Whether the property is functional (at most one value).
    pub fn functional(&self) -> bool {
        self.functional
    }

    /// Direct superproperties.
    pub fn parents(&self) -> impl Iterator<Item = &Iri> {
        self.parents.iter()
    }

    /// The declared inverse property (`owl:inverseOf`), if any.
    pub fn inverse_of(&self) -> Option<&Iri> {
        self.inverse_of.as_ref()
    }
}

/// An OWL restriction attached to a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Restriction {
    /// `owl:minCardinality` on a property.
    MinCardinality {
        /// Restricted property.
        property: Iri,
        /// Minimum number of values.
        min: u32,
    },
    /// `owl:maxCardinality` on a property.
    MaxCardinality {
        /// Restricted property.
        property: Iri,
        /// Maximum number of values.
        max: u32,
    },
    /// `owl:hasValue` on a datatype property.
    HasValue {
        /// Restricted property.
        property: Iri,
        /// Required value.
        value: Literal,
    },
    /// `owl:someValuesFrom`: at least one value from the given class.
    SomeValuesFrom {
        /// Restricted property.
        property: Iri,
        /// Filler class.
        class: Iri,
    },
    /// `owl:allValuesFrom`: every value from the given class.
    AllValuesFrom {
        /// Restricted property.
        property: Iri,
        /// Filler class.
        class: Iri,
    },
}

impl Restriction {
    /// The property this restriction constrains.
    pub fn property(&self) -> &Iri {
        match self {
            Restriction::MinCardinality { property, .. }
            | Restriction::MaxCardinality { property, .. }
            | Restriction::HasValue { property, .. }
            | Restriction::SomeValuesFrom { property, .. }
            | Restriction::AllValuesFrom { property, .. } => property,
        }
    }
}

/// An OWL ontology: a namespace plus class and property definitions.
///
/// Construct with [`Ontology::builder`] or parse from RDF with
/// [`crate::serialize::from_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ontology {
    namespace: String,
    classes: BTreeMap<Iri, ClassDef>,
    properties: BTreeMap<Iri, PropertyDef>,
}

impl Ontology {
    /// Starts building an ontology rooted at `namespace` (a IRI prefix
    /// ending in `#` or `/`).
    pub fn builder(namespace: impl Into<String>) -> crate::builder::OntologyBuilder {
        crate::builder::OntologyBuilder::new(namespace)
    }

    pub(crate) fn from_parts(
        namespace: String,
        classes: BTreeMap<Iri, ClassDef>,
        properties: BTreeMap<Iri, PropertyDef>,
    ) -> Self {
        Ontology { namespace, classes, properties }
    }

    /// The ontology namespace prefix.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Resolves a local class name (or full IRI) to the class IRI.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`] if no such class is defined.
    pub fn class_iri(&self, name: &str) -> Result<Iri, OwlError> {
        self.resolve(name)
            .filter(|iri| self.classes.contains_key(iri))
            .ok_or_else(|| OwlError::UnknownClass { name: name.to_string() })
    }

    /// Resolves a local property name (or full IRI) to the property IRI.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownProperty`] if no such property is
    /// defined.
    pub fn property_iri(&self, name: &str) -> Result<Iri, OwlError> {
        self.resolve(name)
            .filter(|iri| self.properties.contains_key(iri))
            .ok_or_else(|| OwlError::UnknownProperty { name: name.to_string() })
    }

    fn resolve(&self, name: &str) -> Option<Iri> {
        if name.contains(':') {
            Iri::new(name).ok()
        } else {
            Iri::new(format!("{}{}", self.namespace, name)).ok()
        }
    }

    /// Looks up a class definition.
    pub fn class(&self, iri: &Iri) -> Option<&ClassDef> {
        self.classes.get(iri)
    }

    /// Looks up a property definition.
    pub fn property(&self, iri: &Iri) -> Option<&PropertyDef> {
        self.properties.get(iri)
    }

    /// Iterates over all classes in IRI order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }

    /// Iterates over all properties in IRI order.
    pub fn properties(&self) -> impl Iterator<Item = &PropertyDef> {
        self.properties.values()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of properties.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }

    /// Direct subclasses of `class`.
    pub fn direct_subclasses<'o>(&'o self, class: &'o Iri) -> impl Iterator<Item = &'o Iri> {
        self.classes.values().filter(move |c| c.parents.contains(class)).map(|c| &c.iri)
    }

    /// All (transitive) superclasses of `class`, excluding itself.
    ///
    /// Equivalent classes (`owl:equivalentClass`) count as mutual
    /// subclasses: the result includes each equivalent of any class on
    /// the chain, and their superclasses.
    pub fn superclasses(&self, class: &Iri) -> Vec<Iri> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        seen.insert(class.clone());
        let mut stack: Vec<Iri> = self
            .classes
            .get(class)
            .map(|c| c.parents.iter().chain(c.equivalent_to.iter()).cloned().collect())
            .unwrap_or_default();
        while let Some(p) = stack.pop() {
            if p != *class && seen.insert(p.clone()) {
                if let Some(def) = self.classes.get(&p) {
                    stack.extend(def.parents.iter().cloned());
                    stack.extend(def.equivalent_to.iter().cloned());
                }
                out.push(p);
            }
        }
        out
    }

    /// All (transitive) subclasses of `class`, excluding itself — the
    /// exact inverse of [`Ontology::superclasses`] (so equivalence is
    /// honoured symmetrically).
    pub fn subclasses(&self, class: &Iri) -> Vec<Iri> {
        self.classes
            .keys()
            .filter(|c| *c != class && self.superclasses(c).contains(class))
            .cloned()
            .collect()
    }

    /// Whether `sub` is equal to or a transitive subclass of `sup`.
    pub fn is_subclass_of(&self, sub: &Iri, sup: &Iri) -> bool {
        sub == sup || self.superclasses(sub).contains(sup)
    }

    /// Properties whose declared domain includes `class` or any of its
    /// superclasses (i.e. the attributes applicable to the class).
    pub fn properties_of_class(&self, class: &Iri) -> Vec<&PropertyDef> {
        let mut applicable: Vec<&PropertyDef> = Vec::new();
        let mut classes = vec![class.clone()];
        classes.extend(self.superclasses(class));
        for p in self.properties.values() {
            if p.domains.iter().any(|d| classes.contains(d)) {
                applicable.push(p);
            }
        }
        applicable
    }

    /// The root classes (classes with no defined parent inside this
    /// ontology).
    pub fn roots(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values().filter(|c| !c.parents.iter().any(|p| self.classes.contains_key(p)))
    }
}

pub(crate) struct ClassParts {
    pub iri: Iri,
    pub label: Option<String>,
    pub comment: Option<String>,
    pub parents: BTreeSet<Iri>,
    pub disjoint_with: BTreeSet<Iri>,
    pub equivalent_to: BTreeSet<Iri>,
    pub restrictions: Vec<Restriction>,
}

impl From<ClassParts> for ClassDef {
    fn from(p: ClassParts) -> Self {
        ClassDef {
            iri: p.iri,
            label: p.label,
            comment: p.comment,
            parents: p.parents,
            disjoint_with: p.disjoint_with,
            equivalent_to: p.equivalent_to,
            restrictions: p.restrictions,
        }
    }
}

pub(crate) struct PropertyParts {
    pub iri: Iri,
    pub kind: PropertyKind,
    pub label: Option<String>,
    pub domains: BTreeSet<Iri>,
    pub ranges: BTreeSet<Iri>,
    pub functional: bool,
    pub parents: BTreeSet<Iri>,
    pub inverse_of: Option<Iri>,
}

impl From<PropertyParts> for PropertyDef {
    fn from(p: PropertyParts) -> Self {
        PropertyDef {
            iri: p.iri,
            kind: p.kind,
            label: p.label,
            domains: p.domains,
            ranges: p.ranges,
            functional: p.functional,
            parents: p.parents,
            inverse_of: p.inverse_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watch_ontology() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .class("Watch", Some("Product"))
            .unwrap()
            .class("DiveWatch", Some("Watch"))
            .unwrap()
            .class("Provider", None)
            .unwrap()
            .datatype_property("brand", "Product", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .datatype_property("case", "Watch", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .object_property("provider", "Product", "Provider")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn class_resolution_by_name_and_iri() {
        let o = watch_ontology();
        let by_name = o.class_iri("Watch").unwrap();
        let by_iri = o.class_iri("http://example.org/schema#Watch").unwrap();
        assert_eq!(by_name, by_iri);
        assert!(o.class_iri("Nope").is_err());
    }

    #[test]
    fn transitive_subsumption() {
        let o = watch_ontology();
        let dive = o.class_iri("DiveWatch").unwrap();
        let product = o.class_iri("Product").unwrap();
        let provider = o.class_iri("Provider").unwrap();
        assert!(o.is_subclass_of(&dive, &product));
        assert!(o.is_subclass_of(&dive, &dive));
        assert!(!o.is_subclass_of(&product, &dive));
        assert!(!o.is_subclass_of(&dive, &provider));
    }

    #[test]
    fn subclasses_and_superclasses() {
        let o = watch_ontology();
        let product = o.class_iri("Product").unwrap();
        let subs = o.subclasses(&product);
        assert_eq!(subs.len(), 2);
        let dive = o.class_iri("DiveWatch").unwrap();
        assert_eq!(o.superclasses(&dive).len(), 2);
    }

    #[test]
    fn properties_inherited_through_domain() {
        let o = watch_ontology();
        let dive = o.class_iri("DiveWatch").unwrap();
        let props = o.properties_of_class(&dive);
        let names: Vec<_> = props.iter().map(|p| p.iri().local_name().to_string()).collect();
        assert!(names.contains(&"brand".to_string()), "{names:?}");
        assert!(names.contains(&"case".to_string()));
        assert!(names.contains(&"provider".to_string()));

        let provider = o.class_iri("Provider").unwrap();
        assert!(o.properties_of_class(&provider).is_empty());
    }

    #[test]
    fn roots_are_parentless() {
        let o = watch_ontology();
        let roots: Vec<_> = o.roots().map(|c| c.iri().local_name().to_string()).collect();
        assert_eq!(roots, ["Product", "Provider"]);
    }

    #[test]
    fn property_kinds() {
        let o = watch_ontology();
        let brand = o.property_iri("brand").unwrap();
        assert_eq!(o.property(&brand).unwrap().kind(), PropertyKind::Datatype);
        let provider = o.property_iri("provider").unwrap();
        assert_eq!(o.property(&provider).unwrap().kind(), PropertyKind::Object);
    }

    #[test]
    fn counts() {
        let o = watch_ontology();
        assert_eq!(o.class_count(), 4);
        assert_eq!(o.property_count(), 3);
        assert_eq!(o.classes().count(), 4);
        assert_eq!(o.properties().count(), 3);
    }
}
