//! Attribute paths — the dotted identifiers of the paper's Figure 4.
//!
//! The paper keys all mapping information on *attributes*, identified by a
//! path through the ontology class hierarchy ending in a property name:
//! `thing.product.watch.case`. "Besides having a unique ID to each
//! attribute […] it is possible to have a path to the attributes (through
//! the ontology classes) keeping a notion of the ontology hierarchy."
//!
//! [`AttributePath`] parses, prints, generates, and resolves such paths
//! against an [`Ontology`].

use std::fmt;

use s2s_rdf::Iri;

use crate::error::OwlError;
use crate::model::Ontology;

/// A dotted attribute path, e.g. `thing.product.watch.brand`.
///
/// Segments are stored lowercase; the leading `thing` root segment is
/// implicit and always printed.
///
/// # Examples
///
/// ```
/// use s2s_owl::AttributePath;
///
/// let p: AttributePath = "thing.product.watch.brand".parse()?;
/// assert_eq!(p.attribute_name(), "brand");
/// assert_eq!(p.class_segments(), ["product", "watch"]);
/// # Ok::<(), s2s_owl::OwlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttributePath {
    /// Class segments (lowercased local names), outermost first, without
    /// the `thing` root.
    classes: Vec<String>,
    /// The final attribute (property) segment.
    attribute: String,
}

/// The result of resolving an [`AttributePath`] against an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedAttribute {
    /// The most specific class on the path.
    pub class: Iri,
    /// The property the path names.
    pub property: Iri,
}

impl AttributePath {
    /// Builds a path from explicit class segments and an attribute name.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::BadPath`] if any segment is empty or contains
    /// `.` or whitespace.
    pub fn new<I, S>(classes: I, attribute: &str) -> Result<Self, OwlError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let classes: Vec<String> =
            classes.into_iter().map(|s| s.as_ref().to_ascii_lowercase()).collect();
        for seg in classes.iter().chain(std::iter::once(&attribute.to_ascii_lowercase())) {
            if seg.is_empty() || seg.contains('.') || seg.chars().any(char::is_whitespace) {
                return Err(OwlError::BadPath {
                    path: format!("{}.{attribute}", classes.join(".")),
                    reason: "segments must be non-empty and contain no dots or spaces".into(),
                });
            }
        }
        Ok(AttributePath { classes, attribute: attribute.to_ascii_lowercase() })
    }

    /// The final attribute segment.
    pub fn attribute_name(&self) -> &str {
        &self.attribute
    }

    /// The class segments (without the `thing` root).
    pub fn class_segments(&self) -> &[String] {
        &self.classes
    }

    /// The innermost (most specific) class segment, if any.
    pub fn leaf_class(&self) -> Option<&str> {
        self.classes.last().map(String::as_str)
    }

    /// Generates the canonical path for `property` on `class`, walking up
    /// the class hierarchy to the root (paper Fig. 4: the path keeps "a
    /// notion of the ontology hierarchy").
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::UnknownClass`] / [`OwlError::UnknownProperty`]
    /// if either IRI is not defined in `ontology`.
    pub fn for_attribute(
        ontology: &Ontology,
        class: &Iri,
        property: &Iri,
    ) -> Result<Self, OwlError> {
        if ontology.class(class).is_none() {
            return Err(OwlError::UnknownClass { name: class.as_str().to_string() });
        }
        if ontology.property(property).is_none() {
            return Err(OwlError::UnknownProperty { name: property.as_str().to_string() });
        }
        // Chain from root to `class`: superclasses are unordered, so order
        // them by repeatedly taking a parent chain (first parent).
        let mut chain = vec![class.clone()];
        let mut cur = class.clone();
        loop {
            let parent = ontology
                .class(&cur)
                .and_then(|c| c.parents().find(|p| ontology.class(p).is_some()).cloned());
            match parent {
                Some(p) => {
                    chain.push(p.clone());
                    cur = p;
                }
                None => break,
            }
        }
        chain.reverse();
        let classes: Vec<String> =
            chain.iter().map(|c| c.local_name().to_ascii_lowercase()).collect();
        AttributePath::new(classes, &property.local_name().to_ascii_lowercase())
    }

    /// Resolves the path against `ontology`: checks every class segment
    /// exists, consecutive segments are in a subclass relationship, and
    /// the attribute names a property applicable to the leaf class.
    ///
    /// # Errors
    ///
    /// Returns [`OwlError::BadPath`] describing the first violated
    /// condition.
    pub fn resolve(&self, ontology: &Ontology) -> Result<ResolvedAttribute, OwlError> {
        let bad = |reason: String| OwlError::BadPath { path: self.to_string(), reason };

        // Map each class segment to a class IRI by case-insensitive local
        // name.
        let mut resolved: Vec<Iri> = Vec::with_capacity(self.classes.len());
        for seg in &self.classes {
            let found = ontology
                .classes()
                .find(|c| c.iri().local_name().eq_ignore_ascii_case(seg))
                .map(|c| c.iri().clone())
                .ok_or_else(|| bad(format!("no class matches segment `{seg}`")))?;
            resolved.push(found);
        }
        if resolved.is_empty() {
            return Err(bad("path must contain at least one class segment".into()));
        }
        for pair in resolved.windows(2) {
            if !ontology.is_subclass_of(&pair[1], &pair[0]) {
                return Err(bad(format!(
                    "`{}` is not a subclass of `{}`",
                    pair[1].local_name(),
                    pair[0].local_name()
                )));
            }
        }
        let leaf = resolved.last().expect("non-empty").clone();
        let property = ontology
            .properties_of_class(&leaf)
            .into_iter()
            .find(|p| p.iri().local_name().eq_ignore_ascii_case(&self.attribute))
            .map(|p| p.iri().clone())
            .ok_or_else(|| {
                bad(format!("class `{}` has no attribute `{}`", leaf.local_name(), self.attribute))
            })?;
        Ok(ResolvedAttribute { class: leaf, property })
    }
}

impl fmt::Display for AttributePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thing")?;
        for c in &self.classes {
            write!(f, ".{c}")?;
        }
        write!(f, ".{}", self.attribute)
    }
}

impl std::str::FromStr for AttributePath {
    type Err = OwlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut segments: Vec<&str> = s.split('.').collect();
        if segments.len() < 2 {
            return Err(OwlError::BadPath {
                path: s.to_string(),
                reason: "a path needs at least a class and an attribute".into(),
            });
        }
        // Optional leading `thing` root.
        if segments.first().is_some_and(|s| s.eq_ignore_ascii_case("thing")) {
            segments.remove(0);
        }
        let attribute = segments.pop().ok_or_else(|| OwlError::BadPath {
            path: s.to_string(),
            reason: "missing attribute segment".into(),
        })?;
        if segments.is_empty() {
            return Err(OwlError::BadPath {
                path: s.to_string(),
                reason: "a path needs at least one class segment".into(),
            });
        }
        AttributePath::new(segments, attribute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watch_ontology() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .class("Watch", Some("Product"))
            .unwrap()
            .class("Provider", None)
            .unwrap()
            .datatype_property("brand", "Product", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .datatype_property("case", "Watch", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .object_property("provider", "Product", "Provider")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let p: AttributePath = "thing.product.watch.case".parse().unwrap();
        assert_eq!(p.to_string(), "thing.product.watch.case");
        // `thing` prefix is optional on input.
        let q: AttributePath = "product.watch.case".parse().unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parse_rejects_degenerate() {
        assert!("".parse::<AttributePath>().is_err());
        assert!("brand".parse::<AttributePath>().is_err());
        assert!("thing.brand".parse::<AttributePath>().is_err());
        assert!("a..b".parse::<AttributePath>().is_err());
    }

    #[test]
    fn resolve_paper_example() {
        // The paper's `thing.product.brand` mapping key.
        let o = watch_ontology();
        let p: AttributePath = "thing.product.brand".parse().unwrap();
        let r = p.resolve(&o).unwrap();
        assert_eq!(r.class.local_name(), "Product");
        assert_eq!(r.property.local_name(), "brand");
    }

    #[test]
    fn resolve_inherited_attribute() {
        // `case` is on Watch; `brand` is inherited from Product.
        let o = watch_ontology();
        let p: AttributePath = "thing.product.watch.brand".parse().unwrap();
        let r = p.resolve(&o).unwrap();
        assert_eq!(r.class.local_name(), "Watch");
        assert_eq!(r.property.local_name(), "brand");
    }

    #[test]
    fn resolve_checks_hierarchy() {
        let o = watch_ontology();
        // Provider is not a subclass of Product.
        let p: AttributePath = "thing.product.provider.brand".parse().unwrap();
        assert!(matches!(p.resolve(&o), Err(OwlError::BadPath { .. })));
    }

    #[test]
    fn resolve_unknown_class_or_attribute() {
        let o = watch_ontology();
        let p: AttributePath = "thing.gadget.brand".parse().unwrap();
        assert!(p.resolve(&o).is_err());
        let p: AttributePath = "thing.product.nonexistent".parse().unwrap();
        assert!(p.resolve(&o).is_err());
    }

    #[test]
    fn generated_path_resolves_back() {
        let o = watch_ontology();
        let watch = o.class_iri("Watch").unwrap();
        let case = o.property_iri("case").unwrap();
        let p = AttributePath::for_attribute(&o, &watch, &case).unwrap();
        assert_eq!(p.to_string(), "thing.product.watch.case");
        let r = p.resolve(&o).unwrap();
        assert_eq!(r.class, watch);
        assert_eq!(r.property, case);
    }

    #[test]
    fn case_insensitive_resolution() {
        let o = watch_ontology();
        let p: AttributePath = "Thing.Product.Watch.Case".parse().unwrap();
        assert!(p.resolve(&o).is_ok());
    }

    #[test]
    fn ordering_usable_as_map_key() {
        let a: AttributePath = "thing.product.brand".parse().unwrap();
        let b: AttributePath = "thing.product.watch.case".parse().unwrap();
        let mut m = std::collections::BTreeMap::new();
        m.insert(a.clone(), 1);
        m.insert(b, 2);
        assert_eq!(m[&a], 1);
        assert_eq!(m.len(), 2);
    }
}
