//! Ontology ⇄ RDF graph conversion using the OWL vocabulary.
//!
//! [`to_graph`] emits the standard OWL/RDF encoding (`owl:Class`,
//! `owl:DatatypeProperty`, `rdfs:subClassOf`, restrictions as blank
//! nodes); [`from_graph`] reads it back. Combined with the serializers in
//! [`s2s_rdf`], this gives the OWL-document round trip the paper's §2.2
//! assumes ("S2S middleware represents ontologies using OWL").

use std::collections::BTreeMap;

use s2s_rdf::vocab::{owl, rdf, rdfs};
use s2s_rdf::{BlankNode, Graph, Iri, Literal, Term, Triple};

use crate::error::OwlError;
use crate::model::{Ontology, PropertyKind, Restriction};

/// Serializes an ontology into an RDF graph.
pub fn to_graph(ontology: &Ontology) -> Graph {
    let mut g = Graph::new();
    let mut blank = 0usize;
    let mut fresh_blank = || {
        blank += 1;
        BlankNode::new(format!("r{blank}")).expect("generated label is valid")
    };

    // Ontology header.
    if let Ok(ns_iri) = Iri::new(ontology.namespace().trim_end_matches(['#', '/'])) {
        g.insert(Triple::new(ns_iri, rdf::type_(), owl::ontology()));
    }

    for class in ontology.classes() {
        g.insert(Triple::new(class.iri().clone(), rdf::type_(), owl::class()));
        for parent in class.parents() {
            g.insert(Triple::new(class.iri().clone(), rdfs::sub_class_of(), parent.clone()));
        }
        if let Some(label) = class.label() {
            g.insert(Triple::new(class.iri().clone(), rdfs::label(), Literal::string(label)));
        }
        if let Some(comment) = class.comment() {
            g.insert(Triple::new(class.iri().clone(), rdfs::comment(), Literal::string(comment)));
        }
        for d in class.disjoint_with() {
            g.insert(Triple::new(class.iri().clone(), owl::disjoint_with(), d.clone()));
        }
        for e in class.equivalent_to() {
            g.insert(Triple::new(class.iri().clone(), owl::equivalent_class(), e.clone()));
        }
        for r in class.restrictions() {
            let node = fresh_blank();
            g.insert(Triple::new(node.clone(), rdf::type_(), owl::restriction()));
            g.insert(Triple::new(
                class.iri().clone(),
                rdfs::sub_class_of(),
                Term::from(node.clone()),
            ));
            g.insert(Triple::new(node.clone(), owl::on_property(), r.property().clone()));
            match r {
                Restriction::MinCardinality { min, .. } => {
                    g.insert(Triple::new(
                        node,
                        owl::min_cardinality(),
                        Literal::integer(*min as i64),
                    ));
                }
                Restriction::MaxCardinality { max, .. } => {
                    g.insert(Triple::new(
                        node,
                        owl::max_cardinality(),
                        Literal::integer(*max as i64),
                    ));
                }
                Restriction::HasValue { value, .. } => {
                    g.insert(Triple::new(node, owl::has_value(), value.clone()));
                }
                Restriction::SomeValuesFrom { class, .. } => {
                    g.insert(Triple::new(node, owl::some_values_from(), class.clone()));
                }
                Restriction::AllValuesFrom { class, .. } => {
                    g.insert(Triple::new(node, owl::all_values_from(), class.clone()));
                }
            }
        }
    }

    for prop in ontology.properties() {
        let kind = match prop.kind() {
            PropertyKind::Datatype => owl::datatype_property(),
            PropertyKind::Object => owl::object_property(),
        };
        g.insert(Triple::new(prop.iri().clone(), rdf::type_(), kind));
        if prop.functional() {
            g.insert(Triple::new(prop.iri().clone(), rdf::type_(), owl::functional_property()));
        }
        for d in prop.domains() {
            g.insert(Triple::new(prop.iri().clone(), rdfs::domain(), d.clone()));
        }
        for r in prop.ranges() {
            g.insert(Triple::new(prop.iri().clone(), rdfs::range(), r.clone()));
        }
        for p in prop.parents() {
            g.insert(Triple::new(prop.iri().clone(), rdfs::sub_property_of(), p.clone()));
        }
        if let Some(inv) = prop.inverse_of() {
            g.insert(Triple::new(prop.iri().clone(), owl::inverse_of(), inv.clone()));
        }
        if let Some(label) = prop.label() {
            g.insert(Triple::new(prop.iri().clone(), rdfs::label(), Literal::string(label)));
        }
    }
    g
}

/// Parses an ontology from an RDF graph in the encoding produced by
/// [`to_graph`] (which is also the common hand-authored OWL style).
///
/// `namespace` becomes the ontology's local namespace for name
/// resolution.
///
/// # Errors
///
/// Returns [`OwlError::HierarchyCycle`] if the parsed subclass graph is
/// cyclic. Unknown constructs are skipped (open-world reading).
pub fn from_graph(graph: &Graph, namespace: &str) -> Result<Ontology, OwlError> {
    let rdf_type = rdf::type_();

    // Restriction blank nodes: node → (property, restriction kind data).
    let restriction_type = Term::from(owl::restriction());
    let mut restrictions: BTreeMap<Term, Restriction> = BTreeMap::new();
    for node in graph.subjects(&rdf_type, &restriction_type) {
        let Some(on_prop) =
            graph.object(&node, &owl::on_property()).and_then(|t| t.as_iri().cloned())
        else {
            continue;
        };
        let r = if let Some(min) = graph
            .object(&node, &owl::min_cardinality())
            .and_then(|t| t.as_literal().and_then(|l| l.as_integer()))
        {
            Restriction::MinCardinality { property: on_prop, min: min.max(0) as u32 }
        } else if let Some(max) = graph
            .object(&node, &owl::max_cardinality())
            .and_then(|t| t.as_literal().and_then(|l| l.as_integer()))
        {
            Restriction::MaxCardinality { property: on_prop, max: max.max(0) as u32 }
        } else if let Some(v) =
            graph.object(&node, &owl::has_value()).and_then(|t| t.as_literal().cloned())
        {
            Restriction::HasValue { property: on_prop, value: v }
        } else if let Some(c) =
            graph.object(&node, &owl::some_values_from()).and_then(|t| t.as_iri().cloned())
        {
            Restriction::SomeValuesFrom { property: on_prop, class: c }
        } else if let Some(c) =
            graph.object(&node, &owl::all_values_from()).and_then(|t| t.as_iri().cloned())
        {
            Restriction::AllValuesFrom { property: on_prop, class: c }
        } else {
            continue;
        };
        restrictions.insert(node, r);
    }

    // Build through the builder to reuse validation; declare classes
    // first (parents may appear in any order, so declare all, then link).
    let mut builder = Ontology::builder(namespace);
    let class_type = Term::from(owl::class());
    let mut class_iris: Vec<Iri> =
        graph.subjects(&rdf_type, &class_type).filter_map(|t| t.as_iri().cloned()).collect();
    class_iris.sort();
    class_iris.dedup();
    for c in &class_iris {
        builder = builder.class(c.as_str(), None)?;
    }
    // Restriction links and subproperty links reference properties, which
    // are declared after classes — defer them to a second pass.
    let mut deferred_restrictions: Vec<(Iri, Iri, RKind)> = Vec::new();
    let mut deferred_subprops: Vec<(Iri, Iri)> = Vec::new();
    let mut deferred_inverses: Vec<(Iri, Iri)> = Vec::new();
    for c in &class_iris {
        let subject = Term::from(c.clone());
        for o in graph.objects(&subject, &rdfs::sub_class_of()) {
            match o {
                Term::Iri(parent) if class_iris.contains(&parent) => {
                    builder = builder.subclass_of(c.as_str(), parent.as_str())?;
                }
                blank @ Term::Blank(_) => {
                    if let Some(r) = restrictions.get(&blank) {
                        match r.clone() {
                            Restriction::MinCardinality { property, min } => {
                                deferred_restrictions.push((c.clone(), property, RKind::Min(min)));
                            }
                            Restriction::MaxCardinality { property, max } => {
                                deferred_restrictions.push((c.clone(), property, RKind::Max(max)));
                            }
                            Restriction::HasValue { property, value } => {
                                deferred_restrictions.push((
                                    c.clone(),
                                    property,
                                    RKind::HasValue(value),
                                ));
                            }
                            Restriction::SomeValuesFrom { property, class } => {
                                deferred_restrictions.push((
                                    c.clone(),
                                    property,
                                    RKind::Some(class),
                                ));
                            }
                            Restriction::AllValuesFrom { .. } => {} // not in builder API
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(label) = graph
            .object(&subject, &rdfs::label())
            .and_then(|t| t.as_literal().map(|l| l.lexical().to_string()))
        {
            builder = builder.class_label(c.as_str(), &label)?;
        }
        if let Some(comment) = graph
            .object(&subject, &rdfs::comment())
            .and_then(|t| t.as_literal().map(|l| l.lexical().to_string()))
        {
            builder = builder.class_comment(c.as_str(), &comment)?;
        }
        for d in graph.objects(&subject, &owl::disjoint_with()) {
            if let Some(d) = d.as_iri() {
                if class_iris.contains(d) && c < d {
                    builder = builder.disjoint(c.as_str(), d.as_str())?;
                }
            }
        }
        for e in graph.objects(&subject, &owl::equivalent_class()) {
            if let Some(e) = e.as_iri() {
                if class_iris.contains(e) && c < e {
                    builder = builder.equivalent(c.as_str(), e.as_str())?;
                }
            }
        }
    }

    for (kind, ty) in [
        (PropertyKind::Datatype, owl::datatype_property()),
        (PropertyKind::Object, owl::object_property()),
    ] {
        let ty_term = Term::from(ty);
        let mut props: Vec<Iri> =
            graph.subjects(&rdf_type, &ty_term).filter_map(|t| t.as_iri().cloned()).collect();
        props.sort();
        props.dedup();
        for p in props {
            let subject = Term::from(p.clone());
            let domains: Vec<Iri> = graph
                .objects(&subject, &rdfs::domain())
                .filter_map(|t| t.as_iri().cloned())
                .collect();
            let ranges: Vec<Iri> = graph
                .objects(&subject, &rdfs::range())
                .filter_map(|t| t.as_iri().cloned())
                .collect();
            let (Some(domain), Some(range)) = (domains.first(), ranges.first()) else {
                continue; // skip underspecified properties
            };
            builder = match kind {
                PropertyKind::Datatype => {
                    builder.datatype_property(p.as_str(), domain.as_str(), range.as_str())?
                }
                PropertyKind::Object => {
                    builder.object_property(p.as_str(), domain.as_str(), range.as_str())?
                }
            };
            for extra in domains.iter().skip(1) {
                builder = builder.property_domain(p.as_str(), extra.as_str())?;
            }
            let functional = Term::from(owl::functional_property());
            if graph.objects(&subject, &rdf_type).any(|t| t == functional) {
                builder = builder.functional(p.as_str())?;
            }
            for parent in graph.objects(&subject, &rdfs::sub_property_of()) {
                if let Some(parent) = parent.as_iri() {
                    deferred_subprops.push((p.clone(), parent.clone()));
                }
            }
            for inv in graph.objects(&subject, &owl::inverse_of()) {
                if let Some(inv) = inv.as_iri() {
                    deferred_inverses.push((p.clone(), inv.clone()));
                }
            }
            if let Some(label) = graph
                .object(&subject, &rdfs::label())
                .and_then(|t| t.as_literal().map(|l| l.lexical().to_string()))
            {
                // Property labels are kept only if the builder exposes a
                // setter; it does not, so labels on properties are dropped
                // in this round trip (documented limitation).
                let _ = label;
            }
        }
    }

    // Second pass: replay restriction and subproperty links now that all
    // properties exist.
    for (class, property, kind) in deferred_restrictions {
        builder = match kind {
            RKind::Min(min) => builder.min_cardinality(class.as_str(), property.as_str(), min)?,
            RKind::Max(max) => builder.max_cardinality(class.as_str(), property.as_str(), max)?,
            RKind::HasValue(v) => builder.has_value(class.as_str(), property.as_str(), v)?,
            RKind::Some(f) => {
                builder.some_values_from(class.as_str(), property.as_str(), f.as_str())?
            }
        };
    }
    for (sub, sup) in deferred_subprops {
        builder = builder.subproperty_of(sub.as_str(), sup.as_str())?;
    }
    for (a, b) in deferred_inverses {
        // The pair appears twice (both directions); applying either sets
        // both sides, so the second application is a harmless repeat.
        builder = builder.inverse(a.as_str(), b.as_str())?;
    }

    builder.build()
}

#[derive(Debug, Clone)]
enum RKind {
    Min(u32),
    Max(u32),
    HasValue(Literal),
    Some(Iri),
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_rdf::vocab::xsd;

    fn onto() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .class("Watch", Some("Product"))
            .unwrap()
            .class("Provider", None)
            .unwrap()
            .class_label("Watch", "Wrist watch")
            .unwrap()
            .class_comment("Product", "Anything sellable")
            .unwrap()
            .disjoint("Product", "Provider")
            .unwrap()
            .datatype_property("brand", "Product", xsd::STRING)
            .unwrap()
            .datatype_property("price", "Product", xsd::DECIMAL)
            .unwrap()
            .object_property("provider", "Product", "Provider")
            .unwrap()
            .functional("price")
            .unwrap()
            .min_cardinality("Watch", "brand", 1)
            .unwrap()
            .max_cardinality("Watch", "price", 1)
            .unwrap()
            .has_value("Watch", "brand", Literal::string("Seiko"))
            .unwrap()
            .some_values_from("Watch", "provider", "Provider")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn to_graph_emits_owl_vocabulary() {
        let g = to_graph(&onto());
        let class_term = Term::from(owl::class());
        assert_eq!(g.subjects(&rdf::type_(), &class_term).count(), 3);
        let dt = Term::from(owl::datatype_property());
        assert_eq!(g.subjects(&rdf::type_(), &dt).count(), 2);
        let op = Term::from(owl::object_property());
        assert_eq!(g.subjects(&rdf::type_(), &op).count(), 1);
        let rt = Term::from(owl::restriction());
        assert_eq!(g.subjects(&rdf::type_(), &rt).count(), 4);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let original = onto();
        let g = to_graph(&original);
        let parsed = from_graph(&g, "http://example.org/schema#").unwrap();

        assert_eq!(parsed.class_count(), original.class_count());
        assert_eq!(parsed.property_count(), original.property_count());

        let watch = parsed.class_iri("Watch").unwrap();
        let product = parsed.class_iri("Product").unwrap();
        assert!(parsed.is_subclass_of(&watch, &product));

        let price = parsed.property_iri("price").unwrap();
        assert!(parsed.property(&price).unwrap().functional());

        // Restrictions survive (AllValuesFrom is documented as dropped;
        // none here).
        let w = parsed.class(&watch).unwrap();
        assert_eq!(w.restrictions().len(), 4);

        // Disjointness survives.
        let provider = parsed.class_iri("Provider").unwrap();
        assert!(parsed.class(&product).unwrap().disjoint_with().any(|d| d == &provider));

        // Labels/comments survive on classes.
        assert_eq!(parsed.class(&watch).unwrap().label(), Some("Wrist watch"));
        assert_eq!(parsed.class(&product).unwrap().comment(), Some("Anything sellable"));
    }

    #[test]
    fn roundtrip_through_turtle_text() {
        let original = onto();
        let g = to_graph(&original);
        let prefixes = s2s_rdf::turtle::PrefixMap::with_well_known();
        let text = s2s_rdf::turtle::serialize(&g, &prefixes);
        let g2 = s2s_rdf::turtle::parse(&text).unwrap();
        let parsed = from_graph(&g2, "http://example.org/schema#").unwrap();
        assert_eq!(parsed.class_count(), 3);
        assert_eq!(parsed.property_count(), 3);
    }

    #[test]
    fn from_graph_skips_underspecified_properties() {
        let mut g = Graph::new();
        let p = Iri::new("http://x.org/p").unwrap();
        g.insert(Triple::new(p, rdf::type_(), owl::datatype_property()));
        // No domain/range: skipped, not an error.
        let o = from_graph(&g, "http://x.org/").unwrap();
        assert_eq!(o.property_count(), 0);
    }

    #[test]
    fn equivalence_and_inverse_roundtrip() {
        let o = Ontology::builder("http://example.org/schema#")
            .class("Car", None)
            .unwrap()
            .class("Automobile", None)
            .unwrap()
            .class("Maker", None)
            .unwrap()
            .equivalent("Car", "Automobile")
            .unwrap()
            .object_property("madeBy", "Car", "Maker")
            .unwrap()
            .object_property("makes", "Maker", "Car")
            .unwrap()
            .inverse("madeBy", "makes")
            .unwrap()
            .build()
            .unwrap();
        let g = to_graph(&o);
        let parsed = from_graph(&g, "http://example.org/schema#").unwrap();
        let car = parsed.class_iri("Car").unwrap();
        let auto = parsed.class_iri("Automobile").unwrap();
        assert!(parsed.is_subclass_of(&car, &auto));
        assert!(parsed.is_subclass_of(&auto, &car));
        let made_by = parsed.property_iri("madeBy").unwrap();
        let makes = parsed.property_iri("makes").unwrap();
        assert_eq!(parsed.property(&made_by).unwrap().inverse_of(), Some(&makes));
        assert_eq!(parsed.property(&makes).unwrap().inverse_of(), Some(&made_by));
    }

    #[test]
    fn from_graph_empty_graph() {
        let o = from_graph(&Graph::new(), "http://x.org/").unwrap();
        assert_eq!(o.class_count(), 0);
        assert_eq!(o.property_count(), 0);
    }
}
