//! # s2s-owl
//!
//! OWL ontology layer of the S2S middleware.
//!
//! The paper (§2.2) uses an OWL ontology as the shared conceptualization
//! that all data sources are mapped against: "the ontology schema defines
//! the structure and the semantics of data". This crate provides:
//!
//! * [`Ontology`] — classes, datatype/object properties, hierarchy,
//!   restrictions ([`model`]), with a fluent [`builder`],
//! * [`AttributePath`] — the dotted attribute identifiers of the paper's
//!   Figure 4 (`thing.product.watch.brand`) used as mapping keys
//!   ([`paths`]),
//! * [`Reasoner`] — a structural reasoner: subsumption closure,
//!   domain/range inference, realization, and consistency checking over
//!   instance graphs ([`reasoner`]),
//! * RDF (de)serialization of ontologies using the OWL vocabulary
//!   ([`serialize`]).
//!
//! # Examples
//!
//! ```
//! use s2s_owl::{Ontology, PropertyKind};
//!
//! # fn main() -> Result<(), s2s_owl::OwlError> {
//! let onto = Ontology::builder("http://example.org/schema#")
//!     .class("Product", None)?
//!     .class("Watch", Some("Product"))?
//!     .datatype_property("brand", "Product", "http://www.w3.org/2001/XMLSchema#string")?
//!     .build()?;
//! assert!(onto.is_subclass_of(&onto.class_iri("Watch")?, &onto.class_iri("Product")?));
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod error;
pub mod model;
pub mod paths;
pub mod reasoner;
pub mod serialize;

pub use builder::OntologyBuilder;
pub use error::OwlError;
pub use model::{ClassDef, Ontology, PropertyDef, PropertyKind, Restriction};
pub use paths::AttributePath;
pub use reasoner::{ConsistencyIssue, Reasoner};
