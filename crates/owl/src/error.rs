//! Error type for ontology construction and use.

use std::error::Error;
use std::fmt;

use s2s_rdf::RdfError;

/// An error produced while building, parsing, or querying an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwlError {
    /// A class was referenced that is not defined in the ontology.
    UnknownClass {
        /// Name or IRI as given by the caller.
        name: String,
    },
    /// A property was referenced that is not defined in the ontology.
    UnknownProperty {
        /// Name or IRI as given by the caller.
        name: String,
    },
    /// A definition was added twice.
    Duplicate {
        /// What was duplicated (class or property IRI).
        name: String,
    },
    /// The subclass graph contains a cycle.
    HierarchyCycle {
        /// A class on the cycle.
        on: String,
    },
    /// An attribute path failed to resolve against the ontology.
    BadPath {
        /// The path text.
        path: String,
        /// Why resolution failed.
        reason: String,
    },
    /// An underlying RDF error (invalid IRI, parse failure).
    Rdf(RdfError),
}

impl fmt::Display for OwlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwlError::UnknownClass { name } => write!(f, "unknown class `{name}`"),
            OwlError::UnknownProperty { name } => write!(f, "unknown property `{name}`"),
            OwlError::Duplicate { name } => write!(f, "duplicate definition of `{name}`"),
            OwlError::HierarchyCycle { on } => {
                write!(f, "class hierarchy contains a cycle through `{on}`")
            }
            OwlError::BadPath { path, reason } => {
                write!(f, "attribute path `{path}` does not resolve: {reason}")
            }
            OwlError::Rdf(e) => write!(f, "rdf error: {e}"),
        }
    }
}

impl Error for OwlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OwlError::Rdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RdfError> for OwlError {
    fn from(e: RdfError) -> Self {
        OwlError::Rdf(e)
    }
}
