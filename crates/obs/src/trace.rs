//! Span-based trace trees for a single query.
//!
//! A [`Trace`] is a tree of [`Span`]s mirroring the pipeline:
//!
//! ```text
//! query
//! ├── parse
//! ├── map            (schema mapping + extraction-cache partition)
//! │   └── rule …     (cache-served attributes, outcome = cache-hit)
//! ├── plan
//! └── batch[source]  (one per wire batch / per task in unbatched mode)
//!     ├── rule[attr]    (wrapper execution, rule-cache provenance)
//!     └── attempt[endpoint]  (one per endpoint tried, incl. rejections)
//! ```
//!
//! Spans are plain owned values, **not** handles into a shared sink:
//! worker threads build their span lists locally and the lists ride the
//! existing result channels back to the serial collection loop (which
//! already preserves submission order), so the parallel path needs no
//! additional locks and span order is as deterministic as the batch
//! plan itself.

/// What stage of the pipeline a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole query, root of the tree.
    Query,
    /// S2SQL parsing.
    Parse,
    /// Ontology-path mapping and cache partition.
    Map,
    /// Extraction planning (grouping, cost estimates, LPT order).
    Plan,
    /// Federated pushdown planning (predicate/projection rewriting and
    /// source pruning).
    Pushdown,
    /// One per-source wire exchange (or one task in unbatched mode).
    Batch,
    /// One endpoint tried during a batch exchange.
    Attempt,
    /// One extraction rule executed by a wrapper.
    Rule,
}

impl SpanKind {
    /// Stable lowercase name used by every exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Parse => "parse",
            SpanKind::Map => "map",
            SpanKind::Plan => "plan",
            SpanKind::Pushdown => "pushdown",
            SpanKind::Batch => "batch",
            SpanKind::Attempt => "attempt",
            SpanKind::Rule => "rule",
        }
    }

    /// Parses the exporter name back; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "query" => SpanKind::Query,
            "parse" => SpanKind::Parse,
            "map" => SpanKind::Map,
            "plan" => SpanKind::Plan,
            "pushdown" => SpanKind::Pushdown,
            "batch" => SpanKind::Batch,
            "attempt" => SpanKind::Attempt,
            "rule" => SpanKind::Rule,
            _ => return None,
        })
    }
}

/// How the work a span covers turned out.
///
/// Ordered by severity: combinators keep the worst outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanOutcome {
    /// Succeeded first try.
    Ok,
    /// Served from a cache without touching the wire.
    CacheHit,
    /// Succeeded after at least one retry.
    Retried,
    /// Succeeded on a replica after the primary failed.
    FailedOver,
    /// Succeeded, but only after a hedged replica request was launched
    /// against a straggling primary (whichever reply came first won).
    Hedged,
    /// An open circuit breaker refused the call before the wire.
    BreakerRejected,
    /// Refused by admission control before any work was done (overload
    /// shedding). No wire traffic, no cache writes.
    Shed,
    /// Partially succeeded (some children failed).
    Degraded,
    /// Failed outright.
    Failed,
}

impl SpanOutcome {
    /// Stable kebab-case name used by every exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::CacheHit => "cache-hit",
            SpanOutcome::Retried => "retried",
            SpanOutcome::FailedOver => "failed-over",
            SpanOutcome::Hedged => "hedged",
            SpanOutcome::BreakerRejected => "breaker-rejected",
            SpanOutcome::Shed => "shed",
            SpanOutcome::Degraded => "degraded",
            SpanOutcome::Failed => "failed",
        }
    }

    /// Parses the exporter name back; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => SpanOutcome::Ok,
            "cache-hit" => SpanOutcome::CacheHit,
            "retried" => SpanOutcome::Retried,
            "failed-over" => SpanOutcome::FailedOver,
            "hedged" => SpanOutcome::Hedged,
            "breaker-rejected" => SpanOutcome::BreakerRejected,
            "shed" => SpanOutcome::Shed,
            "degraded" => SpanOutcome::Degraded,
            "failed" => SpanOutcome::Failed,
            _ => return None,
        })
    }

    /// The more severe of the two outcomes.
    pub fn worst(self, other: SpanOutcome) -> SpanOutcome {
        self.max(other)
    }
}

/// One node in the trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Pipeline stage.
    pub kind: SpanKind,
    /// What the stage operated on: the query text, a source id, an
    /// endpoint id, an ontology path.
    pub name: String,
    /// How it turned out.
    pub outcome: SpanOutcome,
    /// Simulated (virtual network) time, microseconds.
    pub sim_us: u64,
    /// Wall-clock time, microseconds. The only nondeterministic field;
    /// exporters keep it separate so tests can mask it.
    pub wall_us: u64,
    /// Free-form key/value annotations (cache provenance, retry
    /// counts, error text, …) in insertion order.
    pub attrs: Vec<(String, String)>,
    /// Child spans in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// Creates a span with outcome [`SpanOutcome::Ok`] and zero
    /// durations.
    pub fn new(kind: SpanKind, name: impl Into<String>) -> Self {
        Span {
            kind,
            name: name.into(),
            outcome: SpanOutcome::Ok,
            sim_us: 0,
            wall_us: 0,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Appends an attribute.
    pub fn attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.attrs.push((key.into(), value.into()));
    }

    /// Looks up an attribute by key (first match).
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Appends a child span.
    pub fn push(&mut self, child: Span) {
        self.children.push(child);
    }

    /// Number of spans in this subtree, including `self`.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(Span::len).sum::<usize>()
    }

    /// Always false: a span counts itself.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All spans in the subtree in depth-first (execution) order.
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        let mut out = Vec::with_capacity(self.len());
        fn walk<'a>(span: &'a Span, out: &mut Vec<&'a Span>) {
            out.push(span);
            for child in &span.children {
                walk(child, out);
            }
        }
        walk(self, &mut out);
        out.into_iter()
    }
}

/// A complete per-query trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The `query` span.
    pub root: Span,
}

impl Trace {
    /// Wraps a root span.
    pub fn new(root: Span) -> Self {
        Trace { root }
    }

    /// All spans in depth-first order, root first.
    pub fn spans(&self) -> Vec<&Span> {
        self.root.iter().collect()
    }

    /// Spans of one kind, in depth-first order.
    pub fn spans_of(&self, kind: SpanKind) -> Vec<&Span> {
        self.root.iter().filter(|s| s.kind == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_outcome_names_round_trip() {
        for kind in [
            SpanKind::Query,
            SpanKind::Parse,
            SpanKind::Map,
            SpanKind::Plan,
            SpanKind::Pushdown,
            SpanKind::Batch,
            SpanKind::Attempt,
            SpanKind::Rule,
        ] {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        for outcome in [
            SpanOutcome::Ok,
            SpanOutcome::CacheHit,
            SpanOutcome::Retried,
            SpanOutcome::FailedOver,
            SpanOutcome::Hedged,
            SpanOutcome::BreakerRejected,
            SpanOutcome::Shed,
            SpanOutcome::Degraded,
            SpanOutcome::Failed,
        ] {
            assert_eq!(SpanOutcome::parse(outcome.as_str()), Some(outcome));
        }
        assert_eq!(SpanKind::parse("nope"), None);
        assert_eq!(SpanOutcome::parse("nope"), None);
    }

    #[test]
    fn worst_outcome_wins() {
        assert_eq!(SpanOutcome::Ok.worst(SpanOutcome::Failed), SpanOutcome::Failed);
        assert_eq!(SpanOutcome::Degraded.worst(SpanOutcome::Retried), SpanOutcome::Degraded);
        assert_eq!(SpanOutcome::Ok.worst(SpanOutcome::Ok), SpanOutcome::Ok);
    }

    #[test]
    fn tree_iteration_is_depth_first() {
        let mut root = Span::new(SpanKind::Query, "q");
        let mut batch = Span::new(SpanKind::Batch, "src");
        batch.push(Span::new(SpanKind::Attempt, "ep-1"));
        root.push(Span::new(SpanKind::Parse, "q"));
        root.push(batch);
        let trace = Trace::new(root);
        let kinds: Vec<_> = trace.spans().iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::Query, SpanKind::Parse, SpanKind::Batch, SpanKind::Attempt]
        );
        assert_eq!(trace.root.len(), 4);
        assert_eq!(trace.spans_of(SpanKind::Attempt).len(), 1);
    }

    #[test]
    fn attrs_preserve_order_and_lookup() {
        let mut span = Span::new(SpanKind::Rule, "product.name");
        span.attr("cache", "hit");
        span.attr("values", "3");
        assert_eq!(span.get_attr("cache"), Some("hit"));
        assert_eq!(span.get_attr("missing"), None);
        assert_eq!(span.attrs[1].0, "values");
    }
}
