//! Exporters: text tree, JSON-lines trace dump, Prometheus-style
//! metrics snapshot.
//!
//! The two machine-readable formats each ship with a minimal parser so
//! CI can prove a snapshot round-trips (`render → parse → render` is
//! byte-identical) instead of merely looking plausible. The parsers are
//! deliberately small: they accept exactly the subset these renderers
//! emit — JSON-lines objects with string/number/null values plus a flat
//! string-valued `attrs` object, and Prometheus text with `# TYPE`
//! comments, optional `{label="value"}` sets, and finite decimal
//! numbers.

use std::fmt::Write as _;

use crate::metrics::{valid_metric_name, MetricsRegistry};
use crate::trace::{Span, SpanKind, SpanOutcome, Trace};

// ---------------------------------------------------------------------
// Text tree
// ---------------------------------------------------------------------

/// Renders a trace as a human-readable tree.
pub fn render_tree(trace: &Trace) -> String {
    let mut out = String::new();
    render_tree_span(&trace.root, "", true, true, &mut out);
    out
}

fn render_tree_span(span: &Span, prefix: &str, last: bool, root: bool, out: &mut String) {
    if root {
        let _ = write!(out, "{}", span_line(span));
    } else {
        let branch = if last { "└─ " } else { "├─ " };
        let _ = write!(out, "{prefix}{branch}{}", span_line(span));
    }
    out.push('\n');
    let child_prefix = if root {
        String::new()
    } else if last {
        format!("{prefix}   ")
    } else {
        format!("{prefix}│  ")
    };
    for (i, child) in span.children.iter().enumerate() {
        let child_last = i + 1 == span.children.len();
        render_tree_span(child, &child_prefix, child_last, false, out);
    }
}

fn span_line(span: &Span) -> String {
    let mut line = format!(
        "{} \"{}\" {} sim={} wall={}",
        span.kind.as_str(),
        span.name,
        span.outcome.as_str(),
        format_micros(span.sim_us),
        format_micros(span.wall_us),
    );
    if !span.attrs.is_empty() {
        line.push_str(" [");
        for (i, (k, v)) in span.attrs.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            let _ = write!(line, "{k}={v}");
        }
        line.push(']');
    }
    line
}

/// Formats microseconds the way `SimDuration` prints: `250us` below a
/// millisecond, `3.00ms` above.
fn format_micros(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else {
        format!("{:.2}ms", us as f64 / 1_000.0)
    }
}

// ---------------------------------------------------------------------
// JSON-lines trace dump
// ---------------------------------------------------------------------

/// One span flattened for the JSON-lines dump.
///
/// Ids are assigned by depth-first numbering from 1 at export time, so
/// identical trees always export identical ids.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Depth-first index, root = 1.
    pub id: u64,
    /// Parent id; `None` for the root.
    pub parent: Option<u64>,
    /// [`SpanKind`] name.
    pub kind: String,
    /// Span name (query text, source id, endpoint id, attribute path).
    pub name: String,
    /// [`SpanOutcome`] name.
    pub outcome: String,
    /// Simulated time, microseconds.
    pub sim_us: u64,
    /// Wall-clock time, microseconds (the only nondeterministic field).
    pub wall_us: u64,
    /// Attributes in insertion order.
    pub attrs: Vec<(String, String)>,
}

/// Flattens a trace into records in depth-first order.
pub fn to_records(trace: &Trace) -> Vec<SpanRecord> {
    let mut out = Vec::with_capacity(trace.root.len());
    let mut next_id = 1u64;
    flatten(&trace.root, None, &mut next_id, &mut out);
    out
}

fn flatten(span: &Span, parent: Option<u64>, next_id: &mut u64, out: &mut Vec<SpanRecord>) {
    let id = *next_id;
    *next_id += 1;
    out.push(SpanRecord {
        id,
        parent,
        kind: span.kind.as_str().to_string(),
        name: span.name.clone(),
        outcome: span.outcome.as_str().to_string(),
        sim_us: span.sim_us,
        wall_us: span.wall_us,
        attrs: span.attrs.clone(),
    });
    for child in &span.children {
        flatten(child, Some(id), next_id, out);
    }
}

/// Renders a trace as JSON lines, one span per line, fixed field order.
pub fn render_jsonl(trace: &Trace) -> String {
    render_jsonl_records(&to_records(trace))
}

/// Renders already-flattened records as JSON lines.
pub fn render_jsonl_records(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(out, "{{\"id\":{},\"parent\":", r.id);
        match r.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"kind\":{},\"name\":{},\"outcome\":{},\"sim_us\":{},\"wall_us\":{},\"attrs\":{{",
            json_string(&r.kind),
            json_string(&r.name),
            json_string(&r.outcome),
            r.sim_us,
            r.wall_us,
        );
        for (i, (k, v)) in r.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_string(v));
        }
        out.push_str("}}\n");
    }
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a JSON-lines trace dump back into records.
///
/// # Errors
///
/// Returns a description of the first malformed line: bad JSON, a
/// missing or mistyped field, or an unknown span kind/outcome name.
pub fn parse_jsonl(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_jsonl_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        SpanKind::parse(&record.kind)
            .ok_or_else(|| format!("line {}: unknown span kind {:?}", lineno + 1, record.kind))?;
        SpanOutcome::parse(&record.outcome).ok_or_else(|| {
            format!("line {}: unknown span outcome {:?}", lineno + 1, record.outcome)
        })?;
        out.push(record);
    }
    Ok(out)
}

fn parse_jsonl_line(line: &str) -> Result<SpanRecord, String> {
    let mut p = JsonParser::new(line);
    p.expect('{')?;
    let mut id = None;
    let mut parent = None;
    let mut parent_seen = false;
    let mut kind = None;
    let mut name = None;
    let mut outcome = None;
    let mut sim_us = None;
    let mut wall_us = None;
    let mut attrs = None;
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "id" => id = Some(p.integer()?),
            "parent" => {
                parent_seen = true;
                parent = p.integer_or_null()?;
            }
            "kind" => kind = Some(p.string()?),
            "name" => name = Some(p.string()?),
            "outcome" => outcome = Some(p.string()?),
            "sim_us" => sim_us = Some(p.integer()?),
            "wall_us" => wall_us = Some(p.integer()?),
            "attrs" => attrs = Some(p.string_map()?),
            other => return Err(format!("unexpected key {other:?}")),
        }
        if !p.comma_or('}')? {
            break;
        }
    }
    p.end()?;
    if !parent_seen {
        return Err("missing key \"parent\"".to_string());
    }
    Ok(SpanRecord {
        id: id.ok_or("missing key \"id\"")?,
        parent,
        kind: kind.ok_or("missing key \"kind\"")?,
        name: name.ok_or("missing key \"name\"")?,
        outcome: outcome.ok_or("missing key \"outcome\"")?,
        sim_us: sim_us.ok_or("missing key \"sim_us\"")?,
        wall_us: wall_us.ok_or("missing key \"wall_us\"")?,
        attrs: attrs.ok_or("missing key \"attrs\"")?,
    })
}

/// A tiny JSON parser for the exact subset the renderer emits.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser { bytes: s.as_bytes(), pos: 0 }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    /// Consumes `,` and returns true, or consumes `close` and returns
    /// false.
    fn comma_or(&mut self, close: char) -> Result<bool, String> {
        match self.peek() {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(c) if c == close as u8 => {
                self.pos += 1;
                Ok(false)
            }
            _ => Err(format!("expected ',' or {close:?} at byte {}", self.pos)),
        }
    }

    fn end(&mut self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing data at byte {}", self.pos))
        }
    }

    fn integer(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("invalid integer at byte {start}"))
    }

    fn integer_or_null(&mut self) -> Result<Option<u64>, String> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            Ok(None)
        } else {
            self.integer().map(Some)
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    format!("invalid \\u escape at byte {}", self.pos)
                                })?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("invalid escape {other:?} at byte {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses a flat `{"k":"v",...}` object preserving key order.
    fn string_map(&mut self) -> Result<Vec<(String, String)>, String> {
        self.expect('{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(':')?;
            let value = self.string()?;
            out.push((key, value));
            if !self.comma_or('}')? {
                return Ok(out);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Prometheus-style metrics snapshot
// ---------------------------------------------------------------------

/// Renders every metric in the registry as Prometheus text: counters,
/// then gauges, then histograms, each in name order, so identical
/// registry states render byte-identically.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    registry.for_each_counter(|name, c| {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.get());
    });
    registry.for_each_gauge(|name, g| {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", format_f64(g.get()));
    });
    registry.for_each_histogram(|name, h| {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let counts = h.bucket_counts();
        let mut cumulative = 0u64;
        for (bound, n) in h.bounds().iter().zip(&counts) {
            cumulative += n;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += counts.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", h.sum());
        let _ = writeln!(out, "{name}_count {}", h.count());
        let _ = writeln!(out, "{name}_p50 {}", format_f64(h.p50()));
        let _ = writeln!(out, "{name}_p90 {}", format_f64(h.p90()));
        let _ = writeln!(out, "{name}_p99 {}", format_f64(h.p99()));
    });
    out
}

fn format_f64(v: f64) -> String {
    // `f64`'s `Display` prints the shortest string that parses back to
    // the same value, so render → parse → render is stable.
    format!("{v}")
}

/// One sample line from a Prometheus text snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (with any `_bucket`/`_sum`/`_count` suffix intact).
    pub name: String,
    /// Labels in source order (`le` for histogram buckets).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parses a Prometheus text snapshot.
///
/// # Errors
///
/// Returns a description of the first malformed line: a `# TYPE`
/// comment with an unknown type, an invalid metric name, a bad label
/// set, or an unparseable value.
pub fn parse_prometheus(text: &str) -> Result<Vec<MetricSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let parts: Vec<&str> = comment.split_whitespace().collect();
            match parts.as_slice() {
                ["TYPE", name, ty] => {
                    if !valid_metric_name(name) {
                        return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
                    }
                    if !matches!(*ty, "counter" | "gauge" | "histogram") {
                        return Err(format!("line {}: unknown metric type {ty:?}", lineno + 1));
                    }
                }
                ["HELP", ..] => {}
                _ => return Err(format!("line {}: malformed comment", lineno + 1)),
            }
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<MetricSample, String> {
    let (name_part, value_part) = match line.find(['{', ' ']) {
        Some(i) if line.as_bytes()[i] == b'{' => {
            let close = line.find('}').ok_or_else(|| "unterminated label set".to_string())?;
            (line[..close + 1].to_string(), line[close + 1..].trim().to_string())
        }
        Some(i) => (line[..i].to_string(), line[i + 1..].trim().to_string()),
        None => return Err("missing value".to_string()),
    };
    let (name, labels) = match name_part.find('{') {
        Some(open) => {
            let name = name_part[..open].to_string();
            let inner = &name_part[open + 1..name_part.len() - 1];
            let mut labels = Vec::new();
            for pair in inner.split(',').filter(|p| !p.is_empty()) {
                let (k, v) =
                    pair.split_once('=').ok_or_else(|| format!("malformed label {pair:?}"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value {v:?}"))?;
                labels.push((k.to_string(), v.to_string()));
            }
            (name, labels)
        }
        None => (name_part, Vec::new()),
    };
    if !valid_metric_name(&name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let value: f64 = value_part.parse().map_err(|_| format!("invalid value {value_part:?}"))?;
    Ok(MetricSample { name, labels, value })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut root = Span::new(SpanKind::Query, "SELECT product");
        root.sim_us = 42_000;
        root.wall_us = 900;
        root.attr("completeness", "1");
        root.push(Span::new(SpanKind::Parse, "SELECT product"));
        let mut batch = Span::new(SpanKind::Batch, "catalog-db");
        batch.outcome = SpanOutcome::FailedOver;
        batch.sim_us = 41_000;
        let mut attempt = Span::new(SpanKind::Attempt, "db-1");
        attempt.outcome = SpanOutcome::Failed;
        attempt.attr("error", "endpoint \"db-1\" unreachable");
        batch.push(attempt);
        let mut attempt2 = Span::new(SpanKind::Attempt, "db-2");
        attempt2.sim_us = 41_000;
        batch.push(attempt2);
        let mut rule = Span::new(SpanKind::Rule, "product.name");
        rule.attr("cache", "miss");
        batch.push(rule);
        root.push(batch);
        Trace::new(root)
    }

    #[test]
    fn jsonl_round_trips_byte_identically() {
        let trace = sample_trace();
        let rendered = render_jsonl(&trace);
        let records = parse_jsonl(&rendered).expect("parses");
        assert_eq!(records.len(), trace.root.len());
        assert_eq!(render_jsonl_records(&records), rendered);
    }

    #[test]
    fn jsonl_ids_are_depth_first() {
        let records = to_records(&sample_trace());
        assert_eq!(records[0].id, 1);
        assert_eq!(records[0].parent, None);
        let batch = records.iter().find(|r| r.kind == "batch").unwrap();
        assert_eq!(batch.parent, Some(1));
        for attempt in records.iter().filter(|r| r.kind == "attempt") {
            assert_eq!(attempt.parent, Some(batch.id));
        }
    }

    #[test]
    fn jsonl_escapes_special_characters() {
        let mut root = Span::new(SpanKind::Query, "say \"hi\"\n\tback\\slash");
        root.attr("k\"ey", "v\u{1}alue");
        let trace = Trace::new(root);
        let rendered = render_jsonl(&trace);
        let records = parse_jsonl(&rendered).expect("parses");
        assert_eq!(records[0].name, "say \"hi\"\n\tback\\slash");
        assert_eq!(records[0].attrs[0], ("k\"ey".to_string(), "v\u{1}alue".to_string()));
        assert_eq!(render_jsonl_records(&records), rendered);
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"id\":1}").is_err(), "missing fields");
        let bad_kind = "{\"id\":1,\"parent\":null,\"kind\":\"warp\",\"name\":\"q\",\
                        \"outcome\":\"ok\",\"sim_us\":0,\"wall_us\":0,\"attrs\":{}}";
        assert!(parse_jsonl(bad_kind).unwrap_err().contains("unknown span kind"));
        let bad_outcome = "{\"id\":1,\"parent\":null,\"kind\":\"query\",\"name\":\"q\",\
                           \"outcome\":\"meh\",\"sim_us\":0,\"wall_us\":0,\"attrs\":{}}";
        assert!(parse_jsonl(bad_outcome).unwrap_err().contains("unknown span outcome"));
    }

    #[test]
    fn text_tree_shows_hierarchy_and_outcomes() {
        let rendered = render_tree(&sample_trace());
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("query \"SELECT product\" ok"));
        assert!(lines[0].contains("sim=42.00ms"));
        assert!(lines[0].contains("[completeness=1]"));
        assert!(lines[1].contains("├─ parse"));
        assert!(lines[2].contains("└─ batch \"catalog-db\" failed-over"));
        assert!(lines[3].contains("├─ attempt \"db-1\" failed"));
        assert!(lines[5].contains("└─ rule \"product.name\" ok"));
        assert!(lines[5].contains("cache=miss"));
    }

    #[test]
    fn prometheus_renders_and_parses() {
        let reg = MetricsRegistry::new();
        reg.counter("s2s_queries_total").add(3);
        reg.gauge("s2s_completeness").set(0.75);
        let h = reg.histogram("s2s_attempt_us");
        h.observe(120);
        h.observe(400);
        h.observe(999_000_000);
        let rendered = render_prometheus(&reg);
        let samples = parse_prometheus(&rendered).expect("parses");
        let get = |n: &str| samples.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("s2s_queries_total"), Some(3.0));
        assert_eq!(get("s2s_completeness"), Some(0.75));
        assert_eq!(get("s2s_attempt_us_count"), Some(3.0));
        assert_eq!(get("s2s_attempt_us_sum"), Some(999_000_520.0));
        let inf_bucket = samples
            .iter()
            .find(|s| {
                s.name == "s2s_attempt_us_bucket"
                    && s.labels == vec![("le".to_string(), "+Inf".to_string())]
            })
            .expect("+Inf bucket");
        assert_eq!(inf_bucket.value, 3.0);
        // Bucket counts are cumulative.
        let le250 = samples
            .iter()
            .find(|s| {
                s.name == "s2s_attempt_us_bucket"
                    && s.labels == vec![("le".to_string(), "250".to_string())]
            })
            .expect("le=250 bucket");
        assert_eq!(le250.value, 1.0);
        // Rendering the same registry again is byte-identical.
        assert_eq!(render_prometheus(&reg), rendered);
    }

    #[test]
    fn prometheus_rejects_malformed_snapshots() {
        assert!(parse_prometheus("# TYPE s2s_x sparkline\ns2s_x 1").is_err());
        assert!(parse_prometheus("9lives 1").is_err());
        assert!(parse_prometheus("s2s_x{le=100} 1").is_err(), "unquoted label");
        assert!(parse_prometheus("s2s_x one").is_err());
        assert!(parse_prometheus("s2s_x").is_err());
        assert!(parse_prometheus("").unwrap().is_empty());
    }
}
