//! Canonical metric names for the engine's hot paths.
//!
//! The registry accepts any name, which makes typos silent: a counter
//! bumped as `s2s_pool_job_total` and read as `s2s_pool_jobs_total`
//! are two different metrics and nobody notices. The concurrency and
//! caching layers added with the shared engine therefore name their
//! metrics through these constants; emitters and dashboards/audits
//! reference the same symbol.

/// Gauge: worker threads of the most recently constructed pool.
pub const POOL_WORKERS: &str = "s2s_pool_workers";
/// Gauge: jobs currently queued or executing on the pool.
pub const POOL_QUEUE_DEPTH: &str = "s2s_pool_queue_depth";
/// Histogram: wall-clock microseconds a job waited in the pool queue.
pub const POOL_QUEUE_WAIT_US: &str = "s2s_pool_queue_wait_us";
/// Counter: jobs submitted to the pool.
pub const POOL_JOBS_TOTAL: &str = "s2s_pool_jobs_total";

/// Counter: semantic query-result cache hits.
pub const RESULT_CACHE_HITS_TOTAL: &str = "s2s_result_cache_hits_total";
/// Counter: semantic query-result cache misses (expiries included).
pub const RESULT_CACHE_MISSES_TOTAL: &str = "s2s_result_cache_misses_total";
/// Counter: result-cache entries evicted by the LRU capacity bound.
pub const RESULT_CACHE_EVICTIONS_TOTAL: &str = "s2s_result_cache_evictions_total";
/// Counter: result-cache entries dropped by mutation invalidation.
pub const RESULT_CACHE_INVALIDATIONS_TOTAL: &str = "s2s_result_cache_invalidations_total";

/// Counter: query-plan cache hits.
pub const PLAN_CACHE_HITS_TOTAL: &str = "s2s_plan_cache_hits_total";
/// Counter: query-plan cache misses.
pub const PLAN_CACHE_MISSES_TOTAL: &str = "s2s_plan_cache_misses_total";
/// Counter: plan-cache entries evicted by the LRU capacity bound.
pub const PLAN_CACHE_EVICTIONS_TOTAL: &str = "s2s_plan_cache_evictions_total";
/// Counter: plan-cache entries dropped by dependency-tracked
/// invalidation (a mapping edit touched a source the plan named).
pub const PLAN_CACHE_INVALIDATIONS_TOTAL: &str = "s2s_plan_cache_invalidations_total";

/// Counter: data mutations applied to registered sources.
pub const SOURCE_MUTATIONS_TOTAL: &str = "s2s_source_mutations_total";
/// Counter: entries dropped by explicit full-cache invalidation
/// (`S2s::invalidate_cache`), extraction + result entries combined.
/// A high rate signals over-invalidation relative to the surgical path.
pub const CACHE_INVALIDATED_ENTRIES_TOTAL: &str = "s2s_cache_invalidated_entries_total";

/// Counter: (source, attribute) slices served from a fresh
/// materialized semantic view — no wire exchange needed.
pub const VIEW_HITS_TOTAL: &str = "s2s_view_hits_total";
/// Counter: view slices incrementally re-extracted because the change
/// feed showed their source-side field was touched.
pub const VIEW_REFRESHES_TOTAL: &str = "s2s_view_refreshes_total";
/// Counter: sources whose views fell back to a full refresh (feed gap
/// or mapping change made the delta unsound).
pub const VIEW_FULL_REFRESHES_TOTAL: &str = "s2s_view_full_refreshes_total";
/// Counter: change-feed polls issued against source endpoints.
pub const FEED_POLLS_TOTAL: &str = "s2s_feed_polls_total";
/// Histogram: simulated microseconds between a served view's last
/// refresh and the query that read it (the staleness window).
pub const VIEW_STALENESS_US: &str = "s2s_view_staleness_us";

/// Counter: extraction-cache entries evicted by the LRU capacity bound.
pub const EXTRACTION_CACHE_EVICTIONS_TOTAL: &str = "s2s_extraction_cache_evictions_total";
/// Counter: compiled-rule-cache entries evicted by the LRU bound.
pub const RULE_CACHE_EVICTIONS_TOTAL: &str = "s2s_rule_cache_evictions_total";

/// Counter: queries refused by admission control (load shedding).
pub const OVERLOAD_SHED_TOTAL: &str = "s2s_overload_shed_total";
/// Counter: queries (or per-source exchanges) that exhausted their
/// deadline budget and returned degraded.
pub const OVERLOAD_DEADLINE_EXCEEDED_TOTAL: &str = "s2s_overload_deadline_exceeded_total";
/// Counter: hedged replica requests launched against stragglers.
pub const HEDGE_LAUNCHED_TOTAL: &str = "s2s_hedge_launched_total";
/// Counter: hedged requests whose replica reply beat the primary.
/// Invariant: `hedge_wins ≤ hedge_launched`.
pub const HEDGE_WINS_TOTAL: &str = "s2s_hedge_wins_total";
/// Gauge: queries currently waiting in the admission queue.
pub const ADMISSION_QUEUE_DEPTH: &str = "s2s_admission_queue_depth";
/// Gauge: the admission controller's live per-query service-time
/// estimate, microseconds of simulated time (EWMA of completions).
pub const ADMISSION_SERVICE_ESTIMATE_US: &str = "s2s_admission_service_estimate_us";

/// Gauge: tasks currently live (spawned, not yet done) on the reactor.
pub const REACTOR_IN_FLIGHT: &str = "s2s_reactor_in_flight";
/// Gauge: timers pending across all reactor shards.
pub const REACTOR_TIMER_DEPTH: &str = "s2s_reactor_timer_depth";
/// Counter: timer events fired by the reactor.
pub const REACTOR_EVENTS_TOTAL: &str = "s2s_reactor_events_total";
/// Counter: tasks spawned onto the reactor.
pub const REACTOR_TASKS_TOTAL: &str = "s2s_reactor_tasks_total";
/// Gauge: shard balance of the last completed reactor run — events
/// fired on the busiest shard divided by the per-shard mean (1.0 =
/// perfectly balanced).
pub const REACTOR_SHARD_BALANCE: &str = "s2s_reactor_shard_balance";

/// Counter: sources run through the mapping bootstrap pass.
pub const BOOTSTRAP_SOURCES_TOTAL: &str = "s2s_bootstrap_sources_total";
/// Counter: mapping candidates generated by bootstrap.
pub const BOOTSTRAP_CANDIDATES_TOTAL: &str = "s2s_bootstrap_candidates_total";
/// Counter: conflicts surfaced by bootstrap (not auto-registered).
pub const BOOTSTRAP_CONFLICTS_TOTAL: &str = "s2s_bootstrap_conflicts_total";
/// Counter: accepted bootstrap candidates registered as mappings.
pub const BOOTSTRAP_APPLIED_TOTAL: &str = "s2s_bootstrap_applied_total";

/// Gauge name for one tenant's admission backlog.
///
/// Per-tenant series share the `s2s_admission_tenant_backlog_` prefix;
/// the tenant id is embedded in the metric name because the registry
/// is label-free.
pub fn tenant_backlog_gauge(tenant: &str) -> String {
    format!("s2s_admission_tenant_backlog_{tenant}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_unique_and_prefixed() {
        let all = [
            super::POOL_WORKERS,
            super::POOL_QUEUE_DEPTH,
            super::POOL_QUEUE_WAIT_US,
            super::POOL_JOBS_TOTAL,
            super::RESULT_CACHE_HITS_TOTAL,
            super::RESULT_CACHE_MISSES_TOTAL,
            super::RESULT_CACHE_EVICTIONS_TOTAL,
            super::RESULT_CACHE_INVALIDATIONS_TOTAL,
            super::PLAN_CACHE_HITS_TOTAL,
            super::PLAN_CACHE_MISSES_TOTAL,
            super::PLAN_CACHE_EVICTIONS_TOTAL,
            super::PLAN_CACHE_INVALIDATIONS_TOTAL,
            super::SOURCE_MUTATIONS_TOTAL,
            super::CACHE_INVALIDATED_ENTRIES_TOTAL,
            super::VIEW_HITS_TOTAL,
            super::VIEW_REFRESHES_TOTAL,
            super::VIEW_FULL_REFRESHES_TOTAL,
            super::FEED_POLLS_TOTAL,
            super::VIEW_STALENESS_US,
            super::EXTRACTION_CACHE_EVICTIONS_TOTAL,
            super::RULE_CACHE_EVICTIONS_TOTAL,
            super::OVERLOAD_SHED_TOTAL,
            super::OVERLOAD_DEADLINE_EXCEEDED_TOTAL,
            super::HEDGE_LAUNCHED_TOTAL,
            super::HEDGE_WINS_TOTAL,
            super::ADMISSION_QUEUE_DEPTH,
            super::ADMISSION_SERVICE_ESTIMATE_US,
            super::REACTOR_IN_FLIGHT,
            super::REACTOR_TIMER_DEPTH,
            super::REACTOR_EVENTS_TOTAL,
            super::REACTOR_TASKS_TOTAL,
            super::REACTOR_SHARD_BALANCE,
            super::BOOTSTRAP_SOURCES_TOTAL,
            super::BOOTSTRAP_CANDIDATES_TOTAL,
            super::BOOTSTRAP_CONFLICTS_TOTAL,
            super::BOOTSTRAP_APPLIED_TOTAL,
        ];
        let unique: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
        assert!(all.iter().all(|n| n.starts_with("s2s_")));
        assert!(super::tenant_backlog_gauge("acme").starts_with("s2s_"));
        assert_ne!(super::tenant_backlog_gauge("a"), super::tenant_backlog_gauge("b"));
    }
}
