//! # s2s-obs
//!
//! Observability for the S2S middleware: per-query **trace trees**, a
//! process-wide **metrics registry**, and **exporters** for both.
//!
//! The crate is deliberately a leaf: it depends only on `parking_lot`
//! and stores every duration as plain `u64` microseconds, so both
//! `s2s-netsim` (virtual time) and `s2s-core` (wall time) can feed it
//! without a dependency cycle.
//!
//! * [`trace`] — [`Span`]/[`Trace`]: a tree of `query → parse / map /
//!   plan → batch[source] → attempt[endpoint] / rule[attr]` spans, each
//!   carrying simulated and wall-clock durations, an [`SpanOutcome`],
//!   and free-form attributes (cache provenance, retry counts, …).
//! * [`metrics`] — [`Counter`], [`Gauge`], and fixed-bucket latency
//!   [`Histogram`]s (p50/p90/p99 summaries) behind a [`MetricsRegistry`].
//! * [`export`] — a human-readable text tree, a JSON-lines trace dump,
//!   and a Prometheus-style text snapshot. Each machine-readable format
//!   ships with a minimal parser so CI can validate round-trips.
//! * [`names`] — canonical metric-name constants for the concurrency
//!   and caching layers (pool gauges, queue-wait histogram, per-cache
//!   hit/miss/eviction counters), so emitters and audits cannot drift
//!   apart on spelling.
//!
//! ## The global registry and the enabled flag
//!
//! Instrumentation call sites throughout the workspace are guarded by
//! [`enabled`], a single relaxed atomic load that defaults to `false`.
//! With metrics disabled the instrumented hot paths do no other work —
//! no registry lookups, no allocation — so the observability layer is
//! free unless switched on via [`set_enabled`].

pub mod export;
pub mod metrics;
pub mod names;
pub mod trace;

pub use export::{
    parse_jsonl, parse_prometheus, render_jsonl, render_jsonl_records, render_prometheus,
    render_tree, MetricSample, SpanRecord,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{Span, SpanKind, SpanOutcome, Trace};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// Whether process-wide metrics collection is on.
///
/// Instrumented call sites check this before touching the registry, so
/// the disabled path costs one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns process-wide metrics collection on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide metrics registry.
///
/// Lazily created on first use; shared by every crate in the workspace.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        // Other tests may race on the global flag; only assert the
        // toggle round-trips.
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const MetricsRegistry;
        let b = global() as *const MetricsRegistry;
        assert_eq!(a, b);
    }
}
