//! Counters, gauges, and fixed-bucket histograms behind a registry.
//!
//! All metric types are cheap, lock-free on the update path (plain
//! atomics), and snapshot-consistent enough for reporting: a snapshot
//! taken while updates are in flight may be off by the in-flight
//! updates, never torn.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the last `f64` set.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram over `u64` observations (microseconds by
/// convention).
///
/// Buckets are defined by a strictly increasing list of inclusive
/// upper bounds; an implicit overflow bucket (`+Inf`) catches the rest.
/// Percentiles are estimated Prometheus-style from the cumulative
/// bucket counts with linear interpolation inside the target bucket, so
/// they are approximations bounded by bucket width — good enough to
/// spot order-of-magnitude latency shifts, which is what they are for.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Default latency buckets in microseconds: exponential from 100 µs
    /// to ~100 s, matched to the netsim cost models (LAN base 500 µs,
    /// WAN base 40 ms, default timeout 30 s).
    pub fn latency() -> Self {
        Histogram::new(&[
            100,
            250,
            500,
            1_000,
            2_500,
            5_000,
            10_000,
            25_000,
            50_000,
            100_000,
            250_000,
            500_000,
            1_000_000,
            2_500_000,
            5_000_000,
            10_000_000,
            30_000_000,
            100_000_000,
        ])
    }

    /// The inclusive upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, one per bound plus the trailing overflow
    /// bucket (non-cumulative).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from bucket counts.
    ///
    /// Linear interpolation inside the target bucket; observations in
    /// the overflow bucket report the largest finite bound. Returns
    /// `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * total as f64;
        let mut cumulative = 0u64;
        for (idx, &n) in counts.iter().enumerate() {
            let prev = cumulative;
            cumulative += n;
            if (cumulative as f64) < target || n == 0 {
                continue;
            }
            if idx >= self.bounds.len() {
                // Overflow bucket: no finite upper bound to interpolate
                // toward; report the largest finite bound.
                return self.bounds[self.bounds.len() - 1] as f64;
            }
            let lower = if idx == 0 { 0.0 } else { self.bounds[idx - 1] as f64 };
            let upper = self.bounds[idx] as f64;
            let fraction = (target - prev as f64) / n as f64;
            return lower + (upper - lower) * fraction.clamp(0.0, 1.0);
        }
        self.bounds[self.bounds.len() - 1] as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Metrics are created on first use and shared via `Arc`, so call sites
/// can either look up by name per update (cheap: one read lock and a
/// `BTreeMap` walk, taken only when observability is enabled) or hold
/// the `Arc` across updates. `BTreeMap` keys make every export
/// deterministic, which the trace-determinism tests rely on.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        debug_assert!(valid_metric_name(name), "invalid metric name: {name:?}");
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created at `0.0` on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        debug_assert!(valid_metric_name(name), "invalid metric name: {name:?}");
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges.write().entry(name.to_string()).or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created with the default
    /// [`Histogram::latency`] buckets on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        debug_assert!(valid_metric_name(name), "invalid metric name: {name:?}");
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::latency())),
        )
    }

    /// Visits every counter in name order.
    pub fn for_each_counter(&self, mut f: impl FnMut(&str, &Counter)) {
        for (name, c) in self.counters.read().iter() {
            f(name, c);
        }
    }

    /// Visits every gauge in name order.
    pub fn for_each_gauge(&self, mut f: impl FnMut(&str, &Gauge)) {
        for (name, g) in self.gauges.read().iter() {
            f(name, g);
        }
    }

    /// Visits every histogram in name order.
    pub fn for_each_histogram(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (name, h) in self.histograms.read().iter() {
            f(name, h);
        }
    }

    /// Number of registered metrics across all three kinds.
    pub fn len(&self) -> usize {
        self.counters.read().len() + self.gauges.read().len() + self.histograms.read().len()
    }

    /// Whether no metric has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every registered metric (used by tests and the A/B
    /// overhead bench to start from a clean slate).
    pub fn clear(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

/// Prometheus-compatible metric names: `[a-zA-Z_][a-zA-Z0-9_]*`.
pub(crate) fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("s2s_test_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("s2s_test_total").get(), 5);
        let g = reg.gauge("s2s_test_value");
        g.set(0.25);
        assert_eq!(reg.gauge("s2s_test_value").get(), 0.25);
        assert_eq!(reg.len(), 2);
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.observe(0); // -> le=10
        h.observe(10); // boundary value lands in its own bucket
        h.observe(11); // -> le=100
        h.observe(100); // -> le=100
        h.observe(101); // -> le=1000
        h.observe(5000); // -> +Inf overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10 + 11 + 100 + 101 + 5000);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let h = Histogram::new(&[100, 200, 400]);
        // 100 observations uniformly into the (100, 200] bucket.
        for _ in 0..100 {
            h.observe(150);
        }
        // Target rank is in the only populated bucket; the p50 estimate
        // interpolates halfway through it.
        assert_eq!(h.p50(), 150.0);
        assert_eq!(h.p99(), 199.0);
        assert_eq!(h.quantile(1.0), 200.0);
    }

    #[test]
    fn percentiles_across_buckets() {
        let h = Histogram::new(&[10, 20, 30, 40]);
        for v in [5u64, 15, 25, 35] {
            for _ in 0..25 {
                h.observe(v);
            }
        }
        // 25% of mass per bucket: p50 sits exactly at the end of the
        // second bucket, p90 at 60% through the fourth (30 + 0.6*10).
        assert_eq!(h.p50(), 20.0);
        assert_eq!(h.p90(), 36.0);
    }

    #[test]
    fn overflow_bucket_reports_largest_finite_bound() {
        let h = Histogram::new(&[10, 20]);
        h.observe(1_000_000);
        assert_eq!(h.p50(), 20.0);
        assert_eq!(h.p99(), 20.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::latency();
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_bounds_panic() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("s2s_queries_total"));
        assert!(valid_metric_name("_private"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has space"));
        assert!(!valid_metric_name("has-dash"));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        reg.counter("s2s_concurrent_total").inc();
                        reg.histogram("s2s_concurrent_us").observe(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("s2s_concurrent_total").get(), 4000);
        assert_eq!(reg.histogram("s2s_concurrent_us").count(), 4000);
    }
}
