//! Pattern syntax tree and recursive-descent parser.

use crate::error::RegexError;

/// A node of the parsed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class.
    Class(ClassSet),
    /// Concatenation of subexpressions.
    Concat(Vec<Ast>),
    /// Alternation (`a|b`); tried left to right.
    Alternate(Vec<Ast>),
    /// Repetition of a subexpression.
    Repeat {
        /// The repeated subexpression.
        node: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` = unbounded.
        max: Option<u32>,
        /// Whether the quantifier is lazy (`*?`, `+?`, …).
        lazy: bool,
    },
    /// A capturing group with 1-based index.
    Group { index: u32, node: Box<Ast> },
    /// A non-capturing group `(?:...)`.
    NonCapturing(Box<Ast>),
    /// `^` — start of haystack.
    AnchorStart,
    /// `$` — end of haystack.
    AnchorEnd,
    /// `\b` — word boundary.
    WordBoundary,
    /// `\B` — not a word boundary.
    NotWordBoundary,
}

/// A set of character ranges, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSet {
    /// Inclusive character ranges, sorted and non-overlapping after
    /// normalization.
    pub ranges: Vec<(char, char)>,
    /// Whether the class is negated (`[^...]`).
    pub negated: bool,
}

impl ClassSet {
    /// Builds a normalized class from arbitrary ranges.
    pub fn new(mut ranges: Vec<(char, char)>, negated: bool) -> Self {
        ranges.sort_unstable();
        // Merge overlapping/adjacent ranges.
        let mut merged: Vec<(char, char)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match merged.last_mut() {
                Some((_, phi)) if (*phi as u32) + 1 >= lo as u32 => {
                    if hi > *phi {
                        *phi = hi;
                    }
                }
                _ => merged.push((lo, hi)),
            }
        }
        ClassSet { ranges: merged, negated }
    }

    /// Whether `c` is a member of the class.
    pub fn contains(&self, c: char) -> bool {
        let inside = self
            .ranges
            .binary_search_by(|&(lo, hi)| {
                if c < lo {
                    std::cmp::Ordering::Greater
                } else if c > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok();
        inside != self.negated
    }

    fn digits() -> Vec<(char, char)> {
        vec![('0', '9')]
    }

    fn word() -> Vec<(char, char)> {
        vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')]
    }

    fn space() -> Vec<(char, char)> {
        vec![('\t', '\r'), (' ', ' ')]
    }
}

/// Is `c` a word character for `\b` purposes?
pub fn is_word_char(c: char) -> bool {
    c == '_' || c.is_ascii_alphanumeric()
}

/// Parses `pattern` into an [`Ast`].
///
/// # Errors
///
/// Returns [`RegexError`] on any syntax error, with the byte position of
/// the offending construct.
pub fn parse(pattern: &str) -> Result<Ast, RegexError> {
    let mut p = Parser { chars: pattern.char_indices().collect(), pos: 0, next_group: 1 };
    let ast = p.parse_alternation()?;
    if p.pos < p.chars.len() {
        return Err(RegexError::new(p.byte_pos(), "unmatched `)`"));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
    next_group: u32,
}

impl Parser {
    fn byte_pos(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(b, _)| b)
            .unwrap_or_else(|| self.chars.last().map(|&(b, c)| b + c.len_utf8()).unwrap_or(0))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None | Some('|') | Some(')') => break,
                _ => {}
            }
            let atom = self.parse_atom()?;
            let atom = self.parse_quantifier(atom)?;
            items.push(atom);
        }
        match items.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(items.pop().unwrap()),
            _ => Ok(Ast::Concat(items)),
        }
    }

    fn parse_quantifier(&mut self, atom: Ast) -> Result<Ast, RegexError> {
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                let save = self.pos;
                self.bump();
                match self.parse_bounds() {
                    Ok(b) => b,
                    Err(_) => {
                        // `{` not followed by valid bounds is a literal.
                        self.pos = save;
                        return Ok(atom);
                    }
                }
            }
            _ => return Ok(atom),
        };
        if quantifiable(&atom).is_err() {
            return Err(RegexError::new(self.byte_pos(), "quantifier follows nothing repeatable"));
        }
        if let Some(mx) = max {
            if min > mx {
                return Err(RegexError::new(self.byte_pos(), "repetition minimum exceeds maximum"));
            }
        }
        let lazy = self.eat('?');
        Ok(Ast::Repeat { node: Box::new(atom), min, max, lazy })
    }

    fn parse_bounds(&mut self) -> Result<(u32, Option<u32>), RegexError> {
        let min = self.parse_number()?;
        let bounds = if self.eat(',') {
            if self.peek() == Some('}') {
                (min, None)
            } else {
                (min, Some(self.parse_number()?))
            }
        } else {
            (min, Some(min))
        };
        if !self.eat('}') {
            return Err(RegexError::new(self.byte_pos(), "expected `}` after repetition bounds"));
        }
        Ok(bounds)
    }

    fn parse_number(&mut self) -> Result<u32, RegexError> {
        let mut n: u32 = 0;
        let mut seen = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                seen = true;
                n = n.checked_mul(10).and_then(|n| n.checked_add(d)).ok_or_else(|| {
                    RegexError::new(self.byte_pos(), "repetition bound too large")
                })?;
                if n > 10_000 {
                    return Err(RegexError::new(self.byte_pos(), "repetition bound exceeds 10000"));
                }
                self.bump();
            } else {
                break;
            }
        }
        if !seen {
            return Err(RegexError::new(self.byte_pos(), "expected a number"));
        }
        Ok(n)
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        let start = self.byte_pos();
        let c = self.bump().ok_or_else(|| RegexError::new(start, "unexpected end of pattern"))?;
        match c {
            '(' => {
                if self.peek() == Some('?') {
                    self.bump();
                    if !self.eat(':') {
                        return Err(RegexError::new(
                            self.byte_pos(),
                            "only `(?:...)` groups are supported after `(?`",
                        ));
                    }
                    let inner = self.parse_alternation()?;
                    if !self.eat(')') {
                        return Err(RegexError::new(self.byte_pos(), "missing `)`"));
                    }
                    Ok(Ast::NonCapturing(Box::new(inner)))
                } else {
                    let index = self.next_group;
                    self.next_group += 1;
                    let inner = self.parse_alternation()?;
                    if !self.eat(')') {
                        return Err(RegexError::new(self.byte_pos(), "missing `)`"));
                    }
                    Ok(Ast::Group { index, node: Box::new(inner) })
                }
            }
            '[' => self.parse_class(start),
            '.' => Ok(Ast::AnyChar),
            '^' => Ok(Ast::AnchorStart),
            '$' => Ok(Ast::AnchorEnd),
            '\\' => self.parse_escape(start),
            '*' | '+' | '?' => Err(RegexError::new(start, "quantifier follows nothing repeatable")),
            c => Ok(Ast::Literal(c)),
        }
    }

    fn parse_escape(&mut self, start: usize) -> Result<Ast, RegexError> {
        let c = self
            .bump()
            .ok_or_else(|| RegexError::new(start, "pattern ends with a trailing backslash"))?;
        Ok(match c {
            'd' => Ast::Class(ClassSet::new(ClassSet::digits(), false)),
            'D' => Ast::Class(ClassSet::new(ClassSet::digits(), true)),
            'w' => Ast::Class(ClassSet::new(ClassSet::word(), false)),
            'W' => Ast::Class(ClassSet::new(ClassSet::word(), true)),
            's' => Ast::Class(ClassSet::new(ClassSet::space(), false)),
            'S' => Ast::Class(ClassSet::new(ClassSet::space(), true)),
            'b' => Ast::WordBoundary,
            'B' => Ast::NotWordBoundary,
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            '0' => Ast::Literal('\0'),
            'x' => {
                let hi = self.hex_digit(start)?;
                let lo = self.hex_digit(start)?;
                let v = (hi * 16 + lo) as u8;
                Ast::Literal(v as char)
            }
            c if c.is_ascii_alphanumeric() => {
                return Err(RegexError::new(start, format!("unknown escape `\\{c}`")));
            }
            c => Ast::Literal(c),
        })
    }

    fn hex_digit(&mut self, start: usize) -> Result<u32, RegexError> {
        let c = self.bump().ok_or_else(|| RegexError::new(start, "truncated \\x escape"))?;
        c.to_digit(16).ok_or_else(|| RegexError::new(start, "invalid hex digit in \\x escape"))
    }

    fn parse_class(&mut self, start: usize) -> Result<Ast, RegexError> {
        let negated = self.eat('^');
        let mut ranges: Vec<(char, char)> = Vec::new();
        // A `]` directly after `[` or `[^` is a literal member.
        if self.peek() == Some(']') {
            self.bump();
            ranges.push((']', ']'));
        }
        loop {
            let c = match self.bump() {
                None => return Err(RegexError::new(start, "unterminated character class")),
                Some(']') => break,
                Some(c) => c,
            };
            let lo = if c == '\\' {
                match self.class_escape(start)? {
                    ClassItem::Char(c) => c,
                    ClassItem::Set(set) => {
                        ranges.extend(set);
                        continue;
                    }
                }
            } else {
                c
            };
            if self.peek() == Some('-')
                && self.chars.get(self.pos + 1).map(|&(_, c)| c) != Some(']')
            {
                self.bump(); // '-'
                let hi_c = self
                    .bump()
                    .ok_or_else(|| RegexError::new(start, "unterminated character class"))?;
                let hi = if hi_c == '\\' {
                    match self.class_escape(start)? {
                        ClassItem::Char(c) => c,
                        ClassItem::Set(_) => {
                            return Err(RegexError::new(
                                start,
                                "class shorthand cannot be a range endpoint",
                            ));
                        }
                    }
                } else {
                    hi_c
                };
                if lo > hi {
                    return Err(RegexError::new(start, "character range is out of order"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return Err(RegexError::new(start, "empty character class"));
        }
        Ok(Ast::Class(ClassSet::new(ranges, negated)))
    }

    fn class_escape(&mut self, start: usize) -> Result<ClassItem, RegexError> {
        let c = self.bump().ok_or_else(|| RegexError::new(start, "trailing backslash in class"))?;
        Ok(match c {
            'd' => ClassItem::Set(ClassSet::digits()),
            'w' => ClassItem::Set(ClassSet::word()),
            's' => ClassItem::Set(ClassSet::space()),
            'n' => ClassItem::Char('\n'),
            't' => ClassItem::Char('\t'),
            'r' => ClassItem::Char('\r'),
            c if c.is_ascii_alphanumeric() => {
                return Err(RegexError::new(start, format!("unknown class escape `\\{c}`")));
            }
            c => ClassItem::Char(c),
        })
    }
}

enum ClassItem {
    Char(char),
    Set(Vec<(char, char)>),
}

fn quantifiable(ast: &Ast) -> Result<(), ()> {
    match ast {
        Ast::AnchorStart
        | Ast::AnchorEnd
        | Ast::WordBoundary
        | Ast::NotWordBoundary
        | Ast::Empty => Err(()),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literal_concat() {
        let ast = parse("ab").unwrap();
        assert_eq!(ast, Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')]));
    }

    #[test]
    fn parses_alternation() {
        let ast = parse("a|b|c").unwrap();
        match ast {
            Ast::Alternate(v) => assert_eq!(v.len(), 3),
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn group_indices_assigned_in_order() {
        let ast = parse("(a)((b)c)").unwrap();
        fn collect(ast: &Ast, out: &mut Vec<u32>) {
            match ast {
                Ast::Group { index, node } => {
                    out.push(*index);
                    collect(node, out);
                }
                Ast::Concat(v) | Ast::Alternate(v) => v.iter().for_each(|n| collect(n, out)),
                Ast::Repeat { node, .. } | Ast::NonCapturing(node) => collect(node, out),
                _ => {}
            }
        }
        let mut ids = Vec::new();
        collect(&ast, &mut ids);
        assert_eq!(ids, [1, 2, 3]);
    }

    #[test]
    fn class_normalization_merges() {
        let set = ClassSet::new(vec![('a', 'd'), ('c', 'f'), ('h', 'h')], false);
        assert_eq!(set.ranges, vec![('a', 'f'), ('h', 'h')]);
        assert!(set.contains('e'));
        assert!(!set.contains('g'));
        assert!(set.contains('h'));
    }

    #[test]
    fn negated_class_contains() {
        let set = ClassSet::new(vec![('0', '9')], true);
        assert!(set.contains('a'));
        assert!(!set.contains('5'));
    }

    #[test]
    fn literal_close_bracket_first() {
        let ast = parse("[]a]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains(']'));
                assert!(set.contains('a'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn dash_at_end_is_literal() {
        let ast = parse("[a-]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains('-'));
                assert!(set.contains('a'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn brace_without_bounds_is_literal() {
        let ast = parse("a{b").unwrap();
        assert_eq!(ast, Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('{'), Ast::Literal('b')]));
    }

    #[test]
    fn hex_escape() {
        assert_eq!(parse(r"\x41").unwrap(), Ast::Literal('A'));
    }

    #[test]
    fn rejects_double_quantifier() {
        assert!(parse("a**").is_err());
        assert!(parse("^*").is_err());
    }

    #[test]
    fn lazy_flag_set() {
        match parse("a+?").unwrap() {
            Ast::Repeat { lazy, min, max, .. } => {
                assert!(lazy);
                assert_eq!((min, max), (1, None));
            }
            other => panic!("expected repeat, got {other:?}"),
        }
    }
}
