//! Pike-style NFA virtual machine.
//!
//! Executes a compiled [`Program`] over a haystack in
//! `O(len(program) × len(haystack))` time, tracking capture slots per
//! thread. Thread priority (order in the thread list) implements leftmost
//! and greediness semantics without backtracking.

use std::rc::Rc;

use crate::ast::is_word_char;
use crate::compiler::{Inst, Program};

/// Searches `haystack` for the leftmost match starting at or after byte
/// offset `start`. Returns the capture slots (pairs of byte offsets) on
/// success: index 0 = whole match, index `i` = group `i`.
pub fn search(
    program: &Program,
    haystack: &str,
    start: usize,
) -> Option<Vec<Option<(usize, usize)>>> {
    let chars: Vec<(usize, char)> =
        haystack[start..].char_indices().map(|(i, c)| (i + start, c)).collect();
    search_chars(program, haystack, &chars)
}

/// Like [`search`], but over a precomputed `(byte offset, char)` slice
/// (absolute offsets into `haystack`). Lets iteration reuse one index
/// vector instead of re-allocating per call.
pub fn search_chars(
    program: &Program,
    haystack: &str,
    chars: &[(usize, char)],
) -> Option<Vec<Option<(usize, usize)>>> {
    let n = program.insts.len();

    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    let mut matched: Option<Rc<Slots>> = None;

    // Positions are indices into `chars`, plus one end-of-input position.
    for pos in 0..=chars.len() {
        let at = chars.get(pos).map(|&(b, _)| b).unwrap_or(haystack.len());

        // Only seed new start threads while no match has been found
        // (leftmost semantics); seed at lower priority than existing
        // threads so earlier starts win.
        if matched.is_none() {
            let slots = Rc::new(Slots::new(program.slots));
            add_thread(program, &mut clist, 0, slots, haystack, at);
        }

        if clist.is_empty() && matched.is_some() {
            break;
        }

        let mut i = 0;
        while i < clist.threads.len() {
            let Thread { pc, slots } = clist.threads[i].clone();
            i += 1;
            match &program.insts[pc] {
                Inst::Match => {
                    // Highest-priority match at this position; cut off all
                    // lower-priority threads.
                    matched = Some(slots);
                    clist.threads.truncate(i);
                    break;
                }
                Inst::Char(c) => {
                    if let Some(&(_, hc)) = chars.get(pos) {
                        if hc == *c {
                            let next_at = next_boundary(chars, pos, haystack);
                            add_thread(program, &mut nlist, pc + 1, slots, haystack, next_at);
                        }
                    }
                }
                Inst::Any => {
                    if let Some(&(_, hc)) = chars.get(pos) {
                        if hc != '\n' {
                            let next_at = next_boundary(chars, pos, haystack);
                            add_thread(program, &mut nlist, pc + 1, slots, haystack, next_at);
                        }
                    }
                }
                Inst::Class(set) => {
                    if let Some(&(_, hc)) = chars.get(pos) {
                        if set.contains(hc) {
                            let next_at = next_boundary(chars, pos, haystack);
                            add_thread(program, &mut nlist, pc + 1, slots, haystack, next_at);
                        }
                    }
                }
                // Split/Jmp/Save/Assert are handled in add_thread.
                _ => unreachable!("non-consuming instruction in run list"),
            }
        }

        std::mem::swap(&mut clist, &mut nlist);
        nlist.clear();

        if matched.is_some() && clist.is_empty() {
            break;
        }
    }

    matched.map(|slots| {
        (0..program.slots / 2)
            .map(|g| match (slots.get(2 * g), slots.get(2 * g + 1)) {
                (Some(s), Some(e)) => Some((s, e)),
                _ => None,
            })
            .collect()
    })
}

fn next_boundary(chars: &[(usize, char)], pos: usize, haystack: &str) -> usize {
    chars.get(pos + 1).map(|&(b, _)| b).unwrap_or(haystack.len())
}

/// Persistent capture-slot list: a small immutable linked structure so that
/// threads can share unmodified prefixes cheaply.
#[derive(Debug)]
struct Slots {
    values: Vec<Option<usize>>,
}

impl Slots {
    fn new(n: usize) -> Self {
        Slots { values: vec![None; n] }
    }

    fn set(self: &Rc<Self>, index: usize, value: usize) -> Rc<Self> {
        let mut values = self.values.clone();
        if index < values.len() {
            values[index] = Some(value);
        }
        Rc::new(Slots { values })
    }

    fn get(&self, index: usize) -> Option<usize> {
        *self.values.get(index)?
    }
}

#[derive(Clone)]
struct Thread {
    pc: usize,
    slots: Rc<Slots>,
}

struct ThreadList {
    threads: Vec<Thread>,
    seen: Vec<bool>,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList { threads: Vec::new(), seen: vec![false; n] }
    }

    fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.seen.iter_mut().for_each(|s| *s = false);
    }
}

/// Adds a thread, eagerly following non-consuming instructions (epsilon
/// closure) and de-duplicating by program counter.
fn add_thread(
    program: &Program,
    list: &mut ThreadList,
    pc: usize,
    slots: Rc<Slots>,
    haystack: &str,
    at: usize,
) {
    if list.seen[pc] {
        return;
    }
    list.seen[pc] = true;
    match &program.insts[pc] {
        Inst::Jmp(t) => add_thread(program, list, *t, slots, haystack, at),
        Inst::Split(a, b) => {
            add_thread(program, list, *a, slots.clone(), haystack, at);
            add_thread(program, list, *b, slots, haystack, at);
        }
        Inst::Save(n) => {
            let slots = slots.set(*n, at);
            add_thread(program, list, pc + 1, slots, haystack, at);
        }
        Inst::AssertStart => {
            if at == 0 {
                add_thread(program, list, pc + 1, slots, haystack, at);
            }
        }
        Inst::AssertEnd => {
            if at == haystack.len() {
                add_thread(program, list, pc + 1, slots, haystack, at);
            }
        }
        Inst::AssertWordBoundary => {
            if at_word_boundary(haystack, at) {
                add_thread(program, list, pc + 1, slots, haystack, at);
            }
        }
        Inst::AssertNotWordBoundary => {
            if !at_word_boundary(haystack, at) {
                add_thread(program, list, pc + 1, slots, haystack, at);
            }
        }
        _ => list.threads.push(Thread { pc, slots }),
    }
}

fn at_word_boundary(haystack: &str, at: usize) -> bool {
    let before = haystack[..at].chars().next_back().map(is_word_char).unwrap_or(false);
    let after = haystack[at..].chars().next().map(is_word_char).unwrap_or(false);
    before != after
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn greedy_vs_lazy_capture_positions() {
        let re = Regex::new(r#""(.*)""#).unwrap();
        let m = re.find(r#"say "a" and "b" now"#).unwrap();
        assert_eq!(m.get(1).unwrap().text(), r#"a" and "b"#);
        let re = Regex::new(r#""(.*?)""#).unwrap();
        let m = re.find(r#"say "a" and "b" now"#).unwrap();
        assert_eq!(m.get(1).unwrap().text(), "a");
    }

    #[test]
    fn group_in_loop_reports_last_iteration() {
        let re = Regex::new(r"(?:(a|b))+").unwrap();
        let m = re.find("abab").unwrap();
        assert_eq!(m.text(), "abab");
        assert_eq!(m.get(1).unwrap().text(), "b");
    }

    #[test]
    fn unmatched_group_is_none() {
        let re = Regex::new(r"(a)|(b)").unwrap();
        let m = re.find("b").unwrap();
        assert!(m.get(1).is_none());
        assert_eq!(m.get(2).unwrap().text(), "b");
    }

    #[test]
    fn dot_does_not_match_newline() {
        let re = Regex::new(r"a.b").unwrap();
        assert!(!re.is_match("a\nb"));
        assert!(re.is_match("axb"));
    }

    #[test]
    fn multibyte_offsets_are_byte_offsets() {
        let re = Regex::new("b").unwrap();
        let m = re.find("éb").unwrap();
        assert_eq!(m.start(), 2); // é is 2 bytes
    }

    #[test]
    fn leftmost_longest_among_greedy() {
        let re = Regex::new("a|ab").unwrap();
        // Alternation is first-match (PCRE-like), not POSIX longest.
        assert_eq!(re.find("ab").unwrap().text(), "a");
    }

    #[test]
    fn anchored_end_only() {
        let re = Regex::new(r"\d+$").unwrap();
        assert_eq!(re.find("a1 b22").unwrap().text(), "22");
    }
}
