//! Pushed match constraints.
//!
//! A [`Constraint`] is one `WHERE` conjunct translated into a form the
//! text-oriented extractors (WebL programs, guarded regex rules) can
//! evaluate at the source. Its semantics mirror the mediator's
//! post-filter comparison exactly — numeric comparison when both sides
//! parse as `f64`, lexicographic otherwise, SQL `LIKE` with `%`/`_` —
//! so pushing a constraint down never changes which values survive.

use std::cmp::Ordering;

/// The comparison operator of a pushed constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `LIKE` (`%` matches any run, `_` any single char).
    Like,
}

impl ConstraintOp {
    /// The canonical operator token.
    pub fn token(self) -> &'static str {
        match self {
            ConstraintOp::Eq => "=",
            ConstraintOp::Ne => "!=",
            ConstraintOp::Lt => "<",
            ConstraintOp::Le => "<=",
            ConstraintOp::Gt => ">",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Like => "LIKE",
        }
    }

    /// Parses an operator token (the inverse of [`ConstraintOp::token`]).
    pub fn parse(token: &str) -> Option<ConstraintOp> {
        Some(match token {
            "=" => ConstraintOp::Eq,
            "!=" => ConstraintOp::Ne,
            "<" => ConstraintOp::Lt,
            "<=" => ConstraintOp::Le,
            ">" => ConstraintOp::Gt,
            ">=" => ConstraintOp::Ge,
            "LIKE" => ConstraintOp::Like,
            _ => return None,
        })
    }
}

/// One pushed comparison: `candidate op value`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The operator.
    pub op: ConstraintOp,
    /// The right-hand comparison value (unquoted; a pattern for `LIKE`).
    pub value: String,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(op: ConstraintOp, value: impl Into<String>) -> Self {
        Constraint { op, value: value.into() }
    }

    /// Whether `candidate` satisfies the constraint, under the
    /// mediator's comparison semantics: numeric when both sides parse
    /// as `f64`, string comparison otherwise.
    pub fn matches(&self, candidate: &str) -> bool {
        if self.op == ConstraintOp::Like {
            return like_match(candidate, &self.value);
        }
        let ord = match (candidate.parse::<f64>(), self.value.parse::<f64>()) {
            (Ok(a), Ok(b)) => match a.partial_cmp(&b) {
                Some(o) => o,
                None => return false,
            },
            _ => candidate.cmp(self.value.as_str()),
        };
        match self.op {
            ConstraintOp::Eq => ord == Ordering::Equal,
            ConstraintOp::Ne => ord != Ordering::Equal,
            ConstraintOp::Lt => ord == Ordering::Less,
            ConstraintOp::Le => ord != Ordering::Greater,
            ConstraintOp::Gt => ord == Ordering::Greater,
            ConstraintOp::Ge => ord != Ordering::Less,
            ConstraintOp::Like => unreachable!("handled above"),
        }
    }
}

/// SQL `LIKE` matching: `%` matches any run, `_` any single character;
/// case-sensitive. Semantics match `s2s_minidb::value::like_match` so
/// a constraint pushed to a text source filters identically to the
/// same predicate pushed to a database.
pub fn like_match(value: &str, pattern: &str) -> bool {
    fn rec(v: &[char], p: &[char]) -> bool {
        match p.first() {
            None => v.is_empty(),
            Some('%') => (0..=v.len()).any(|i| rec(&v[i..], &p[1..])),
            Some('_') => !v.is_empty() && rec(&v[1..], &p[1..]),
            Some(c) => v.first() == Some(c) && rec(&v[1..], &p[1..]),
        }
    }
    let v: Vec<char> = value.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&v, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_tokens_roundtrip() {
        for op in [
            ConstraintOp::Eq,
            ConstraintOp::Ne,
            ConstraintOp::Lt,
            ConstraintOp::Le,
            ConstraintOp::Gt,
            ConstraintOp::Ge,
            ConstraintOp::Like,
        ] {
            assert_eq!(ConstraintOp::parse(op.token()), Some(op));
        }
        assert_eq!(ConstraintOp::parse("<>"), None);
    }

    #[test]
    fn numeric_when_both_sides_parse() {
        let lt = Constraint::new(ConstraintOp::Lt, "100");
        assert!(lt.matches("99.5"));
        assert!(!lt.matches("100"));
        assert!(!lt.matches("250"));
        // "9" < "100" numerically even though "9" > "100" as strings.
        assert!(lt.matches("9"));
    }

    #[test]
    fn string_when_either_side_is_non_numeric() {
        let eq = Constraint::new(ConstraintOp::Eq, "seiko");
        assert!(eq.matches("seiko"));
        assert!(!eq.matches("casio"));
        let ne = Constraint::new(ConstraintOp::Ne, "seiko");
        assert!(ne.matches("casio"));
        // Numeric candidate vs word value falls back to string compare.
        let gt = Constraint::new(ConstraintOp::Gt, "casio");
        assert!(gt.matches("seiko"));
        assert!(!gt.matches("120"));
    }

    #[test]
    fn like_patterns() {
        let like = Constraint::new(ConstraintOp::Like, "s%");
        assert!(like.matches("seiko"));
        assert!(!like.matches("casio"));
        assert!(like_match("stainless-steel", "%steel"));
        assert!(like_match("Seiko", "S_iko"));
        assert!(!like_match("", "_"));
        assert!(like_match("", "%"));
    }
}
