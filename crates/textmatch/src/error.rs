//! Error type for pattern parsing and compilation.

use std::error::Error;
use std::fmt;

/// An error produced while parsing or compiling a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset in the pattern where the problem was detected.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl RegexError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        RegexError { position, message: message.into() }
    }
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid regex at byte {}: {}", self.position, self.message)
    }
}

impl Error for RegexError {}
