//! # s2s-textmatch
//!
//! A self-contained regular-expression engine used throughout the S2S
//! middleware: by the WebL-like web extraction language, by XPath string
//! predicates, and by the plain-text extractor.
//!
//! The engine is a classic three-stage design:
//!
//! 1. [`ast`] — a recursive-descent parser producing a syntax tree,
//! 2. [`compiler`] — compilation to a non-deterministic finite automaton
//!    expressed as a linear instruction program,
//! 3. [`vm`] — a Pike-style virtual machine executing the program over the
//!    haystack in `O(program × input)` time with full capture-group support
//!    (no exponential backtracking).
//!
//! Supported syntax: literals, `.`, character classes (`[a-z0-9_]`,
//! negation, escapes), predefined classes (`\d \w \s \D \W \S`), anchors
//! (`^`, `$`, `\b`, `\B`), greedy and lazy quantifiers (`* + ? {m,n}`),
//! alternation (`|`), capture groups `(...)` and non-capturing groups
//! `(?:...)`.
//!
//! # Examples
//!
//! ```
//! use s2s_textmatch::Regex;
//!
//! # fn main() -> Result<(), s2s_textmatch::RegexError> {
//! let re = Regex::new(r"<b>([0-9a-zA-Z']+)")?;
//! let caps = re.captures("<p><b>Seiko Men's Watch</b></p>").unwrap();
//! assert_eq!(caps.get(1).unwrap().text(), "Seiko");
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod compiler;
pub mod constraint;
pub mod error;
pub mod sniff;
pub mod vm;

pub use constraint::{like_match, Constraint, ConstraintOp};
pub use error::RegexError;
pub use sniff::{sniff_labeled_fields, LabeledField};

use compiler::Program;

/// A compiled regular expression.
///
/// Construction parses and compiles the pattern once; matching methods may
/// then be called any number of times. `Regex` is cheap to clone (the
/// program is immutable) and is `Send + Sync`.
///
/// # Examples
///
/// ```
/// use s2s_textmatch::Regex;
///
/// # fn main() -> Result<(), s2s_textmatch::RegexError> {
/// let re = Regex::new(r"\d{4}-\d{2}-\d{2}")?;
/// assert!(re.is_match("shipped 2026-07-04 from Lisboa"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

/// A single match: the byte range of the overall match plus any capture
/// groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match<'h> {
    haystack: &'h str,
    /// Capture slots: `slots[0]` is the whole match, `slots[i]` group `i`.
    groups: Vec<Option<(usize, usize)>>,
}

/// One capture group of a [`Match`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capture<'h> {
    haystack: &'h str,
    start: usize,
    end: usize,
}

impl<'h> Capture<'h> {
    /// Byte offset where this capture begins.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Byte offset one past the end of this capture.
    pub fn end(&self) -> usize {
        self.end
    }

    /// The captured text.
    pub fn text(&self) -> &'h str {
        &self.haystack[self.start..self.end]
    }

    /// Length of the captured text in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the captured text is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl<'h> Match<'h> {
    /// The capture group `i` (0 is the whole match), if it participated in
    /// the match.
    pub fn get(&self, i: usize) -> Option<Capture<'h>> {
        let (start, end) = (*self.groups.get(i)?)?;
        Some(Capture { haystack: self.haystack, start, end })
    }

    /// The whole matched text.
    pub fn text(&self) -> &'h str {
        self.get(0).map(|c| c.text()).unwrap_or("")
    }

    /// Byte offset where the whole match begins.
    pub fn start(&self) -> usize {
        self.get(0).map(|c| c.start()).unwrap_or(0)
    }

    /// Byte offset one past the end of the whole match.
    pub fn end(&self) -> usize {
        self.get(0).map(|c| c.end()).unwrap_or(0)
    }

    /// Number of capture slots (including the implicit group 0).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

impl Regex {
    /// Parses and compiles `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`RegexError`] if the pattern is syntactically invalid
    /// (unbalanced parentheses, bad repetition bounds, trailing escape, …).
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        let tree = ast::parse(pattern)?;
        let program = compiler::compile(&tree)?;
        Ok(Regex { pattern: pattern.to_string(), program })
    }

    /// The original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, not counting the implicit whole-match
    /// group.
    pub fn capture_count(&self) -> usize {
        self.program.captures
    }

    /// Whether the regex matches anywhere in `haystack`.
    pub fn is_match(&self, haystack: &str) -> bool {
        self.find(haystack).is_some()
    }

    /// Finds the leftmost match, if any.
    pub fn find<'h>(&self, haystack: &'h str) -> Option<Match<'h>> {
        self.find_at(haystack, 0)
    }

    /// Finds the leftmost match starting at or after byte offset `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a char boundary of `haystack`.
    pub fn find_at<'h>(&self, haystack: &'h str, start: usize) -> Option<Match<'h>> {
        assert!(haystack.is_char_boundary(start), "start must lie on a char boundary");
        let slots = vm::search(&self.program, haystack, start)?;
        Some(Match { haystack, groups: slots })
    }

    /// Alias of [`Regex::find`] returning the capture groups; mirrors the
    /// API shape of mainstream regex libraries.
    pub fn captures<'h>(&self, haystack: &'h str) -> Option<Match<'h>> {
        self.find(haystack)
    }

    /// Iterates over all non-overlapping matches, leftmost-first.
    ///
    /// The haystack's character index is computed once and shared across
    /// all iterations, so iterating over many matches stays linear.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> FindIter<'r, 'h> {
        FindIter {
            regex: self,
            haystack,
            chars: haystack.char_indices().collect(),
            idx: 0,
            done: false,
        }
    }

    /// Splits `haystack` by matches of the regex.
    ///
    /// Adjacent matches produce empty fields, matching the behaviour of
    /// `str::split` with a pattern.
    pub fn split<'r, 'h>(&'r self, haystack: &'h str) -> Split<'r, 'h> {
        Split { it: self.find_iter(haystack), last: 0, haystack, done: false }
    }

    /// Replaces every match with `replacement`. `$0`–`$9` in the
    /// replacement refer to capture groups; `$$` is a literal `$`.
    pub fn replace_all(&self, haystack: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(haystack.len());
        let mut last = 0;
        for m in self.find_iter(haystack) {
            out.push_str(&haystack[last..m.start()]);
            expand(replacement, &m, &mut out);
            last = m.end();
        }
        out.push_str(&haystack[last..]);
        out
    }
}

impl std::fmt::Display for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.pattern)
    }
}

impl std::str::FromStr for Regex {
    type Err = RegexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Regex::new(s)
    }
}

fn expand(replacement: &str, m: &Match<'_>, out: &mut String) {
    let mut chars = replacement.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '$' {
            out.push(c);
            continue;
        }
        match chars.peek() {
            Some('$') => {
                chars.next();
                out.push('$');
            }
            Some(d) if d.is_ascii_digit() => {
                let idx = d.to_digit(10).unwrap() as usize;
                chars.next();
                if let Some(cap) = m.get(idx) {
                    out.push_str(cap.text());
                }
            }
            _ => out.push('$'),
        }
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
#[derive(Debug)]
pub struct FindIter<'r, 'h> {
    regex: &'r Regex,
    haystack: &'h str,
    /// Precomputed `(byte offset, char)` index of the whole haystack.
    chars: Vec<(usize, char)>,
    /// Index into `chars` where the next search starts.
    idx: usize,
    done: bool,
}

impl<'r, 'h> Iterator for FindIter<'r, 'h> {
    type Item = Match<'h>;

    fn next(&mut self) -> Option<Match<'h>> {
        if self.done || self.idx > self.chars.len() {
            return None;
        }
        let slots = vm::search_chars(&self.regex.program, self.haystack, &self.chars[self.idx..])?;
        let m = Match { haystack: self.haystack, groups: slots };
        let end = m.end();
        if end == m.start() {
            // Empty match: advance one char to guarantee progress.
            if self.idx < self.chars.len() && self.chars[self.idx].0 <= end {
                // Find the char at/after `end` and step past it.
                while self.idx < self.chars.len() && self.chars[self.idx].0 < end {
                    self.idx += 1;
                }
                self.idx += 1;
            } else {
                self.done = true;
            }
        } else {
            while self.idx < self.chars.len() && self.chars[self.idx].0 < end {
                self.idx += 1;
            }
        }
        Some(m)
    }
}

/// Iterator over the fields produced by [`Regex::split`].
#[derive(Debug)]
pub struct Split<'r, 'h> {
    it: FindIter<'r, 'h>,
    last: usize,
    haystack: &'h str,
    done: bool,
}

impl<'r, 'h> Iterator for Split<'r, 'h> {
    type Item = &'h str;

    fn next(&mut self) -> Option<&'h str> {
        if self.done {
            return None;
        }
        match self.it.next() {
            Some(m) => {
                let field = &self.haystack[self.last..m.start()];
                self.last = m.end();
                Some(field)
            }
            None => {
                self.done = true;
                Some(&self.haystack[self.last..])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("abc").unwrap();
        assert!(re.is_match("xxabcxx"));
        assert!(!re.is_match("ab"));
        let m = re.find("xxabcxx").unwrap();
        assert_eq!((m.start(), m.end()), (2, 5));
    }

    #[test]
    fn leftmost_match_wins() {
        let re = Regex::new("a+").unwrap();
        let m = re.find("baaa caa").unwrap();
        assert_eq!(m.text(), "aaa");
        assert_eq!(m.start(), 1);
    }

    #[test]
    fn captures_nested() {
        let re = Regex::new(r"(a(b+))c").unwrap();
        let m = re.find("zabbbcz").unwrap();
        assert_eq!(m.get(0).unwrap().text(), "abbbc");
        assert_eq!(m.get(1).unwrap().text(), "abbb");
        assert_eq!(m.get(2).unwrap().text(), "bbb");
    }

    #[test]
    fn alternation_prefers_left() {
        let re = Regex::new("foo|foobar").unwrap();
        let m = re.find("foobar").unwrap();
        assert_eq!(m.text(), "foo");
    }

    #[test]
    fn classes_and_predefined() {
        let re = Regex::new(r"[0-9a-zA-Z']+").unwrap();
        assert_eq!(re.find("<b>Seiko's</b>").unwrap().text(), "b");
        let re = Regex::new(r"\d+\.\d+").unwrap();
        assert_eq!(re.find("price 129.99 usd").unwrap().text(), "129.99");
    }

    #[test]
    fn negated_class() {
        let re = Regex::new(r"[^<>]+").unwrap();
        assert_eq!(re.find("<tag>body</tag>").unwrap().text(), "tag");
    }

    #[test]
    fn anchors() {
        let re = Regex::new(r"^abc$").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("xabc"));
        assert!(!re.is_match("abcx"));
    }

    #[test]
    fn word_boundary() {
        let re = Regex::new(r"\bcat\b").unwrap();
        assert!(re.is_match("a cat sat"));
        assert!(!re.is_match("concatenate"));
    }

    #[test]
    fn bounded_repetition() {
        let re = Regex::new(r"a{2,3}").unwrap();
        assert_eq!(re.find("aaaa").unwrap().text(), "aaa");
        assert!(!re.is_match("a"));
        let re = Regex::new(r"a{2}").unwrap();
        assert_eq!(re.find("aaa").unwrap().text(), "aa");
        let re = Regex::new(r"a{2,}").unwrap();
        assert_eq!(re.find("aaaaa").unwrap().text(), "aaaaa");
    }

    #[test]
    fn lazy_quantifier() {
        let re = Regex::new(r"<.+?>").unwrap();
        assert_eq!(re.find("<a><b>").unwrap().text(), "<a>");
        let re = Regex::new(r"<.+>").unwrap();
        assert_eq!(re.find("<a><b>").unwrap().text(), "<a><b>");
    }

    #[test]
    fn optional() {
        let re = Regex::new(r"colou?r").unwrap();
        assert!(re.is_match("color"));
        assert!(re.is_match("colour"));
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let all: Vec<_> = re.find_iter("a1b22c333").map(|m| m.text().to_string()).collect();
        assert_eq!(all, ["1", "22", "333"]);
    }

    #[test]
    fn empty_match_progress() {
        let re = Regex::new(r"a*").unwrap();
        let n = re.find_iter("bbb").count();
        assert_eq!(n, 4); // empty match at each position incl. end
    }

    #[test]
    fn split_basic() {
        let re = Regex::new(r",\s*").unwrap();
        let parts: Vec<_> = re.split("a, b,c ,d").collect();
        assert_eq!(parts, ["a", "b", "c ", "d"]);
    }

    #[test]
    fn split_like_webl_tags() {
        // The paper's WebL example splits on "<>" characters.
        let re = Regex::new(r"[<>]+").unwrap();
        let parts: Vec<_> = re.split("<p><b>Seiko Men's").collect();
        assert_eq!(parts, ["", "p", "b", "Seiko Men's"]);
    }

    #[test]
    fn replace_all_with_groups() {
        let re = Regex::new(r"(\w+)@(\w+)").unwrap();
        let out = re.replace_all("bob@home alice@work", "$2/$1");
        assert_eq!(out, "home/bob work/alice");
    }

    #[test]
    fn replace_dollar_escape() {
        let re = Regex::new(r"x").unwrap();
        assert_eq!(re.replace_all("x", "$$1"), "$1");
    }

    #[test]
    fn unicode_haystack() {
        let re = Regex::new(r"\w+").unwrap();
        let m = re.find("päivä 42").unwrap();
        // \w is ASCII-word plus alphabetic per our definition
        assert!(!m.text().is_empty());
    }

    #[test]
    fn paper_webl_brand_extraction() {
        // Mirrors the paper's WebL snippet: regexpr = "<p><b>" + [0-9a-zA-Z']+
        let page = "<p><b>Seiko Men's Automatic Dive Watch</b></p>";
        let re = Regex::new(r"<p><b>[0-9a-zA-Z']+").unwrap();
        let m = re.find(page).unwrap();
        assert_eq!(m.text(), "<p><b>Seiko");
    }

    #[test]
    fn invalid_patterns_error() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("abc)").is_err());
        assert!(Regex::new("a{3,2}").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("*a").is_err());
    }

    #[test]
    fn from_str_and_display() {
        let re: Regex = r"\d+".parse().unwrap();
        assert_eq!(re.to_string(), r"\d+");
        assert_eq!(re.pattern(), r"\d+");
    }

    #[test]
    fn capture_count() {
        let re = Regex::new(r"(a)(?:b)(c(d))").unwrap();
        assert_eq!(re.capture_count(), 3);
    }

    #[test]
    fn find_at_offset() {
        let re = Regex::new("ab").unwrap();
        let m = re.find_at("abab", 1).unwrap();
        assert_eq!(m.start(), 2);
    }

    #[test]
    fn pathological_no_blowup() {
        // Classic catastrophic-backtracking case is linear on a Pike VM.
        let re = Regex::new("a*a*a*a*a*a*a*b").unwrap();
        let haystack = "a".repeat(2000);
        assert!(!re.is_match(&haystack));
    }
}
