//! Compilation of a pattern [`Ast`] into a linear NFA instruction
//! program executed by the [`vm`](crate::vm).

use crate::ast::{Ast, ClassSet};
use crate::error::RegexError;

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Match a specific character and advance.
    Char(char),
    /// Match any character except `\n` and advance.
    Any,
    /// Match a character class and advance.
    Class(ClassSet),
    /// Try `a` first, then `b` (priority encodes greediness).
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Record the current haystack offset in capture slot `n`.
    Save(usize),
    /// Assert start of haystack.
    AssertStart,
    /// Assert end of haystack.
    AssertEnd,
    /// Assert a word boundary.
    AssertWordBoundary,
    /// Assert not a word boundary.
    AssertNotWordBoundary,
    /// Successful match.
    Match,
}

/// A compiled program plus metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Instruction sequence; entry point is index 0.
    pub insts: Vec<Inst>,
    /// Number of explicit capture groups (group 0 excluded).
    pub captures: usize,
    /// Total number of save slots = `2 * (captures + 1)`.
    pub slots: usize,
}

/// Upper bound on compiled program size, guarding against pathological
/// counted repetitions like `(a{1000}){1000}`.
const MAX_PROGRAM: usize = 1 << 20;

/// Compiles `ast` into a [`Program`].
///
/// # Errors
///
/// Returns [`RegexError`] if expansion of counted repetitions would exceed
/// the program-size limit.
pub fn compile(ast: &Ast) -> Result<Program, RegexError> {
    let mut c = Compiler { insts: Vec::new(), max_group: 0 };
    // Whole-match group 0.
    c.push(Inst::Save(0))?;
    c.emit(ast)?;
    c.push(Inst::Save(1))?;
    c.push(Inst::Match)?;
    let captures = c.max_group as usize;
    Ok(Program { insts: c.insts, captures, slots: 2 * (captures + 1) })
}

struct Compiler {
    insts: Vec<Inst>,
    max_group: u32,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> Result<usize, RegexError> {
        if self.insts.len() >= MAX_PROGRAM {
            return Err(RegexError::new(0, "compiled pattern too large"));
        }
        self.insts.push(inst);
        Ok(self.insts.len() - 1)
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn emit(&mut self, ast: &Ast) -> Result<(), RegexError> {
        match ast {
            Ast::Empty => Ok(()),
            Ast::Literal(c) => self.push(Inst::Char(*c)).map(drop),
            Ast::AnyChar => self.push(Inst::Any).map(drop),
            Ast::Class(set) => self.push(Inst::Class(set.clone())).map(drop),
            Ast::AnchorStart => self.push(Inst::AssertStart).map(drop),
            Ast::AnchorEnd => self.push(Inst::AssertEnd).map(drop),
            Ast::WordBoundary => self.push(Inst::AssertWordBoundary).map(drop),
            Ast::NotWordBoundary => self.push(Inst::AssertNotWordBoundary).map(drop),
            Ast::Concat(items) => {
                for item in items {
                    self.emit(item)?;
                }
                Ok(())
            }
            Ast::NonCapturing(node) => self.emit(node),
            Ast::Group { index, node } => {
                self.max_group = self.max_group.max(*index);
                self.push(Inst::Save(2 * *index as usize))?;
                self.emit(node)?;
                self.push(Inst::Save(2 * *index as usize + 1))?;
                Ok(())
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat { node, min, max, lazy } => self.emit_repeat(node, *min, *max, *lazy),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) -> Result<(), RegexError> {
        // Chain of splits; each branch jumps to the common exit.
        let mut jmp_fixups = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split = self.push(Inst::Split(0, 0))?;
                let branch_start = self.here();
                self.emit(branch)?;
                jmp_fixups.push(self.push(Inst::Jmp(0))?);
                let next = self.here();
                self.insts[split] = Inst::Split(branch_start, next);
            } else {
                self.emit(branch)?;
            }
        }
        let end = self.here();
        for fixup in jmp_fixups {
            self.insts[fixup] = Inst::Jmp(end);
        }
        Ok(())
    }

    fn emit_repeat(
        &mut self,
        node: &Ast,
        min: u32,
        max: Option<u32>,
        lazy: bool,
    ) -> Result<(), RegexError> {
        match (min, max) {
            (0, Some(1)) => {
                // e?
                let split = self.push(Inst::Split(0, 0))?;
                let body = self.here();
                self.emit(node)?;
                let end = self.here();
                self.insts[split] =
                    if lazy { Inst::Split(end, body) } else { Inst::Split(body, end) };
                Ok(())
            }
            (0, None) => {
                // e*
                let split = self.push(Inst::Split(0, 0))?;
                let body = self.here();
                self.emit(node)?;
                self.push(Inst::Jmp(split))?;
                let end = self.here();
                self.insts[split] =
                    if lazy { Inst::Split(end, body) } else { Inst::Split(body, end) };
                Ok(())
            }
            (1, None) => {
                // e+
                let body = self.here();
                self.emit(node)?;
                let split = self.push(Inst::Split(0, 0))?;
                let end = self.here();
                self.insts[split] =
                    if lazy { Inst::Split(end, body) } else { Inst::Split(body, end) };
                Ok(())
            }
            (min, None) => {
                // e{min,} = e^(min-1) e+
                for _ in 0..min.saturating_sub(1) {
                    self.emit(node)?;
                }
                self.emit_repeat(node, 1, None, lazy)
            }
            (min, Some(max)) => {
                // e{min,max} = e^min (e?)^(max-min), nested so that each
                // optional tail only applies if the previous matched.
                for _ in 0..min {
                    self.emit(node)?;
                }
                let optional = max - min;
                let mut splits = Vec::with_capacity(optional as usize);
                for _ in 0..optional {
                    let split = self.push(Inst::Split(0, 0))?;
                    let body = self.here();
                    self.emit(node)?;
                    splits.push((split, body));
                }
                let end = self.here();
                for (split, body) in splits {
                    self.insts[split] =
                        if lazy { Inst::Split(end, body) } else { Inst::Split(body, end) };
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;

    fn prog(p: &str) -> Program {
        compile(&ast::parse(p).unwrap()).unwrap()
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        assert_eq!(
            p.insts,
            vec![Inst::Save(0), Inst::Char('a'), Inst::Char('b'), Inst::Save(1), Inst::Match]
        );
    }

    #[test]
    fn star_is_split_loop() {
        let p = prog("a*");
        assert!(matches!(p.insts[1], Inst::Split(2, 4)));
        assert!(matches!(p.insts[3], Inst::Jmp(1)));
    }

    #[test]
    fn lazy_star_flips_priority() {
        let p = prog("a*?");
        assert!(matches!(p.insts[1], Inst::Split(4, 2)));
    }

    #[test]
    fn capture_slots_counted() {
        let p = prog("(a)(b)");
        assert_eq!(p.captures, 2);
        assert_eq!(p.slots, 6);
    }

    #[test]
    fn counted_repetition_expands() {
        let p = prog("a{3}");
        let chars = p.insts.iter().filter(|i| matches!(i, Inst::Char('a'))).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn huge_repetition_rejected() {
        let tree = ast::parse("(a{10000}){10000}");
        // Parser caps bounds at 10000, compile must hit program cap.
        if let Ok(tree) = tree {
            assert!(compile(&tree).is_err());
        }
    }
}
