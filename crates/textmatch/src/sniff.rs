//! Labeled-field sniffing for plain-text exports.
//!
//! The semantic bootstrap pass (see `s2s-core`) needs a schema for
//! text-file sources, whose only "schema" is the convention of the
//! export itself. The common shape — and the one the S2S demo and
//! conformance catalogs use — is line-oriented records of
//! `label: value` fields separated by `|`:
//!
//! ```text
//! brand: seiko | price: 120 | case: steel
//! ```
//!
//! [`sniff_labeled_fields`] recovers the labels (the "text-rule
//! headers") and a few value samples per label, without interpreting
//! the values.

/// Cap on retained value samples per label.
const MAX_SAMPLES: usize = 8;

/// One discovered labeled field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledField {
    /// The label text before the colon, trimmed.
    pub label: String,
    /// Up to eight observed values, in document order.
    pub samples: Vec<String>,
    /// How many times the label appeared.
    pub count: usize,
}

/// Scans `text` line by line, splitting each line on `|`, and collects
/// every `label: value` field. Labels are returned in first-appearance
/// order. Lines or segments without a colon are ignored. Labels are
/// restricted to word characters (`[A-Za-z0-9_-]`) so prose containing
/// an incidental colon does not masquerade as a field.
pub fn sniff_labeled_fields(text: &str) -> Vec<LabeledField> {
    let mut fields: Vec<LabeledField> = Vec::new();
    for line in text.lines() {
        for segment in line.split('|') {
            let Some((label, value)) = segment.split_once(':') else {
                continue;
            };
            let label = label.trim();
            if label.is_empty()
                || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                continue;
            }
            let value = value.trim();
            let field = match fields.iter_mut().find(|f| f.label == label) {
                Some(f) => f,
                None => {
                    fields.push(LabeledField {
                        label: label.to_string(),
                        samples: Vec::new(),
                        count: 0,
                    });
                    fields.last_mut().expect("just pushed")
                }
            };
            field.count += 1;
            if !value.is_empty() && field.samples.len() < MAX_SAMPLES {
                field.samples.push(value.to_string());
            }
        }
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_separated_labels_discovered() {
        let fields = sniff_labeled_fields(
            "brand: seiko | price: 120 | case: steel\nbrand: casio | price: 80 | case: resin\n",
        );
        let labels: Vec<&str> = fields.iter().map(|f| f.label.as_str()).collect();
        assert_eq!(labels, vec!["brand", "price", "case"]);
        assert_eq!(fields[0].samples, vec!["seiko", "casio"]);
        assert_eq!(fields[1].count, 2);
    }

    #[test]
    fn prose_colons_ignored() {
        let fields = sniff_labeled_fields("note: the ratio a:b is 2:1 | total price: 3\n");
        let labels: Vec<&str> = fields.iter().map(|f| f.label.as_str()).collect();
        // `note` is a clean word label; "total price" contains a space
        // and "the ratio a" is not a word, so both are dropped.
        assert_eq!(labels, vec!["note"]);
    }
}
