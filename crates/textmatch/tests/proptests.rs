//! Property-based tests for the regex engine: matches agree with a naive
//! reference implementation for a restricted pattern family, and invariants
//! hold for arbitrary haystacks.

use proptest::prelude::*;
use s2s_textmatch::Regex;

/// Escapes a string so it matches literally.
fn escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        if "\\.+*?()|[]{}^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    /// A literal pattern finds exactly what `str::find` finds.
    #[test]
    fn literal_agrees_with_str_find(needle in "[a-c]{1,4}", hay in "[a-d]{0,30}") {
        let re = Regex::new(&escape(&needle)).unwrap();
        match (re.find(&hay), hay.find(&needle)) {
            (Some(m), Some(i)) => {
                prop_assert_eq!(m.start(), i);
                prop_assert_eq!(m.text(), needle.as_str());
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "disagreement: regex={a:?} str={b:?}"),
        }
    }

    /// `find` results always lie within the haystack and on char boundaries.
    #[test]
    fn match_spans_are_valid(hay in any::<String>()) {
        let re = Regex::new(r"[a-z]+\d*").unwrap();
        if let Some(m) = re.find(&hay) {
            prop_assert!(m.end() <= hay.len());
            prop_assert!(hay.is_char_boundary(m.start()));
            prop_assert!(hay.is_char_boundary(m.end()));
            prop_assert!(re.is_match(m.text()));
        }
    }

    /// Splitting then re-joining with a fixed separator preserves all
    /// non-separator content in order.
    #[test]
    fn split_preserves_content(fields in proptest::collection::vec("[a-z]{0,5}", 0..8)) {
        let joined = fields.join(",");
        let re = Regex::new(",").unwrap();
        let parts: Vec<&str> = re.split(&joined).collect();
        if fields.is_empty() {
            prop_assert_eq!(parts, vec![""]);
        } else {
            let owned: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
            prop_assert_eq!(parts, owned);
        }
    }

    /// find_iter yields non-overlapping, strictly ordered matches.
    #[test]
    fn find_iter_is_ordered_and_disjoint(hay in "[ab0-9]{0,40}") {
        let re = Regex::new(r"\d+").unwrap();
        let mut last_end = 0usize;
        for m in re.find_iter(&hay) {
            prop_assert!(m.start() >= last_end);
            prop_assert!(m.end() > m.start());
            last_end = m.end();
        }
    }

    /// replace_all with an empty replacement removes every match.
    #[test]
    fn replace_all_removes_matches(hay in "[a-z0-9]{0,40}") {
        let re = Regex::new(r"\d").unwrap();
        let out = re.replace_all(&hay, "");
        prop_assert!(!re.is_match(&out));
    }

    /// Anchored whole-string match agrees with full-equality for literals.
    #[test]
    fn anchored_literal_is_equality(a in "[a-b]{0,6}", b in "[a-b]{0,6}") {
        let re = Regex::new(&format!("^{}$", escape(&a))).unwrap();
        prop_assert_eq!(re.is_match(&b), a == b);
    }

    /// Alternation of two literals matches iff either matches.
    #[test]
    fn alternation_is_union(a in "[a-c]{1,3}", b in "[a-c]{1,3}", hay in "[a-d]{0,20}") {
        let re = Regex::new(&format!("{}|{}", escape(&a), escape(&b))).unwrap();
        let expect = hay.contains(&a) || hay.contains(&b);
        prop_assert_eq!(re.is_match(&hay), expect);
    }

    /// Bounded repetition a{n} matches n consecutive 'a's exactly.
    #[test]
    fn counted_repetition(n in 1u32..6, extra in 0usize..4) {
        let hay = "a".repeat(n as usize + extra);
        let re = Regex::new(&format!("^a{{{n}}}$")).unwrap();
        prop_assert_eq!(re.is_match(&hay), extra == 0);
    }

    /// Any parse failure is an error, never a panic.
    #[test]
    fn parser_never_panics(pat in any::<String>()) {
        let _ = Regex::new(&pat);
    }

    /// Matching never panics on arbitrary input.
    #[test]
    fn matcher_never_panics(hay in any::<String>()) {
        let re = Regex::new(r"(\w+)\s+(\w+)|x{2,5}[^a-f]?").unwrap();
        let _ = re.find(&hay);
    }
}
