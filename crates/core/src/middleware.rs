//! The S2S middleware façade.
//!
//! Ties the architecture of Figure 1 together: ontology schema, data
//! sources, mapping module, query handler, extractor manager, instance
//! generator. One [`S2s`] value is one deployed integration system.

use std::sync::Arc;

use parking_lot::RwLock;

use s2s_netsim::{
    AdmissionConfig, AdmissionController, AdmissionStats, ChangeKind, CostModel, FailureModel,
    PoolStats, ShedReason, SimDuration, WorkerPool,
};
use s2s_obs::{Span, SpanKind, SpanOutcome, Trace};
use s2s_owl::{AttributePath, Ontology};

use crate::cache::{CacheStats, ExtractionCache};
use crate::engine::{DependencySet, PlanCache, QueryResultCache, ResultCacheConfig};
use crate::error::S2sError;
use crate::extract::{
    AttributeResult, ExtractionFailure, ExtractorManager, ResilienceContext, ResiliencePolicy,
    SourceHealth, Strategy,
};
use crate::instance::{self, GenerateOptions, Individual, InstanceSet, OutputFormat};
use crate::mapping::{ExtractionRule, MappingModule, RecordScenario};
use crate::query::{self, QueryPlan};
use crate::rules::RuleCache;
use crate::source::{Connection, SourceId, SourceRegistry};
use crate::view::{SemanticViews, ViewStats};

/// Statistics of one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryStats {
    /// Number of extraction tasks dispatched.
    pub tasks: usize,
    /// Number of failed tasks.
    pub failed_tasks: usize,
    /// Tasks answered from the extraction cache (0 when disabled).
    pub cache_hits: usize,
    /// Endpoint retries spent across all tasks (resilience layer).
    pub retries: u64,
    /// Failovers to replica endpoints across all tasks.
    pub failovers: u64,
    /// Endpoint round trips this query actually put on the wire — the
    /// observable batching win: one trip per source instead of one per
    /// attribute. Every attempt that reaches an endpoint counts, so
    /// retries, failover attempts, and hedged replica attempts each add
    /// a trip. Calls refused by an open circuit breaker do **not**
    /// count: the breaker rejects them before any wire exchange, and
    /// they are tallied separately in
    /// [`SourceHealth::breaker_rejections`]. Shed queries likewise
    /// contribute zero round trips — admission control refuses them
    /// before any wire traffic.
    pub round_trips: u64,
    /// Extraction-cache hit/miss counters for this query alone.
    pub extraction_cache: CacheStats,
    /// Compiled-rule-cache hit/miss counters for this query alone.
    pub rule_cache: CacheStats,
    /// Plan-cache hit/miss counters for this query alone (always
    /// active; a hit skips the parse/validate/plan front half).
    pub plan_cache: CacheStats,
    /// Query-result-cache hit/miss counters for this query alone
    /// (zeros when the result cache is disabled). A hit means the
    /// whole answer was replayed without touching any source.
    pub result_cache: CacheStats,
    /// Fraction of requested (mapped) attributes answered, in
    /// `[0, 1]`; `1.0` means no degradation.
    pub completeness: f64,
    /// Simulated completion time under the configured strategy.
    pub simulated: SimDuration,
    /// Simulated completion time had extraction run serially.
    pub simulated_serial: SimDuration,
    /// `true` when admission control refused this query (load
    /// shedding): the answer is empty and honestly labelled
    /// (`completeness` is `0.0`), and nothing past the result-cache
    /// lookup ran — no plan work, no wire traffic, no cache writes.
    pub shed: bool,
    /// Source exchanges abandoned because the query's deadline budget
    /// ran out; each one fails its tasks honestly instead of blocking.
    pub deadline_hits: u64,
    /// Hedged replica requests launched against straggling primaries.
    pub hedges: u64,
    /// Hedged requests whose replica reply beat the primary.
    /// Invariant: `hedge_wins <= hedges`.
    pub hedge_wins: u64,
    /// Conjuncts the federated planner pushed into native source rules
    /// (0 when pushdown is disabled or nothing was pushable).
    pub pushed_predicates: u64,
    /// Sources the planner pruned before any wire exchange because no
    /// mapping of theirs could satisfy a required conjunct.
    pub pruned_sources: u64,
    /// Total on-wire bytes (request + response frames) of completed
    /// exchanges.
    pub wire_bytes: u64,
    /// The response-frame share of `wire_bytes`.
    pub wire_response_bytes: u64,
    /// Wire bytes pushdown avoided: response payload trimmed by pushed
    /// predicates plus whole exchanges of pruned sources and
    /// projected-out schemas.
    pub wire_bytes_saved: u64,
    /// Slices served from a materialized semantic view without
    /// re-extraction (0 when views are disabled): fresh views plus
    /// views cheaply advanced past change events that provably did not
    /// touch their field.
    pub view_hits: u64,
    /// View slices incrementally re-extracted because a change event
    /// touched their source-side field.
    pub view_refreshes: u64,
    /// View slices re-extracted from scratch because a feed gap made
    /// the delta unsound.
    pub view_full_refreshes: u64,
    /// Change-feed polls this query issued against source endpoints
    /// (their frames are counted in `wire_bytes`).
    pub feed_polls: u64,
    /// The widest staleness window among view-served slices: simulated
    /// time between a slice's last refresh and this query reading it.
    pub view_staleness: SimDuration,
}

/// Per-query execution options for the overload layer: deadline
/// budget, tenant attribution, and scheduling priority. The zero-cost
/// default (`no deadline, tenant "default", normal priority`) is what
/// [`S2s::query`] uses.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOptions {
    /// Simulated-time budget for the whole query. Each source exchange
    /// runs under it (sources start together in the parallel model);
    /// when it expires the query returns a partial, honestly-labelled
    /// answer instead of blocking. `None` = unbounded.
    pub deadline: Option<SimDuration>,
    /// Tenant id for per-tenant admission fairness (deficit round
    /// robin) and backlog gauges.
    pub tenant: String,
    /// Admission priority; see [`Priority`].
    pub priority: Priority,
}

impl QueryOptions {
    /// Sets the deadline budget.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the tenant id.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets the admission priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions { deadline: None, tenant: "default".into(), priority: Priority::Normal }
    }
}

/// Admission priority of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Subject to every shed check.
    #[default]
    Normal,
    /// Skips the estimated-wait shed check (still shed when the
    /// admission queue is full outright).
    High,
}

/// Receipt of one applied source mutation: the source's new data
/// version and the surgical-invalidation blast radius. On a healthy
/// deployment the dropped counts are bounded by the mutated source's
/// dependent entries — entries for untouched sources keep serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReceipt {
    /// The source's data version after the mutation (monotone, per
    /// source).
    pub version: u64,
    /// Query-result-cache entries dropped because they read this
    /// source at an older version.
    pub dropped_results: usize,
    /// Extraction-cache entries dropped for this source.
    pub dropped_extraction: usize,
}

/// The outcome of an S2SQL query: the plan, the generated instances,
/// and execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The validated plan the query handler produced.
    pub plan: QueryPlan,
    /// The OWL instances (graph + structured view + errors).
    pub instances: InstanceSet,
    /// Execution statistics.
    pub stats: QueryStats,
    /// Total simulated extraction time spent per source.
    pub source_times: std::collections::BTreeMap<String, SimDuration>,
    /// Degraded-mode report: per-source attempts, retries, failovers,
    /// breaker rejections, and breaker state.
    pub resilience: std::collections::BTreeMap<String, SourceHealth>,
    /// The query's trace tree (`Some` only when tracing is enabled via
    /// [`S2s::with_tracing`]).
    pub trace: Option<Trace>,
    /// The federated pushdown plan (`Some` only when pushdown ran via
    /// [`S2s::with_pushdown`] and the query had a condition or
    /// projection to plan against).
    pub pushdown: Option<crate::planner::PushdownPlan>,
}

impl QueryOutcome {
    /// The individuals that satisfied the query.
    pub fn individuals(&self) -> &[Individual] {
        &self.instances.individuals
    }

    /// The extraction failures, if any.
    pub fn errors(&self) -> &[ExtractionFailure] {
        &self.instances.errors
    }

    /// Serializes the result (§2.6 output formats).
    pub fn render(&self, ontology: &Ontology, format: OutputFormat) -> String {
        instance::render(&self.instances, ontology, format)
    }
}

/// The Syntactic-to-Semantic middleware.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use s2s_core::middleware::S2s;
/// use s2s_core::mapping::{ExtractionRule, RecordScenario};
/// use s2s_core::source::Connection;
/// use s2s_minidb::Database;
/// use s2s_owl::Ontology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ontology = Ontology::builder("http://example.org/schema#")
///     .class("Product", None)?
///     .datatype_property("brand", "Product", "http://www.w3.org/2001/XMLSchema#string")?
///     .build()?;
///
/// let mut db = Database::new("catalog");
/// db.execute("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT)")?;
/// db.execute("INSERT INTO w VALUES (1, 'Seiko'), (2, 'Casio')")?;
///
/// let mut s2s = S2s::new(ontology);
/// s2s.register_source("DB_ID_45", Connection::Database { db: Arc::new(db) })?;
/// s2s.register_attribute(
///     "thing.product.brand",
///     ExtractionRule::Sql { query: "SELECT brand FROM w ORDER BY id".into(), column: "brand".into() },
///     "DB_ID_45",
///     RecordScenario::MultiRecord,
/// )?;
///
/// let outcome = s2s.query("SELECT product WHERE brand='Seiko'")?;
/// assert_eq!(outcome.individuals().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct S2s {
    ontology: Arc<Ontology>,
    registry: RwLock<SourceRegistry>,
    mappings: RwLock<MappingModule>,
    strategy: Strategy,
    cache: Option<Arc<ExtractionCache>>,
    rules: Arc<RuleCache>,
    plans: Arc<PlanCache>,
    results: Option<Arc<QueryResultCache>>,
    pool: Arc<WorkerPool>,
    batching: bool,
    provenance: bool,
    tracing: bool,
    resilience: Arc<ResilienceContext>,
    admission: Option<Arc<AdmissionController>>,
    pushdown: bool,
    views: Option<Arc<SemanticViews>>,
}

impl S2s {
    /// Creates a middleware instance over an ontology schema, with a
    /// serial extraction strategy.
    pub fn new(ontology: Ontology) -> Self {
        S2s {
            ontology: Arc::new(ontology),
            registry: RwLock::new(SourceRegistry::new()),
            mappings: RwLock::new(MappingModule::new()),
            strategy: Strategy::Serial,
            cache: None,
            rules: Arc::new(RuleCache::new()),
            plans: Arc::new(PlanCache::new()),
            results: None,
            pool: Arc::new(WorkerPool::new(1)),
            batching: true,
            provenance: false,
            tracing: false,
            resilience: Arc::new(ResilienceContext::default()),
            admission: None,
            pushdown: false,
            views: None,
        }
    }

    /// Enables materialized semantic views ([`crate::view`]): every
    /// extracted `(source, attribute)` slice is materialized with the
    /// source data version it reflects, and repeat queries maintain it
    /// incrementally against the source's change feed — serving fresh
    /// slices with zero wire cost, advancing past events that provably
    /// do not touch the slice's field for the price of a feed poll, and
    /// re-extracting only touched slices. A feed gap falls back to a
    /// full re-extract, so a view-served answer is always
    /// fingerprint-identical to a recompute from scratch. Off by
    /// default.
    pub fn with_views(mut self) -> Self {
        self.views = Some(Arc::new(SemanticViews::new()));
        self
    }

    /// The materialized-view registry, when views are enabled.
    pub fn views(&self) -> Option<&SemanticViews> {
        self.views.as_deref()
    }

    /// Cumulative view-maintenance counters (zeros when views are
    /// disabled).
    pub fn view_stats(&self) -> ViewStats {
        self.views.as_ref().map(|v| v.stats()).unwrap_or_default()
    }

    /// Enables the federated pushdown planner ([`crate::planner`]):
    /// before dispatch, each query's required conjuncts are rewritten
    /// into the native capability of every source that can evaluate
    /// them (`WHERE` for SQL, XPath predicates for XML, `Where` guards
    /// for WebL/regex), projections drop unneeded schemas, and sources
    /// that cannot contribute are pruned. Answers are identical with
    /// the planner on or off — everything unpushable stays in the
    /// residual post-filter. Off by default.
    pub fn with_pushdown(mut self) -> Self {
        self.pushdown = true;
        self
    }

    /// Whether the federated pushdown planner is enabled.
    pub fn pushdown(&self) -> bool {
        self.pushdown
    }

    /// Enables per-query trace trees: every [`QueryOutcome`] carries a
    /// [`Trace`] (`query → parse / plan / map → batch → rule /
    /// attempt`) with simulated and wall-clock durations, outcomes, and
    /// cache provenance per span. Off by default — when disabled the
    /// pipeline allocates nothing for tracing.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Whether per-query tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Enables or disables batched extraction (default: enabled). When
    /// on, the planner coalesces all rules for a source into a single
    /// batched wire exchange and schedules per-source batches
    /// longest-processing-time-first; when off, every attribute crosses
    /// the network as its own request/response pair (the legacy path,
    /// kept for equivalence testing and ablation).
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Whether batched extraction is enabled.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// Compiled-rule cache counters (always active; shared across
    /// queries on this instance).
    pub fn rule_cache_stats(&self) -> CacheStats {
        self.rules.stats()
    }

    /// Installs a resilience policy: retry/backoff per endpoint call,
    /// failover across replica endpoints, optional circuit breakers.
    /// Breaker state and the virtual clock persist across queries on
    /// this instance.
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = Arc::new(ResilienceContext::new(policy));
        self
    }

    /// The resilience policy in force.
    pub fn resilience_policy(&self) -> ResiliencePolicy {
        *self.resilience.policy()
    }

    /// The resilience context (breaker board + virtual clock), for
    /// inspection or clock manipulation in experiments.
    pub fn resilience(&self) -> &ResilienceContext {
        &self.resilience
    }

    /// Installs admission control: a bounded queue with per-tenant
    /// deficit-round-robin dispatch and early load shedding. Queries
    /// that would overflow the queue — or whose estimated wait already
    /// exceeds their deadline budget — are refused at arrival with an
    /// honestly-labelled empty answer ([`QueryStats::shed`]) instead of
    /// queueing past their budget. Result-cache hits are always served;
    /// only fresh work passes the gate.
    pub fn with_admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(Arc::new(AdmissionController::new(config)));
        self
    }

    /// The admission controller, when admission control is enabled.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_deref()
    }

    /// Admission counters (`None` when admission control is disabled).
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        self.admission.as_ref().map(|c| c.stats())
    }

    /// Emits provenance triples
    /// (`s2sprov:extractedFrom "<source id>"`) on every generated
    /// individual.
    pub fn with_provenance(mut self) -> Self {
        self.provenance = true;
        self
    }

    /// Enables the extraction cache (see [`crate::cache`]): repeat
    /// queries serve unchanged `(source, rule)` pairs with zero
    /// simulated network cost.
    pub fn with_cache(mut self) -> Self {
        self.cache = Some(Arc::new(ExtractionCache::new()));
        self
    }

    /// Cache hit/miss counters (zeros when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Drops all cached extraction results, cached query answers, and
    /// materialized views (no-ops for disabled layers), returning how
    /// many entries were dropped in total. This is the blunt operator
    /// fallback; [`S2s::mutate_source`] invalidates surgically.
    pub fn invalidate_cache(&self) -> usize {
        let mut dropped = self.cache.as_ref().map(|c| c.clear()).unwrap_or(0);
        dropped += self.invalidate_results();
        dropped += self.views.as_ref().map(|v| v.clear()).unwrap_or(0);
        if dropped > 0 && s2s_obs::enabled() {
            s2s_obs::global()
                .counter(s2s_obs::names::CACHE_INVALIDATED_ENTRIES_TOTAL)
                .add(dropped as u64);
        }
        dropped
    }

    /// Drops every cached query answer, returning how many were
    /// dropped. Called internally on mutations whose blast radius no
    /// dependency set can bound (new source/attribute registrations).
    fn invalidate_results(&self) -> usize {
        match &self.results {
            Some(r) => {
                let n = r.len();
                r.invalidate_all();
                n
            }
            None => 0,
        }
    }

    /// Applies a data mutation to a registered source: swaps its
    /// connection snapshot for `connection`, records a change event
    /// (`kind`, touching `fields`; empty = potentially everything) on
    /// the source's feed, and surgically invalidates exactly the cache
    /// entries that depended on the source — raising the result cache's
    /// per-source admission floor so an in-flight query that read the
    /// pre-mutation snapshot can never publish a stale answer.
    /// Materialized views are *not* dropped: they self-heal against the
    /// feed on their next read.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::UnknownSource`] for unregistered ids and
    /// [`S2sError::MutationKindMismatch`] when `connection` is a
    /// different source kind; failed mutations touch no cache.
    pub fn mutate_source(
        &self,
        id: &str,
        connection: Connection,
        kind: ChangeKind,
        fields: Vec<String>,
    ) -> Result<MutationReceipt, S2sError> {
        let sid: SourceId = id.into();
        let version = self.registry.write().apply_mutation(&sid, connection, kind, fields)?;
        let dropped_results =
            self.results.as_ref().map(|r| r.invalidate_source(id, version)).unwrap_or(0);
        let dropped_extraction = self.cache.as_ref().map(|c| c.invalidate_source(id)).unwrap_or(0);
        if s2s_obs::enabled() {
            s2s_obs::global().counter(s2s_obs::names::SOURCE_MUTATIONS_TOTAL).inc();
        }
        Ok(MutationReceipt { version, dropped_results, dropped_extraction })
    }

    /// The current data version of a registered source (`None` when
    /// unregistered). A pristine source is version 0; each applied
    /// mutation bumps it.
    pub fn source_version(&self, id: &str) -> Option<u64> {
        self.registry.read().version_of(&id.into())
    }

    /// Sets the mediation strategy (serial, parallel workers, or the
    /// event reactor) and resizes the engine's shared worker pool to
    /// match: one long-lived pool of `strategy.workers()` threads
    /// serves every query on this instance, however many callers run
    /// concurrently. [`Strategy::Reactor`] keeps the pool inline —
    /// extraction runs as timer events on the calling thread instead.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self.pool = Arc::new(WorkerPool::new(strategy.workers()));
        self
    }

    /// Enables the semantic query-result cache with the default policy:
    /// whole answers are replayed for repeat queries (normalized S2SQL
    /// text as the key) until a source or mapping mutation invalidates
    /// them. Off by default.
    pub fn with_result_cache(self) -> Self {
        self.with_result_cache_config(ResultCacheConfig::default())
    }

    /// Enables the semantic query-result cache with an explicit
    /// capacity/TTL policy (TTL measured in simulated time against the
    /// resilience clock).
    pub fn with_result_cache_config(mut self, config: ResultCacheConfig) -> Self {
        self.results = Some(Arc::new(QueryResultCache::new(config)));
        self
    }

    /// Plan-cache hit/miss counters (always active).
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plans.stats()
    }

    /// Number of entries currently in the plan cache (cache-hygiene
    /// inspection: shed and deadline-exceeded queries add none).
    pub fn plan_cache_len(&self) -> usize {
        self.plans.len()
    }

    /// Number of entries currently in the result cache (`0` when
    /// disabled).
    pub fn result_cache_len(&self) -> usize {
        self.results.as_ref().map(|c| c.len()).unwrap_or(0)
    }

    /// Result-cache hit/miss counters (zeros when disabled).
    pub fn result_cache_stats(&self) -> CacheStats {
        self.results.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Result-cache entries dropped by mutation invalidation.
    pub fn result_cache_invalidations(&self) -> u64 {
        self.results.as_ref().map(|c| c.invalidations()).unwrap_or(0)
    }

    /// Counters of the shared worker pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The ontology schema.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The current extraction strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Registers a local data source (paper §2.3.2).
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::DuplicateSource`] on id collision.
    pub fn register_source(&mut self, id: &str, connection: Connection) -> Result<(), S2sError> {
        self.invalidate_results();
        self.registry.write().register_local(id, connection)
    }

    /// Registers a remote data source behind a simulated network
    /// endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::DuplicateSource`] on id collision.
    pub fn register_remote_source(
        &mut self,
        id: &str,
        connection: Connection,
        cost: CostModel,
        failure: FailureModel,
    ) -> Result<(), S2sError> {
        self.invalidate_results();
        self.registry.write().register_remote(id, connection, cost, failure)
    }

    /// Registers a remote data source with an explicit endpoint seed
    /// and a scripted fault schedule — the deterministic-seeding hook
    /// used by the conformance harness (`s2s-conform`) so scenario
    /// randomness is independent of source ids. `seed: None` keeps the
    /// default id-derived seed.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::DuplicateSource`] on id collision.
    pub fn register_remote_source_detailed(
        &mut self,
        id: &str,
        connection: Connection,
        cost: CostModel,
        failure: FailureModel,
        seed: Option<u64>,
        schedule: s2s_netsim::FaultSchedule,
    ) -> Result<(), S2sError> {
        self.invalidate_results();
        self.registry
            .write()
            .register_remote_detailed(id, connection, cost, failure, seed, schedule)
    }

    /// Registers a remote data source with replica endpoints: the
    /// primary uses `failure`, and each entry of `replicas` adds one
    /// endpoint (`"<id>#r<k>"`) serving the same data. The resilience
    /// layer fails over along this list when
    /// [`ResiliencePolicy::failover`] is enabled.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::DuplicateSource`] on id collision.
    pub fn register_remote_source_with_replicas(
        &mut self,
        id: &str,
        connection: Connection,
        cost: CostModel,
        failure: FailureModel,
        replicas: &[FailureModel],
    ) -> Result<(), S2sError> {
        self.invalidate_results();
        self.registry.write().register_remote_with_replicas(id, connection, cost, failure, replicas)
    }

    /// Appends one replica endpoint to an already registered remote
    /// source, reusing the primary's cost model. Use this to give a
    /// detailed-registered source (explicit seed, fault schedule) a
    /// standby for failover or hedged dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::UnknownSource`] if `id` is not registered.
    pub fn add_source_replica(&mut self, id: &str, failure: FailureModel) -> Result<(), S2sError> {
        self.invalidate_results();
        self.registry.write().add_replica(&id.into(), failure)
    }

    /// Registers an attribute mapping — the full 3-step workflow of
    /// Fig. 3: `attribute path = rule, source`.
    ///
    /// Cache consequences depend on what the registration is. A *fresh*
    /// `(path, source)` pair adds a data contributor existing answers
    /// never saw, so every cached answer is cleared wholesale — no
    /// dependency set can account for data an entry is missing. An
    /// **edit** (re-registering an existing pair with a new rule)
    /// invalidates surgically: only entries, plans, views, and
    /// extraction results that depended on the edited source are
    /// dropped; hot entries for untouched sources keep replaying.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::Owl`] for unresolvable paths and
    /// [`S2sError::UnknownSource`] when the source id is unregistered.
    pub fn register_attribute(
        &mut self,
        path: &str,
        rule: ExtractionRule,
        source: &str,
        scenario: RecordScenario,
    ) -> Result<(), S2sError> {
        let path: AttributePath = path.parse().map_err(S2sError::Owl)?;
        {
            let registry = self.registry.read();
            registry.require(&source.into())?;
        }
        let displaced =
            self.mappings.write().register(&self.ontology, path, rule, source.into(), scenario)?;
        if displaced.is_some() {
            if let Some(r) = &self.results {
                r.invalidate_dependents(source);
            }
            self.plans.invalidate_source(source);
            if let Some(c) = &self.cache {
                c.invalidate_source(source);
            }
            if let Some(v) = &self.views {
                v.remove_source(source);
            }
        } else {
            self.invalidate_results();
        }
        Ok(())
    }

    /// Loads a mapping-specification document (see [`crate::spec`]) and
    /// registers every entry. All referenced sources must already be
    /// registered.
    ///
    /// Returns the number of mappings registered.
    ///
    /// # Errors
    ///
    /// Returns the spec parse error, [`S2sError::UnknownSource`] for
    /// unregistered source ids, or [`S2sError::Owl`] for unresolvable
    /// paths. Registration is not transactional: entries before the
    /// failing one remain registered.
    pub fn load_spec(&mut self, document: &str) -> Result<usize, S2sError> {
        let specs = crate::spec::parse(document)?;
        let n = specs.len();
        for s in specs {
            self.register_attribute(&s.path, s.rule, &s.source, s.scenario)?;
        }
        Ok(n)
    }

    /// Bootstraps a registered source: introspects its native schema
    /// (`CREATE TABLE` metadata, XML shape, HTML tag survey, labeled
    /// text headers) and derives candidate attribute mappings with
    /// generated extraction rules, confidence scores, and an explicit
    /// conflict list. Registers nothing — inspect, adjust
    /// ([`crate::bootstrap::BootstrapReport::resolve`] /
    /// [`crate::bootstrap::BootstrapReport::reject`]), then pass the
    /// report to [`Self::apply_bootstrap`], or use
    /// [`Self::register_bootstrapped`] for the one-shot path.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::UnknownSource`] for an unregistered id and
    /// [`S2sError::Bootstrap`] when introspection finds no schema.
    pub fn bootstrap_source(
        &self,
        id: &str,
    ) -> Result<crate::bootstrap::BootstrapReport, S2sError> {
        let registry = self.registry.read();
        let source = registry.require(&id.into())?;
        let report = crate::bootstrap::bootstrap(&self.ontology, id, source.connection())?;
        if s2s_obs::enabled() {
            let metrics = s2s_obs::global();
            metrics.counter(s2s_obs::names::BOOTSTRAP_SOURCES_TOTAL).inc();
            metrics
                .counter(s2s_obs::names::BOOTSTRAP_CANDIDATES_TOTAL)
                .add(report.candidates.len() as u64);
            metrics
                .counter(s2s_obs::names::BOOTSTRAP_CONFLICTS_TOTAL)
                .add(report.conflicts.len() as u64);
        }
        Ok(report)
    }

    /// Registers every accepted, not-yet-applied candidate of a
    /// bootstrap report through the regular
    /// [`Self::register_attribute`] path — bootstrapped mappings flow
    /// through rule compilation, caches, planner capability analysis,
    /// and views exactly like hand-written ones. Applied candidates are
    /// marked so a report can be re-applied incrementally after further
    /// [`crate::bootstrap::BootstrapReport::resolve`] calls.
    ///
    /// Returns the number of mappings registered.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::register_attribute`] errors; candidates
    /// before the failing one remain registered (and marked applied).
    pub fn apply_bootstrap(
        &mut self,
        report: &mut crate::bootstrap::BootstrapReport,
    ) -> Result<usize, S2sError> {
        let source = report.source.clone();
        let mut applied = 0usize;
        for i in 0..report.candidates.len() {
            if !report.candidates[i].accepted || report.candidates[i].applied {
                continue;
            }
            let (path, rule, scenario) = {
                let c = &report.candidates[i];
                (c.path.clone(), c.rule.clone(), c.scenario)
            };
            self.register_attribute(&path, rule, &source, scenario)?;
            report.candidates[i].applied = true;
            applied += 1;
        }
        if applied > 0 && s2s_obs::enabled() {
            s2s_obs::global().counter(s2s_obs::names::BOOTSTRAP_APPLIED_TOTAL).add(applied as u64);
        }
        Ok(applied)
    }

    /// One-shot bootstrap: [`Self::bootstrap_source`] followed by
    /// [`Self::apply_bootstrap`]. The returned report shows what was
    /// registered (`applied` candidates) and what was left for the
    /// caller (conflicts, proposals).
    ///
    /// # Errors
    ///
    /// Propagates both phases' errors.
    pub fn register_bootstrapped(
        &mut self,
        id: &str,
    ) -> Result<crate::bootstrap::BootstrapReport, S2sError> {
        let mut report = self.bootstrap_source(id)?;
        self.apply_bootstrap(&mut report)?;
        Ok(report)
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.registry.read().len()
    }

    /// Number of registered attribute mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.read().len()
    }

    /// Runs an S2SQL query end-to-end: parse → plan → obtain extraction
    /// schemas → extract (Fig. 5) → generate instances (§2.6).
    ///
    /// Attributes of the plan that have no mapping are simply not
    /// extracted (open-world); a query whose *condition* attributes are
    /// unmapped yields an empty result with no error, matching the
    /// paper's best-effort integration model. Extraction failures are
    /// reported inside the outcome, not as an `Err`.
    ///
    /// Takes `&self`: the engine is `Send + Sync`, so any number of
    /// threads may query one shared (`Arc`-wrapped) instance
    /// concurrently; their extraction tasks multiplex onto the one
    /// worker pool sized by the strategy. Repeat queries are answered
    /// by the plan cache (always on) and, when enabled, the
    /// query-result cache — see [`crate::engine`].
    ///
    /// # Errors
    ///
    /// Returns an error only for malformed or semantically invalid
    /// queries.
    pub fn query(&self, s2sql: &str) -> Result<QueryOutcome, S2sError> {
        self.query_with_options(s2sql, &QueryOptions::default())
    }

    /// [`S2s::query`] with per-query overload options: a deadline
    /// budget (propagated to every source exchange's retry policy),
    /// tenant attribution for admission fairness, and priority.
    ///
    /// A query refused by admission control still returns `Ok`: the
    /// outcome is an empty, honestly-labelled degraded answer with
    /// [`QueryStats::shed`] set — shedding is an overload signal, not
    /// a query error.
    ///
    /// # Errors
    ///
    /// Returns an error only for malformed or semantically invalid
    /// queries.
    pub fn query_with_options(
        &self,
        s2sql: &str,
        opts: &QueryOptions,
    ) -> Result<QueryOutcome, S2sError> {
        let query_started = std::time::Instant::now();
        let key = query::normalize(s2sql);

        // Layer 1: the semantic result cache replays whole answers.
        // Served before the admission gate: a replay touches no source
        // and costs nothing, so even an overloaded engine answers it.
        let mut result_cache_delta = CacheStats::default();
        if let Some(results) = &self.results {
            let before = results.stats();
            let hit = results.get(&key, self.resilience.virtual_now());
            result_cache_delta = delta(before, results.stats());
            if let Some(hit) = hit {
                return Ok(self.replay(s2sql, hit, result_cache_delta, query_started));
            }
        }

        // Admission gate: fresh work must clear the overload layer
        // before any plan or wire work happens. A refusal here is the
        // cheapest possible outcome — shed at arrival, not after
        // queueing past the caller's budget. The guard holds this
        // query's permit until the outcome is built.
        let _admission_guard = match &self.admission {
            Some(ctl) => {
                match ctl.admit(&opts.tenant, opts.deadline, opts.priority == Priority::High) {
                    Ok(guard) => Some(guard),
                    Err(reason) => {
                        return Ok(self.shed(s2sql, &reason, result_cache_delta, query_started))
                    }
                }
            }
            None => None,
        };

        // Layer 2: the plan cache memoizes parse + validate + plan. A
        // fresh plan is *not* inserted here — insertion is deferred
        // until the query completes without exhausting its deadline,
        // so overload casualties cannot churn plan-cache entries.
        let plans_before = self.plans.stats();
        let parse_started = std::time::Instant::now();
        let (plan, fresh_plan, parse_wall, plan_wall) = match self.plans.get(&key) {
            Some(plan) => (plan, false, parse_started.elapsed(), std::time::Duration::ZERO),
            None => {
                let parsed = query::parse(s2sql)?;
                let parse_wall = parse_started.elapsed();
                let plan_started = std::time::Instant::now();
                let plan = Arc::new(query::plan(&parsed, &self.ontology)?);
                (plan, true, parse_wall, plan_started.elapsed())
            }
        };
        let plan_cache_delta = delta(plans_before, self.plans.stats());

        // Step 1-2 (Fig. 5): attribute list → extraction schemas,
        // keeping only mapped attributes.
        let map_started = std::time::Instant::now();
        let mappings = self.mappings.read();
        let mapped_paths: Vec<AttributePath> =
            plan.attributes.iter().filter(|p| mappings.contains(p)).cloned().collect();
        let schemas = ExtractorManager::obtain_schemas(&mappings, &mapped_paths)?;
        drop(mappings);
        let mapped_schemas = schemas.len();

        // Federated pushdown planning: rewrite rules toward each
        // source's native capability, drop projected-out schemas, and
        // prune non-contributing sources — all before the cache
        // partition, so cache keys see the rewritten rules (a pushed
        // rule answers a different wire question than its baseline).
        let registry = self.registry.read();
        let pushdown_started = std::time::Instant::now();
        let (schemas, pushdown_plan) =
            if self.pushdown && (plan.condition.is_some() || plan.projection.is_some()) {
                let (schemas, p) = crate::planner::plan_pushdown(
                    &registry,
                    &schemas,
                    plan.condition.as_ref(),
                    plan.projection.as_deref(),
                    &self.rules,
                );
                (schemas, Some(p))
            } else {
                (schemas, None)
            };
        let pushdown_wall = pushdown_started.elapsed();

        // Record the (source, version) dependencies this query reads.
        // The registry read lock is held through extraction, so these
        // versions are *the* versions of everything the query touches;
        // the result cache re-checks them against its per-source
        // invalidation floor at insert time, closing the race where a
        // mutation lands between extraction and publication.
        let mut deps = DependencySet::new();
        for s in &schemas {
            if let Some(v) = registry.version_of(s.mapping.source()) {
                deps.record(s.mapping.source().as_str(), v);
            }
        }

        // View partition: materialized slices whose version matches the
        // source are served directly; stale ones poll the change feed
        // and are either advanced past untouching events (a hit for the
        // price of the poll frames) or re-extracted below.
        let now_virtual = self.resilience.virtual_now();
        let mut view_results: Vec<AttributeResult> = Vec::new();
        let (mut view_hits, mut view_refreshes, mut view_full_refreshes, mut feed_polls) =
            (0u64, 0u64, 0u64, 0u64);
        let mut feed_wire_bytes = 0u64;
        let mut view_staleness = SimDuration::ZERO;
        // One poll per distinct (source, since) per query: slices of the
        // same source refreshed at the same version share the frames.
        // `None` memoizes a feed gap — the delta is unsound and only a
        // full re-extract is.
        let mut poll_memo: std::collections::HashMap<
            (String, u64),
            Option<Vec<s2s_netsim::ChangeEvent>>,
        > = std::collections::HashMap::new();
        let schemas: Vec<_> = match &self.views {
            Some(views) => schemas
                .into_iter()
                .filter(|s| {
                    let sid = s.mapping.source();
                    let current = deps.version_of(sid.as_str()).unwrap_or(0);
                    let path = s.mapping.path().to_string();
                    let rule_text = s.mapping.rule().text();
                    let serve =
                        |slice: crate::view::ViewSlice, view_results: &mut Vec<AttributeResult>| {
                            view_results.push(AttributeResult {
                                mapping: s.mapping.clone(),
                                values: slice.values.as_ref().clone(),
                                elapsed: SimDuration::ZERO,
                            });
                        };
                    match views.lookup(sid.as_str(), &path, rule_text) {
                        Some(slice) if slice.version >= current => {
                            view_hits += 1;
                            view_staleness =
                                view_staleness.max(now_virtual.saturating_sub(slice.refreshed_at));
                            serve(slice, &mut view_results);
                            false
                        }
                        Some(slice) => {
                            let events = poll_memo
                                .entry((sid.as_str().to_string(), slice.version))
                                .or_insert_with(|| {
                                    feed_polls += 1;
                                    match registry.poll_changes(sid, slice.version) {
                                        Ok(Ok(events)) => {
                                            feed_wire_bytes +=
                                                s2s_netsim::feed::poll_exchange_size(&events)
                                                    as u64;
                                            Some(events)
                                        }
                                        _ => None,
                                    }
                                })
                                .clone();
                            match events {
                                Some(events) => {
                                    let touched = match s.mapping.rule().touched_field() {
                                        Some(field) => events.iter().any(|e| e.touches(field)),
                                        // The rule's footprint is not
                                        // statically knowable: every
                                        // event touches it.
                                        None => true,
                                    };
                                    if touched {
                                        view_refreshes += 1;
                                        true
                                    } else {
                                        views.advance(sid.as_str(), &path, current, now_virtual);
                                        view_hits += 1;
                                        serve(slice, &mut view_results);
                                        false
                                    }
                                }
                                None => {
                                    view_full_refreshes += 1;
                                    true
                                }
                            }
                        }
                        None => true,
                    }
                })
                .collect(),
            None => schemas,
        };

        // Cache partition: answered entries skip the mediator entirely.
        let mut cached_results: Vec<AttributeResult> = Vec::new();
        let schemas = match &self.cache {
            Some(cache) => schemas
                .into_iter()
                .filter(|s| match cache.get(&s.mapping) {
                    Some(values) => {
                        cached_results.push(AttributeResult {
                            mapping: s.mapping.clone(),
                            values: values.as_ref().clone(),
                            elapsed: SimDuration::ZERO,
                        });
                        false
                    }
                    None => true,
                })
                .collect(),
            None => schemas,
        };
        let cache_hits = cached_results.len();
        let map_wall = map_started.elapsed();
        // Cache-served attributes never reach the mediator, so their
        // provenance is recorded here as `rule` spans under `map`.
        let cached_rule_spans: Vec<Span> = if self.tracing {
            cached_results
                .iter()
                .map(|r| {
                    let mut span = Span::new(SpanKind::Rule, r.mapping.path().to_string());
                    span.outcome = SpanOutcome::CacheHit;
                    span.attr("source", r.mapping.source().to_string());
                    span.attr("cache", "hit");
                    span.attr("values", r.values.len().to_string());
                    span
                })
                .collect()
        } else {
            Vec::new()
        };
        let extraction_cache_before = self.cache_stats();
        let rule_cache_before = self.rules.stats();

        // Step 3-4: source definitions + extraction, under the
        // resilience policy. Batched: one coalesced wire exchange per
        // source; legacy: one exchange per attribute.
        let mut report = if self.batching {
            ExtractorManager::extract_batched_traced(
                &registry,
                schemas,
                self.strategy,
                &self.resilience,
                &self.rules,
                self.tracing,
                &self.pool,
                opts.deadline,
            )
        } else {
            ExtractorManager::extract_with_rules_traced(
                &registry,
                schemas,
                self.strategy,
                &self.resilience,
                &self.rules,
                self.tracing,
                &self.pool,
                opts.deadline,
            )
        };
        drop(registry);

        if let Some(cache) = &self.cache {
            for r in &report.results {
                cache.insert(&r.mapping, r.values.clone());
            }
        }
        // Freshly extracted slices are (re)materialized at the version
        // the registry reported while the read lock was held.
        if let Some(views) = &self.views {
            let refreshed_now = self.resilience.virtual_now();
            for r in &report.results {
                let sid = r.mapping.source().as_str();
                views.store(
                    sid,
                    &r.mapping.path().to_string(),
                    r.mapping.rule().text(),
                    r.values.clone(),
                    deps.version_of(sid).unwrap_or(0),
                    refreshed_now,
                );
            }
            views.tally(view_hits, view_refreshes, view_full_refreshes, feed_polls, view_staleness);
        }
        report.results.extend(cached_results);
        report.results.extend(view_results);

        let stats = QueryStats {
            tasks: report.results.len() + report.failures.len(),
            failed_tasks: report.failures.len(),
            cache_hits,
            retries: report.resilience.values().map(|h| h.retries).sum(),
            failovers: report.resilience.values().map(|h| h.failovers).sum(),
            round_trips: report.resilience.values().map(|h| h.attempts).sum(),
            extraction_cache: delta(extraction_cache_before, self.cache_stats()),
            rule_cache: delta(rule_cache_before, self.rules.stats()),
            plan_cache: plan_cache_delta,
            result_cache: result_cache_delta,
            // Cached answers count as answered: they were requested and
            // served, just not over the network this time.
            completeness: report.completeness(),
            simulated: report.simulated,
            simulated_serial: report.simulated_serial,
            shed: false,
            deadline_hits: report.resilience.values().map(|h| h.deadline_hits).sum(),
            hedges: report.resilience.values().map(|h| h.hedges).sum(),
            hedge_wins: report.resilience.values().map(|h| h.hedge_wins).sum(),
            pushed_predicates: pushdown_plan.as_ref().map_or(0, |p| p.pushed_predicates()),
            pruned_sources: pushdown_plan.as_ref().map_or(0, |p| p.pruned_sources()),
            wire_bytes: report.wire_bytes + feed_wire_bytes,
            wire_response_bytes: report.wire_response_bytes,
            wire_bytes_saved: report.wire_bytes_saved
                + pushdown_plan.as_ref().map_or(0, |p| p.avoided_wire_bytes),
            view_hits,
            view_refreshes,
            view_full_refreshes,
            feed_polls,
            view_staleness,
        };
        // Recalibrate admission's service estimate from what this query
        // actually cost (EWMA over completion events), so shed decisions
        // track the live scheduler and workload instead of the static
        // configured guess. Queries that never touched the wire (fully
        // cache-served extractions) say nothing about service cost.
        if let Some(ctl) = &self.admission {
            if stats.round_trips > 0 {
                ctl.record_completion(stats.simulated);
            }
        }
        // Deferred plan-cache insert (hygiene): a query that blew its
        // deadline does not get to publish cache entries, so overload
        // casualties cannot evict plans that healthy queries rely on.
        if fresh_plan && stats.deadline_hits == 0 {
            self.plans.insert_with_deps(key.clone(), Arc::clone(&plan), deps.clone());
        }
        // Wire time per source comes from the resilience telemetry
        // (batched results share one exchange, so summing per-result
        // `elapsed` would double-count); cache-served sources still get
        // a zero entry.
        let mut source_times: std::collections::BTreeMap<String, SimDuration> =
            std::collections::BTreeMap::new();
        for (id, health) in &report.resilience {
            source_times.insert(id.clone(), health.elapsed);
        }
        for r in &report.results {
            source_times.entry(r.mapping.source().to_string()).or_default();
        }
        let mut instances = instance::generate_with_options(
            &self.ontology,
            &plan,
            &report,
            GenerateOptions { provenance: self.provenance },
        );
        instances.cache_hits = cache_hits as u64;

        // Admission: only complete, failure-free answers are cached, so
        // a degraded result is never replayed after sources recover.
        // The explicit deadline guard is redundant with `failed_tasks`
        // (an exhausted budget always fails its tasks) but documents
        // the cache-hygiene contract.
        if let Some(results) = &self.results {
            if stats.failed_tasks == 0 && stats.completeness >= 1.0 && stats.deadline_hits == 0 {
                results.insert(
                    key,
                    Arc::clone(&plan),
                    Arc::new(instances.clone()),
                    stats,
                    deps,
                    self.resilience.virtual_now(),
                );
            }
        }

        if s2s_obs::enabled() {
            let metrics = s2s_obs::global();
            metrics.counter("s2s_queries_total").inc();
            if stats.completeness < 1.0 {
                metrics.counter("s2s_queries_degraded_total").inc();
            }
            metrics.gauge("s2s_query_completeness").set(stats.completeness);
            metrics.histogram("s2s_query_sim_us").observe(stats.simulated.as_micros());
            metrics
                .histogram("s2s_query_wall_us")
                .observe(query_started.elapsed().as_micros() as u64);
            if pushdown_plan.is_some() {
                metrics.counter("s2s_pushdown_predicates_total").add(stats.pushed_predicates);
                metrics.counter("s2s_pushdown_pruned_sources_total").add(stats.pruned_sources);
                metrics.counter("s2s_pushdown_wire_bytes_saved_total").add(stats.wire_bytes_saved);
            }
        }

        let trace = if self.tracing {
            let mut root = Span::new(SpanKind::Query, s2sql.to_string());
            root.sim_us = stats.simulated.as_micros();
            root.wall_us = query_started.elapsed().as_micros() as u64;
            root.outcome =
                if stats.completeness < 1.0 { SpanOutcome::Degraded } else { SpanOutcome::Ok };
            // `f64`'s `Display` round-trips exactly, so this attribute
            // parses back to `stats.completeness` bit-for-bit.
            root.attr("completeness", format!("{}", stats.completeness));
            root.attr("tasks", stats.tasks.to_string());
            root.attr("failed_tasks", stats.failed_tasks.to_string());
            root.attr("round_trips", stats.round_trips.to_string());
            root.attr("cache_hits", stats.cache_hits.to_string());
            if stats.deadline_hits > 0 {
                root.attr("deadline_hits", stats.deadline_hits.to_string());
            }
            if stats.hedges > 0 {
                root.attr("hedges", stats.hedges.to_string());
                root.attr("hedge_wins", stats.hedge_wins.to_string());
            }
            if stats.view_hits + stats.view_refreshes + stats.view_full_refreshes > 0 {
                root.attr("view_hits", stats.view_hits.to_string());
                root.attr("view_refreshes", stats.view_refreshes.to_string());
                root.attr("view_full_refreshes", stats.view_full_refreshes.to_string());
            }

            let mut parse_span = Span::new(SpanKind::Parse, "s2sql");
            parse_span.wall_us = parse_wall.as_micros() as u64;
            root.push(parse_span);

            let mut plan_span = Span::new(SpanKind::Plan, "attributes");
            plan_span.wall_us = plan_wall.as_micros() as u64;
            plan_span.attr("count", plan.attributes.len().to_string());
            if plan_cache_delta.hits > 0 {
                plan_span.outcome = SpanOutcome::CacheHit;
                plan_span.attr("cache", "hit");
            }
            root.push(plan_span);

            let mut map_span = Span::new(SpanKind::Map, "mappings");
            map_span.wall_us = map_wall.as_micros() as u64;
            map_span.attr("mapped", mapped_schemas.to_string());
            map_span.attr("cache_hits", cache_hits.to_string());
            if !cached_rule_spans.is_empty() {
                map_span.outcome = SpanOutcome::CacheHit;
            }
            for span in cached_rule_spans {
                map_span.push(span);
            }
            root.push(map_span);

            if let Some(p) = &pushdown_plan {
                let mut pushdown_span = Span::new(SpanKind::Pushdown, "planner");
                pushdown_span.wall_us = pushdown_wall.as_micros() as u64;
                pushdown_span.attr("pushed_predicates", stats.pushed_predicates.to_string());
                pushdown_span.attr("pruned_sources", stats.pruned_sources.to_string());
                pushdown_span.attr("wire_bytes_saved", stats.wire_bytes_saved.to_string());
                if !p.pruned.is_empty() {
                    pushdown_span.attr("pruned", p.pruned.join(","));
                }
                root.push(pushdown_span);
            }

            for span in std::mem::take(&mut report.spans) {
                root.push(span);
            }
            Some(Trace::new(root))
        } else {
            None
        };

        Ok(QueryOutcome {
            plan: plan.as_ref().clone(),
            instances,
            stats,
            source_times,
            resilience: report.resilience,
            trace,
            pushdown: pushdown_plan,
        })
    }

    /// Builds the outcome of a result-cache hit: the original answer
    /// replayed with zero simulated time and no source contact.
    fn replay(
        &self,
        s2sql: &str,
        hit: crate::engine::CachedResult,
        result_cache_delta: CacheStats,
        query_started: std::time::Instant,
    ) -> QueryOutcome {
        let stats = QueryStats {
            tasks: hit.origin.tasks,
            completeness: hit.origin.completeness,
            result_cache: result_cache_delta,
            ..QueryStats::default()
        };
        if s2s_obs::enabled() {
            let metrics = s2s_obs::global();
            metrics.counter("s2s_queries_total").inc();
            metrics.gauge("s2s_query_completeness").set(stats.completeness);
            metrics.histogram("s2s_query_sim_us").observe(0);
            metrics
                .histogram("s2s_query_wall_us")
                .observe(query_started.elapsed().as_micros() as u64);
        }
        let trace = if self.tracing {
            let mut root = Span::new(SpanKind::Query, s2sql.to_string());
            root.wall_us = query_started.elapsed().as_micros() as u64;
            root.outcome = SpanOutcome::CacheHit;
            root.attr("cache", "result-hit");
            root.attr("completeness", format!("{}", stats.completeness));
            root.attr("tasks", stats.tasks.to_string());
            Some(Trace::new(root))
        } else {
            None
        };
        QueryOutcome {
            plan: hit.plan.as_ref().clone(),
            instances: hit.instances.as_ref().clone(),
            stats,
            source_times: std::collections::BTreeMap::new(),
            resilience: std::collections::BTreeMap::new(),
            trace,
            pushdown: None,
        }
    }

    /// Builds the outcome of a shed query: an empty, honestly-labelled
    /// degraded answer. No plan work ran (the plan is a sentinel), no
    /// source was contacted, and no cache was written.
    fn shed(
        &self,
        s2sql: &str,
        reason: &ShedReason,
        result_cache_delta: CacheStats,
        query_started: std::time::Instant,
    ) -> QueryOutcome {
        let stats = QueryStats {
            shed: true,
            completeness: 0.0,
            result_cache: result_cache_delta,
            ..QueryStats::default()
        };
        if s2s_obs::enabled() {
            let metrics = s2s_obs::global();
            metrics.counter("s2s_queries_total").inc();
            metrics.counter(s2s_obs::names::OVERLOAD_SHED_TOTAL).inc();
        }
        let trace = if self.tracing {
            let mut root = Span::new(SpanKind::Query, s2sql.to_string());
            root.wall_us = query_started.elapsed().as_micros() as u64;
            root.outcome = SpanOutcome::Shed;
            root.attr("shed", reason.to_string());
            root.attr("completeness", "0");
            Some(Trace::new(root))
        } else {
            None
        };
        QueryOutcome {
            plan: QueryPlan {
                class: shed_sentinel_iri(),
                output_classes: Vec::new(),
                attributes: Vec::new(),
                projection: None,
                condition: None,
            },
            instances: InstanceSet {
                graph: Default::default(),
                individuals: Vec::new(),
                errors: Vec::new(),
                completeness: 0.0,
                round_trips: 0,
                cache_hits: 0,
            },
            stats,
            source_times: std::collections::BTreeMap::new(),
            resilience: std::collections::BTreeMap::new(),
            trace,
            pushdown: None,
        }
    }
}

/// The placeholder class IRI of a shed query's outcome: shedding
/// happens before parse/plan, so there is no real plan to attach.
fn shed_sentinel_iri() -> s2s_rdf::Iri {
    s2s_rdf::Iri::new("urn:s2s:shed").expect("sentinel IRI is valid")
}

/// Counter movement between two snapshots of the same cache.
fn delta(before: CacheStats, after: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        evictions: after.evictions.saturating_sub(before.evictions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_minidb::Database;
    use s2s_rdf::vocab::xsd;
    use s2s_webdoc::WebStore;

    fn ontology() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .class("Watch", Some("Product"))
            .unwrap()
            .class("Provider", None)
            .unwrap()
            .datatype_property("brand", "Product", xsd::STRING)
            .unwrap()
            .datatype_property("price", "Product", xsd::DECIMAL)
            .unwrap()
            .datatype_property("case", "Watch", xsd::STRING)
            .unwrap()
            .object_property("provider", "Product", "Provider")
            .unwrap()
            .build()
            .unwrap()
    }

    /// A full four-source-type deployment mirroring the paper's
    /// scenario.
    fn deploy() -> S2s {
        let mut db = Database::new("catalog");
        db.execute(
            "CREATE TABLE watches (id INTEGER PRIMARY KEY, brand TEXT, price REAL, case_m TEXT)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO watches VALUES \
             (1,'Seiko',129.99,'stainless-steel'), (2,'Casio',59.5,'resin')",
        )
        .unwrap();

        let xml = s2s_xml::parse(
            "<catalog><watch><brand>Orient</brand><price>189.0</price><case>stainless-steel</case></watch></catalog>",
        )
        .unwrap();

        let mut web = WebStore::new();
        web.register_html(
            "http://shop/81",
            "<p><b>Tissot Classic Dream</b></p><span class=\"price\">249.00</span>",
        );
        web.register_text("http://files/fossil.txt", "brand: Fossil\nprice: 99.0\ncase: resin\n");
        let web = Arc::new(web);

        let mut s2s = S2s::new(ontology());
        s2s.register_source("DB_ID_45", Connection::Database { db: Arc::new(db) }).unwrap();
        s2s.register_source("XML_7", Connection::Xml { document: Arc::new(xml) }).unwrap();
        s2s.register_source(
            "wpage_81",
            Connection::Web { store: web.clone(), url: "http://shop/81".into() },
        )
        .unwrap();
        s2s.register_source(
            "txt_9",
            Connection::Text { store: web, url: "http://files/fossil.txt".into() },
        )
        .unwrap();

        // DB mappings (multi-record).
        s2s.register_attribute(
            "thing.product.watch.brand",
            ExtractionRule::Sql {
                query: "SELECT brand FROM watches ORDER BY id".into(),
                column: "brand".into(),
            },
            "DB_ID_45",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        s2s.register_attribute(
            "thing.product.watch.price",
            ExtractionRule::Sql {
                query: "SELECT price FROM watches ORDER BY id".into(),
                column: "price".into(),
            },
            "DB_ID_45",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        s2s.register_attribute(
            "thing.product.watch.case",
            ExtractionRule::Sql {
                query: "SELECT case_m FROM watches ORDER BY id".into(),
                column: "case_m".into(),
            },
            "DB_ID_45",
            RecordScenario::MultiRecord,
        )
        .unwrap();

        // XML mappings.
        s2s.register_attribute(
            "thing.product.watch.brand",
            ExtractionRule::XPath { path: "//watch/brand/text()".into() },
            "XML_7",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        s2s.register_attribute(
            "thing.product.watch.price",
            ExtractionRule::XPath { path: "//watch/price/text()".into() },
            "XML_7",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        s2s.register_attribute(
            "thing.product.watch.case",
            ExtractionRule::XPath { path: "//watch/case/text()".into() },
            "XML_7",
            RecordScenario::MultiRecord,
        )
        .unwrap();

        // Web page mapping (single record, WebL).
        s2s.register_attribute(
            "thing.product.watch.brand",
            ExtractionRule::Webl {
                program: r#"
                    var m = Str_Search(Text(PAGE), "<p><b>" + `[0-9a-zA-Z']+`);
                    var parts = Str_Split(m[0][0], "<>");
                    var brand = parts[2];
                "#
                .into(),
            },
            "wpage_81",
            RecordScenario::SingleRecord,
        )
        .unwrap();
        s2s.register_attribute(
            "thing.product.watch.price",
            ExtractionRule::Webl {
                program: r#"
                    var m = Str_Search(Text(PAGE), `class="price">(\d+\.\d+)`);
                    var price = m[0][1];
                "#
                .into(),
            },
            "wpage_81",
            RecordScenario::SingleRecord,
        )
        .unwrap();

        // Text file mappings (single record, regex).
        s2s.register_attribute(
            "thing.product.watch.brand",
            ExtractionRule::TextRegex { pattern: r"brand: (\w+)".into(), group: 1 },
            "txt_9",
            RecordScenario::SingleRecord,
        )
        .unwrap();
        s2s.register_attribute(
            "thing.product.watch.case",
            ExtractionRule::TextRegex { pattern: r"case: (\w+)".into(), group: 1 },
            "txt_9",
            RecordScenario::SingleRecord,
        )
        .unwrap();

        s2s
    }

    #[test]
    fn end_to_end_heterogeneous_integration() {
        // The headline claim: one query, four source types, unified
        // ontology instances.
        let s2s = deploy();
        let outcome = s2s.query("SELECT watch").unwrap();
        assert!(outcome.errors().is_empty(), "{:?}", outcome.errors());
        // 2 (db) + 1 (xml) + 1 (web) + 1 (text) = 5 watches.
        assert_eq!(outcome.individuals().len(), 5);
        let brands: Vec<_> = outcome
            .individuals()
            .iter()
            .filter_map(|i| i.value(&s2s.ontology().property_iri("brand").unwrap()))
            .collect();
        assert!(brands.contains(&"Seiko"));
        assert!(brands.contains(&"Orient"));
        assert!(brands.contains(&"Tissot"));
        assert!(brands.contains(&"Fossil"));
    }

    #[test]
    fn paper_query_filters_across_sources() {
        let s2s = deploy();
        let outcome = s2s.query("SELECT watch WHERE case='stainless-steel'").unwrap();
        // Seiko (db) and Orient (xml) have stainless-steel cases.
        assert_eq!(outcome.individuals().len(), 2);
    }

    #[test]
    fn numeric_condition() {
        let s2s = deploy();
        let outcome = s2s.query("SELECT watch WHERE price<100").unwrap();
        // Casio 59.5 (db); Fossil has no mapped price → excluded.
        assert_eq!(outcome.individuals().len(), 1);
    }

    #[test]
    fn like_condition() {
        let s2s = deploy();
        let outcome = s2s.query("SELECT watch WHERE brand LIKE 'S%'").unwrap();
        assert_eq!(outcome.individuals().len(), 1);
    }

    #[test]
    fn parallel_strategy_same_answers() {
        let serial = deploy();
        let parallel = deploy().with_strategy(Strategy::Parallel { workers: 4 });
        let a = serial.query("SELECT watch").unwrap();
        let b = parallel.query("SELECT watch").unwrap();
        let key = |o: &QueryOutcome| {
            let mut v: Vec<String> =
                o.individuals().iter().map(|i| format!("{:?}", i.values)).collect();
            v.sort();
            v
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn reactor_strategy_same_answers() {
        let serial = deploy();
        let reactor = deploy().with_strategy(Strategy::Reactor { shards: 2 });
        let a = serial.query("SELECT watch").unwrap();
        let b = reactor.query("SELECT watch").unwrap();
        let key = |o: &QueryOutcome| {
            let mut v: Vec<String> =
                o.individuals().iter().map(|i| format!("{:?}", i.values)).collect();
            v.sort();
            v
        };
        assert_eq!(key(&a), key(&b));
        assert!(
            b.stats.simulated <= b.stats.simulated_serial,
            "reactor overlap cannot exceed the serial cost"
        );
    }

    /// Three remote flaky sources behind WAN cost models, for the
    /// threaded-vs-reactor determinism regression.
    fn deploy_remote_trio(policy: ResiliencePolicy) -> S2s {
        let mut s2s = S2s::new(ontology()).with_resilience(policy);
        for (i, brand) in ["Seiko", "Casio", "Orient"].iter().enumerate() {
            let mut db = Database::new("d");
            db.execute("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT, price REAL)").unwrap();
            db.execute(&format!("INSERT INTO w VALUES (1, '{brand}', {})", 50 + 10 * i)).unwrap();
            let id = format!("DB{i}");
            s2s.register_remote_source(
                &id,
                Connection::Database { db: Arc::new(db) },
                CostModel::wan(),
                FailureModel::flaky(0.3),
            )
            .unwrap();
            for (attr, col) in [("brand", "brand"), ("price", "price")] {
                s2s.register_attribute(
                    &format!("thing.product.watch.{attr}"),
                    ExtractionRule::Sql {
                        query: format!("SELECT {col} FROM w ORDER BY id"),
                        column: col.into(),
                    },
                    &id,
                    RecordScenario::MultiRecord,
                )
                .unwrap();
            }
        }
        s2s
    }

    /// Recursive trace-tree equality, masking only `wall_us` (the one
    /// nondeterministic span field).
    fn assert_spans_equal_modulo_wall(a: &Span, b: &Span, path: &str) {
        assert_eq!(a.kind, b.kind, "span kind diverged at {path}");
        assert_eq!(a.name, b.name, "span name diverged at {path}");
        assert_eq!(a.outcome, b.outcome, "span outcome diverged at {path}");
        assert_eq!(a.sim_us, b.sim_us, "span sim_us diverged at {path}");
        assert_eq!(a.attrs, b.attrs, "span attrs diverged at {path}");
        assert_eq!(a.children.len(), b.children.len(), "child count diverged at {path}");
        for (i, (ca, cb)) in a.children.iter().zip(&b.children).enumerate() {
            assert_spans_equal_modulo_wall(ca, cb, &format!("{path}/{}[{i}]", ca.name));
        }
    }

    #[test]
    fn reactor_trace_tree_is_identical_to_threaded_modulo_wall() {
        // Same seed + same scenario on the threaded pool vs the event
        // reactor: answers, stats, and the full trace tree (modulo
        // wall_us) must be bit-identical. Three sources keep the
        // 4-worker makespan at the per-task max — the same accounting
        // the reactor reports — so even the root's sim time agrees.
        let policy = ResiliencePolicy::default().with_retry(
            s2s_netsim::RetryPolicy::attempts(3).with_backoff(
                SimDuration::from_millis(5),
                2,
                SimDuration::from_millis(50),
            ),
        );
        let threaded = deploy_remote_trio(policy)
            .with_strategy(Strategy::Parallel { workers: 4 })
            .with_tracing();
        let reactor = deploy_remote_trio(policy)
            .with_strategy(Strategy::Reactor { shards: 2 })
            .with_tracing();
        for query in ["SELECT watch", "SELECT watch WHERE price < 65"] {
            let a = threaded.query(query).unwrap();
            let b = reactor.query(query).unwrap();
            assert_eq!(a.stats, b.stats, "stats diverged on {query}");
            let ta = a.trace.expect("threaded trace");
            let tb = b.trace.expect("reactor trace");
            assert_spans_equal_modulo_wall(&ta.root, &tb.root, query);
        }
    }

    #[test]
    fn output_graph_is_well_typed() {
        let s2s = deploy();
        let outcome = s2s.query("SELECT watch WHERE brand='Seiko'").unwrap();
        let watch = s2s.ontology().class_iri("Watch").unwrap();
        let product = s2s.ontology().class_iri("Product").unwrap();
        assert_eq!(outcome.instances.graph.instances_of(&watch).count(), 1);
        // Supertype materialized.
        assert_eq!(outcome.instances.graph.instances_of(&product).count(), 1);
    }

    #[test]
    fn unmapped_condition_attribute_gives_empty_result() {
        let s2s = deploy();
        // `provider` is a valid attribute but has no mapping.
        let outcome = s2s.query("SELECT watch WHERE provider='TimeHouse'").unwrap();
        assert!(outcome.individuals().is_empty());
    }

    #[test]
    fn invalid_queries_error() {
        let s2s = deploy();
        assert!(matches!(s2s.query("SELECT nope"), Err(S2sError::QuerySemantics { .. })));
        assert!(matches!(s2s.query("garbage"), Err(S2sError::QuerySyntax { .. })));
    }

    #[test]
    fn unknown_source_rejected_at_registration() {
        let mut s2s = S2s::new(ontology());
        let err = s2s.register_attribute(
            "thing.product.brand",
            ExtractionRule::TextRegex { pattern: "x".into(), group: 0 },
            "MISSING",
            RecordScenario::SingleRecord,
        );
        assert!(matches!(err, Err(S2sError::UnknownSource { .. })));
    }

    #[test]
    fn stats_populated() {
        let s2s = deploy();
        let outcome = s2s.query("SELECT watch").unwrap();
        assert_eq!(outcome.stats.tasks, 10);
        assert_eq!(outcome.stats.failed_tasks, 0);
        assert_eq!(outcome.stats.simulated, outcome.stats.simulated_serial); // serial strategy
    }

    #[test]
    fn provenance_triples_emitted_when_enabled() {
        let mut db = Database::new("d");
        db.execute("CREATE TABLE w (brand TEXT)").unwrap();
        db.execute("INSERT INTO w VALUES ('Seiko')").unwrap();
        let build = |prov: bool| {
            let mut s2s = S2s::new(ontology());
            if prov {
                s2s = s2s.with_provenance();
            }
            s2s.register_source("DB", Connection::Database { db: Arc::new(db.clone()) }).unwrap();
            s2s.register_attribute(
                "thing.product.brand",
                ExtractionRule::Sql { query: "SELECT brand FROM w".into(), column: "brand".into() },
                "DB",
                RecordScenario::MultiRecord,
            )
            .unwrap();
            s2s.query("SELECT product").unwrap()
        };
        let plain = build(false);
        let prov_prop = crate::instance::provenance_property();
        assert_eq!(plain.instances.graph.match_pattern(None, Some(&prov_prop), None).count(), 0);
        let with = build(true);
        let hits: Vec<_> =
            with.instances.graph.match_pattern(None, Some(&prov_prop), None).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].object().as_literal().unwrap().lexical(), "DB");
    }

    #[test]
    fn source_times_cover_all_sources() {
        let s2s = deploy();
        let outcome = s2s.query("SELECT watch").unwrap();
        assert_eq!(outcome.source_times.len(), 4);
        // Local sources cost zero simulated time.
        assert!(outcome.source_times.values().all(|t| t.as_micros() == 0));
    }

    #[test]
    fn cache_serves_repeat_queries() {
        let s2s = deploy_cached();
        let first = s2s.query("SELECT watch").unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        let second = s2s.query("SELECT watch").unwrap();
        assert_eq!(second.stats.cache_hits, second.stats.tasks);
        // Same answers, zero simulated time on the repeat.
        assert_eq!(first.instances.graph, second.instances.graph);
        assert_eq!(second.stats.simulated, SimDuration::ZERO);
        let stats = s2s.cache_stats();
        assert!(stats.hits > 0);
        assert!(stats.misses > 0);
    }

    #[test]
    fn cache_differentiates_queries_by_rule_not_by_s2sql() {
        // Two different S2SQL queries over the same mappings share the
        // cache: the second query is fully served from it.
        let s2s = deploy_cached();
        let _ = s2s.query("SELECT watch").unwrap();
        let filtered = s2s.query("SELECT watch WHERE brand='Seiko'").unwrap();
        assert_eq!(filtered.stats.cache_hits, filtered.stats.tasks);
        assert_eq!(filtered.individuals().len(), 1);
    }

    #[test]
    fn invalidate_cache_forces_reextraction() {
        let s2s = deploy_cached();
        let _ = s2s.query("SELECT watch").unwrap();
        s2s.invalidate_cache();
        let third = s2s.query("SELECT watch").unwrap();
        assert_eq!(third.stats.cache_hits, 0);
    }

    /// A small remote deployment with the cache enabled.
    fn deploy_cached() -> S2s {
        let mut db = Database::new("d");
        db.execute("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT)").unwrap();
        db.execute("INSERT INTO w VALUES (1,'Seiko'), (2,'Casio')").unwrap();
        let mut s2s = S2s::new(ontology()).with_cache();
        s2s.register_remote_source(
            "DB",
            Connection::Database { db: Arc::new(db) },
            CostModel::wan(),
            FailureModel::reliable(),
        )
        .unwrap();
        s2s.register_attribute(
            "thing.product.watch.brand",
            ExtractionRule::Sql {
                query: "SELECT brand FROM w ORDER BY id".into(),
                column: "brand".into(),
            },
            "DB",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        s2s
    }

    #[test]
    fn renders_owl_output() {
        let s2s = deploy();
        let outcome = s2s.query("SELECT watch WHERE brand='Seiko'").unwrap();
        let owl = outcome.render(s2s.ontology(), OutputFormat::OwlRdfXml);
        assert!(owl.contains("rdf:RDF"));
        assert!(owl.contains("Seiko"));
    }

    /// A remote deployment with one replicated source (primary +
    /// replica behind the same cost model) under `policy`.
    fn deploy_replicated(
        primary: FailureModel,
        replica: FailureModel,
        policy: ResiliencePolicy,
    ) -> S2s {
        let mut db = Database::new("d");
        db.execute("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT, price REAL)").unwrap();
        for i in 0..6 {
            db.execute(&format!("INSERT INTO w VALUES ({}, 'B{i}', {})", i + 1, 10 + i)).unwrap();
        }
        let mut s2s = S2s::new(ontology()).with_resilience(policy);
        s2s.register_remote_source_with_replicas(
            "DB",
            Connection::Database { db: Arc::new(db) },
            CostModel::wan(),
            primary,
            &[replica],
        )
        .unwrap();
        for (attr, col) in [("brand", "brand"), ("price", "price")] {
            s2s.register_attribute(
                &format!("thing.product.watch.{attr}"),
                ExtractionRule::Sql {
                    query: format!("SELECT {col} FROM w ORDER BY id"),
                    column: col.into(),
                },
                "DB",
                RecordScenario::MultiRecord,
            )
            .unwrap();
        }
        s2s
    }

    #[test]
    fn shed_query_returns_honest_empty_answer() {
        let s2s =
            deploy().with_admission(s2s_netsim::AdmissionConfig::with_permits(1)).with_tracing();
        // Occupy the only permit so the next arrival sees a backlog its
        // 1 ms budget cannot absorb.
        let slot = s2s.admission().unwrap().admit("hog", None, false).unwrap();
        let opts =
            QueryOptions::default().with_deadline(SimDuration::from_millis(1)).with_tenant("meek");
        let out = s2s.query_with_options("SELECT watch", &opts).unwrap();
        drop(slot);

        assert!(out.stats.shed);
        assert_eq!(out.stats.completeness, 0.0);
        assert!(out.individuals().is_empty());
        assert_eq!(out.stats.round_trips, 0, "a shed query puts nothing on the wire");
        assert_eq!(out.stats.plan_cache, CacheStats::default(), "shed before any plan work");
        let root = out.trace.unwrap().root;
        assert_eq!(root.outcome, SpanOutcome::Shed);
        assert!(root.get_attr("shed").is_some());
        assert_eq!(s2s.admission_stats().unwrap().shed, 1);
        assert_eq!(s2s.plan_cache_len(), 0, "shed queries publish nothing");

        // With the permit free again the same engine answers normally.
        let ok = s2s.query("SELECT watch").unwrap();
        assert!(!ok.stats.shed);
        assert!(!ok.individuals().is_empty());
    }

    #[test]
    fn urgent_queries_skip_the_budget_shed_check() {
        let s2s = deploy().with_admission(s2s_netsim::AdmissionConfig::with_permits(2));
        let slot = s2s.admission().unwrap().admit("hog", None, false).unwrap();
        let opts = QueryOptions::default()
            .with_deadline(SimDuration::from_micros(1))
            .with_priority(Priority::High);
        let out = s2s.query_with_options("SELECT watch", &opts).unwrap();
        drop(slot);
        assert!(!out.stats.shed, "high priority bypasses the estimated-wait shed");
    }

    #[test]
    fn deadline_exhaustion_returns_partial_answer_with_attempts_counted() {
        let policy = ResiliencePolicy::default().with_retry(
            s2s_netsim::RetryPolicy::attempts(10)
                .with_backoff(SimDuration::from_millis(50), 2, SimDuration::from_millis(400))
                .with_jitter(0.0),
        );
        // Primary and replica both hard down: without a budget this
        // query would grind through the whole retry/failover schedule.
        let s2s =
            deploy_replicated(FailureModel::unreachable(), FailureModel::unreachable(), policy);
        let opts = QueryOptions::default().with_deadline(SimDuration::from_millis(60));
        let out = s2s.query_with_options("SELECT watch", &opts).unwrap();

        assert!(!out.stats.shed);
        assert!(out.stats.deadline_hits >= 1);
        assert!(out.stats.failed_tasks > 0);
        assert!(out.stats.completeness < 1.0, "the answer is honestly degraded");
        assert!(out.stats.round_trips >= 1, "attempts made before expiry still count");
        assert!(
            out.errors().iter().any(|e| matches!(e.error, S2sError::DeadlineExceeded { .. })),
            "failures are labelled as deadline casualties"
        );
        let health = &out.resilience["DB"];
        assert_eq!(health.deadline_hits, out.stats.deadline_hits);
        // No failover happened after expiry: the budget is gone.
        assert_eq!(out.stats.failovers, 0);
    }

    #[test]
    fn hedging_races_stragglers_and_wins_stay_bounded_by_launches() {
        let policy = ResiliencePolicy::default()
            .with_retry(
                s2s_netsim::RetryPolicy::attempts(4)
                    .with_backoff(SimDuration::from_millis(60), 2, SimDuration::from_millis(240))
                    .with_jitter(0.0),
            )
            .with_hedging(s2s_netsim::HedgeConfig {
                percentile: 50,
                min_samples: 1,
                min_delay: SimDuration::from_micros(1),
            });
        // A flaky primary makes some exchanges straggle through retries
        // and backoff; the reliable replica answers hedges quickly.
        let s2s = deploy_replicated(FailureModel::flaky(0.7), FailureModel::reliable(), policy);
        let (mut hedges, mut wins) = (0, 0);
        for i in 0..20 {
            let out = s2s.query(&format!("SELECT watch WHERE price < {}", 11 + i)).unwrap();
            assert!(out.stats.hedge_wins <= out.stats.hedges, "wins bounded per query");
            hedges += out.stats.hedges;
            wins += out.stats.hedge_wins;
        }
        assert!(hedges >= 1, "no hedge launched across 20 queries");
        assert!(wins >= 1, "no hedge won across 20 queries");
        assert!(wins <= hedges);
        let hedger = s2s.resilience().hedger().expect("hedging enabled");
        assert_eq!(hedger.launched(), hedges);
        assert_eq!(hedger.wins(), wins);
    }

    /// Values-only fingerprint of an answer: IRIs are minted from
    /// post-pushdown record indices, so equivalence is judged on
    /// (source, class, values) triples.
    fn fingerprint(outcome: &QueryOutcome) -> Vec<String> {
        let mut lines: Vec<String> = outcome
            .individuals()
            .iter()
            .map(|i| format!("{}|{}|{:?}", i.source, i.class, i.values))
            .collect();
        lines.sort();
        lines
    }

    #[test]
    fn pushdown_answers_match_baseline_across_source_kinds() {
        let queries = [
            "SELECT watch WHERE case='stainless-steel'",
            "SELECT watch WHERE price<100",
            "SELECT watch WHERE brand LIKE 'S%'",
            "SELECT watch WHERE brand!='Casio' AND price>=100",
            "SELECT watch WHERE brand='Seiko' OR case='resin'",
            "SELECT watch(brand) WHERE price<200",
            "SELECT watch(brand, price)",
        ];
        for q in queries {
            let baseline = deploy().query(q).unwrap();
            let pushed = deploy().with_pushdown().query(q).unwrap();
            assert_eq!(fingerprint(&baseline), fingerprint(&pushed), "answers diverged for `{q}`");
            assert!(
                pushed.stats.wire_response_bytes <= baseline.stats.wire_response_bytes,
                "pushdown shipped more response bytes for `{q}`: {} > {}",
                pushed.stats.wire_response_bytes,
                baseline.stats.wire_response_bytes,
            );
        }
    }

    #[test]
    fn pushdown_rewrites_sql_and_xpath_rules() {
        let s2s = deploy().with_pushdown();
        let out = s2s.query("SELECT watch WHERE case='stainless-steel'").unwrap();
        let plan = out.pushdown.as_ref().expect("planner ran");
        // DB and XML both map `case` with pushable rules; the web page
        // lacks `case` entirely (pruned) and the text file is
        // single-record (no predicate pushing).
        assert_eq!(plan.sources["DB_ID_45"].pushed, vec!["case = stainless-steel"]);
        assert_eq!(plan.sources["XML_7"].pushed, vec!["case = stainless-steel"]);
        assert_eq!(out.stats.pushed_predicates, 2);
        assert!(out.stats.wire_bytes_saved > 0, "trimmed responses must be counted as saved");
    }

    #[test]
    fn pushdown_prunes_source_missing_required_property() {
        let s2s = deploy().with_pushdown();
        let out = s2s.query("SELECT watch WHERE case='resin'").unwrap();
        let plan = out.pushdown.as_ref().expect("planner ran");
        // wpage_81 maps only brand and price: it cannot satisfy the
        // required `case` conjunct, so it is pruned before the wire.
        assert_eq!(plan.pruned, vec!["wpage_81"]);
        assert_eq!(out.stats.pruned_sources, 1);
        assert!(
            !out.resilience.contains_key("wpage_81"),
            "pruned source must never reach the mediator"
        );
        assert_eq!(
            fingerprint(&out),
            fingerprint(&deploy().query("SELECT watch WHERE case='resin'").unwrap())
        );
    }

    #[test]
    fn pushdown_projection_drops_unneeded_schemas() {
        let baseline = deploy().query("SELECT watch(brand)").unwrap();
        let pushed = deploy().with_pushdown().query("SELECT watch(brand)").unwrap();
        assert_eq!(fingerprint(&baseline), fingerprint(&pushed));
        // Only the four brand schemas are dispatched; price/case stay home.
        assert_eq!(pushed.stats.tasks, 4);
        assert!(pushed.stats.tasks < baseline.stats.tasks);
        assert!(pushed.stats.wire_bytes < baseline.stats.wire_bytes);
        let plan = pushed.pushdown.as_ref().expect("planner ran");
        assert!(plan.sources.values().any(|s| s.projected_out > 0));
    }

    /// A multi-record plain-text source: predicate pushing must guard
    /// the WebL/regex rules with `Where` masks.
    fn deploy_multirecord_text() -> S2s {
        let mut web = WebStore::new();
        web.register_text(
            "http://files/list.txt",
            "brand: Alpha\nprice: 40\nbrand: Beta\nprice: 150\nbrand: Gamma\nprice: 90\n",
        );
        let mut s2s = S2s::new(ontology());
        s2s.register_source(
            "txt_list",
            Connection::Text { store: Arc::new(web), url: "http://files/list.txt".into() },
        )
        .unwrap();
        s2s.register_attribute(
            "thing.product.watch.brand",
            ExtractionRule::TextRegex { pattern: r"brand: (\w+)".into(), group: 1 },
            "txt_list",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        s2s.register_attribute(
            "thing.product.watch.price",
            ExtractionRule::TextRegex { pattern: r"price: (\d+)".into(), group: 1 },
            "txt_list",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        s2s
    }

    #[test]
    fn pushdown_guards_multirecord_text_rules() {
        let q = "SELECT watch WHERE price<100";
        let baseline = deploy_multirecord_text().query(q).unwrap();
        let pushed = deploy_multirecord_text().with_pushdown().query(q).unwrap();
        assert_eq!(baseline.individuals().len(), 2, "Alpha and Gamma");
        assert_eq!(fingerprint(&baseline), fingerprint(&pushed));
        let plan = pushed.pushdown.as_ref().expect("planner ran");
        assert_eq!(plan.sources["txt_list"].pushed, vec!["price < 100"]);
        assert!(
            pushed.stats.wire_response_bytes < baseline.stats.wire_response_bytes,
            "the Where mask must trim Beta off the wire"
        );
    }

    #[test]
    fn pushdown_is_inert_without_condition_or_projection() {
        let baseline = deploy().query("SELECT watch").unwrap();
        let pushed = deploy().with_pushdown().query("SELECT watch").unwrap();
        assert_eq!(fingerprint(&baseline), fingerprint(&pushed));
        assert!(pushed.pushdown.is_none(), "nothing to plan against");
        assert_eq!(pushed.stats.wire_bytes, baseline.stats.wire_bytes);
    }

    #[test]
    fn pushdown_equivalence_holds_on_every_execution_path() {
        let q = "SELECT watch WHERE price<100";
        let reference = fingerprint(&deploy().query(q).unwrap());
        for batching in [true, false] {
            for strategy in [
                Strategy::Serial,
                Strategy::Parallel { workers: 4 },
                Strategy::Reactor { shards: 2 },
            ] {
                let s2s = deploy().with_pushdown().with_batching(batching).with_strategy(strategy);
                let out = s2s.query(q).unwrap();
                assert_eq!(
                    fingerprint(&out),
                    reference,
                    "pushdown diverged under batching={batching}, {strategy:?}"
                );
            }
        }
    }

    /// Two classes, each mapped to its own database source, so the two
    /// queries carry disjoint dependency sets — the fixture for
    /// surgical-invalidation bounds.
    fn two_class_ontology() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Alpha", None)
            .unwrap()
            .class("Beta", None)
            .unwrap()
            .datatype_property("aval", "Alpha", xsd::STRING)
            .unwrap()
            .datatype_property("bval", "Beta", xsd::STRING)
            .unwrap()
            .datatype_property("ashadow", "Alpha", xsd::STRING)
            .unwrap()
            .build()
            .unwrap()
    }

    fn alpha_db(value: &str) -> Connection {
        let mut db = Database::new("a");
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, aval TEXT)").unwrap();
        db.execute(&format!("INSERT INTO t VALUES (1, '{value}')")).unwrap();
        Connection::Database { db: Arc::new(db) }
    }

    fn deploy_two_classes() -> S2s {
        let mut db_b = Database::new("b");
        db_b.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, bval TEXT)").unwrap();
        db_b.execute("INSERT INTO t VALUES (1, 'b0')").unwrap();
        let mut s2s = S2s::new(two_class_ontology()).with_cache().with_result_cache();
        s2s.register_source("SRC_A", alpha_db("a0")).unwrap();
        s2s.register_source("SRC_B", Connection::Database { db: Arc::new(db_b) }).unwrap();
        s2s.register_attribute(
            "thing.alpha.aval",
            ExtractionRule::Sql {
                query: "SELECT aval FROM t ORDER BY id".into(),
                column: "aval".into(),
            },
            "SRC_A",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        s2s.register_attribute(
            "thing.beta.bval",
            ExtractionRule::Sql {
                query: "SELECT bval FROM t ORDER BY id".into(),
                column: "bval".into(),
            },
            "SRC_B",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        s2s
    }

    fn sole_value(s2s: &S2s, outcome: &QueryOutcome, property: &str) -> String {
        let iri = s2s.ontology().property_iri(property).unwrap();
        outcome.individuals().iter().filter_map(|i| i.value(&iri)).collect::<Vec<_>>().join(",")
    }

    #[test]
    fn mutation_invalidates_only_dependent_entries() {
        let s2s = deploy_two_classes();
        let a1 = s2s.query("SELECT alpha").unwrap();
        assert_eq!(sole_value(&s2s, &a1, "aval"), "a0");
        s2s.query("SELECT beta").unwrap();
        assert_eq!(s2s.result_cache_len(), 2);

        let receipt = s2s
            .mutate_source("SRC_A", alpha_db("a1"), ChangeKind::RowUpdate, vec!["aval".into()])
            .unwrap();
        assert_eq!(receipt.version, 1);
        // The blast radius is exactly SRC_A's dependents: one answer,
        // one extraction entry. SRC_B's entry keeps serving.
        assert_eq!(receipt.dropped_results, 1);
        assert_eq!(receipt.dropped_extraction, 1);
        assert_eq!(s2s.result_cache_len(), 1);

        let b2 = s2s.query("SELECT beta").unwrap();
        assert_eq!(b2.stats.result_cache.hits, 1, "untouched source replays from cache");
        let a2 = s2s.query("SELECT alpha").unwrap();
        assert_eq!(a2.stats.result_cache.hits, 0);
        assert_eq!(sole_value(&s2s, &a2, "aval"), "a1", "the mutated value is served");
    }

    #[test]
    fn mutation_of_unregistered_source_is_cache_noop() {
        let s2s = deploy_two_classes();
        s2s.query("SELECT alpha").unwrap();
        s2s.query("SELECT beta").unwrap();
        assert_eq!(s2s.result_cache_len(), 2);

        let err = s2s.mutate_source("NOPE", alpha_db("x"), ChangeKind::RowInsert, vec![]);
        assert!(matches!(err, Err(S2sError::UnknownSource { .. })));
        // A kind swap on a registered source is refused the same way.
        let mut web = WebStore::new();
        web.register_text("http://x/t", "hi");
        let swap = Connection::Text { store: Arc::new(web), url: "http://x/t".into() };
        let err = s2s.mutate_source("SRC_A", swap, ChangeKind::DocReplace, vec![]);
        assert!(matches!(err, Err(S2sError::MutationKindMismatch { .. })));

        assert_eq!(s2s.result_cache_len(), 2, "failed mutations drop nothing");
        assert_eq!(s2s.source_version("SRC_A"), Some(0), "failed mutations bump no version");
        assert_eq!(s2s.query("SELECT alpha").unwrap().stats.result_cache.hits, 1);
    }

    #[test]
    fn concurrent_mutation_and_queries_never_leave_stale_answers() {
        // Whatever the interleaving of an in-flight query and a
        // mutation, the next query must observe the mutated value: an
        // old-snapshot answer is refused at cache admission by the
        // per-source version floor.
        let s2s = Arc::new(deploy_two_classes());
        for round in 0..20 {
            let engine = Arc::clone(&s2s);
            let racer = std::thread::spawn(move || {
                let _ = engine.query("SELECT alpha").unwrap();
            });
            let value = format!("a{}", round + 1);
            s2s.mutate_source("SRC_A", alpha_db(&value), ChangeKind::RowUpdate, vec![]).unwrap();
            racer.join().unwrap();
            let out = s2s.query("SELECT alpha").unwrap();
            assert_eq!(
                sole_value(&s2s, &out, "aval"),
                value,
                "stale answer served (round {round})"
            );
        }
    }

    #[test]
    fn mapping_edit_invalidates_only_dependent_entries() {
        let mut s2s = deploy_two_classes();
        s2s.query("SELECT alpha").unwrap();
        s2s.query("SELECT beta").unwrap();
        assert_eq!(s2s.result_cache_len(), 2);
        assert_eq!(s2s.plan_cache_len(), 2);

        // Editing SRC_A's existing mapping drops only SRC_A dependents.
        s2s.register_attribute(
            "thing.alpha.aval",
            ExtractionRule::Sql {
                query: "SELECT aval FROM t ORDER BY id DESC".into(),
                column: "aval".into(),
            },
            "SRC_A",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        assert_eq!(s2s.result_cache_len(), 1);
        assert_eq!(s2s.plan_cache_len(), 1);
        assert_eq!(
            s2s.query("SELECT beta").unwrap().stats.result_cache.hits,
            1,
            "the untouched source's hot entry replays"
        );

        // A *fresh* registration clears wholesale: existing answers may
        // be missing data the newcomer would have contributed.
        s2s.register_attribute(
            "thing.alpha.ashadow",
            ExtractionRule::Sql {
                query: "SELECT aval FROM t ORDER BY id".into(),
                column: "aval".into(),
            },
            "SRC_A",
            RecordScenario::MultiRecord,
        )
        .unwrap();
        assert_eq!(s2s.result_cache_len(), 0);
    }

    #[test]
    fn invalidate_cache_reports_dropped_entries() {
        let s2s = deploy_two_classes();
        s2s.query("SELECT alpha").unwrap();
        s2s.query("SELECT beta").unwrap();
        // 2 extraction entries + 2 cached answers.
        assert_eq!(s2s.invalidate_cache(), 4);
        assert_eq!(s2s.invalidate_cache(), 0);
    }

    /// One remote database with two mapped attributes, views enabled —
    /// the incremental-maintenance fixture.
    fn deploy_views() -> S2s {
        let mut db = Database::new("d");
        db.execute("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT, price REAL)").unwrap();
        db.execute("INSERT INTO w VALUES (1, 'Seiko', 100), (2, 'Casio', 50)").unwrap();
        let mut s2s = S2s::new(ontology()).with_views();
        s2s.register_remote_source(
            "DB",
            Connection::Database { db: Arc::new(db) },
            CostModel::wan(),
            FailureModel::reliable(),
        )
        .unwrap();
        for (attr, col) in [("brand", "brand"), ("price", "price")] {
            s2s.register_attribute(
                &format!("thing.product.watch.{attr}"),
                ExtractionRule::Sql {
                    query: format!("SELECT {col} FROM w ORDER BY id"),
                    column: col.into(),
                },
                "DB",
                RecordScenario::MultiRecord,
            )
            .unwrap();
        }
        s2s
    }

    fn watch_db(brand: &str, price: u32) -> Connection {
        let mut db = Database::new("d");
        db.execute("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT, price REAL)").unwrap();
        db.execute(&format!("INSERT INTO w VALUES (1, '{brand}', {price}), (2, 'Casio', 50)"))
            .unwrap();
        Connection::Database { db: Arc::new(db) }
    }

    #[test]
    fn views_serve_repeat_queries_without_wire_traffic() {
        let s2s = deploy_views();
        let first = s2s.query("SELECT watch").unwrap();
        assert_eq!(first.stats.view_hits, 0);
        assert!(first.stats.wire_bytes > 0);
        let second = s2s.query("SELECT watch").unwrap();
        assert_eq!(second.stats.view_hits, 2, "both slices are fresh views");
        assert_eq!(second.stats.round_trips, 0);
        assert_eq!(second.stats.wire_bytes, 0);
        assert_eq!(second.stats.feed_polls, 0, "matching versions need no poll");
        assert_eq!(fingerprint(&first), fingerprint(&second));
        assert_eq!(s2s.view_stats().hits, 2);
    }

    #[test]
    fn views_advance_past_untouching_mutations_without_reextraction() {
        let s2s = deploy_views();
        let first = s2s.query("SELECT watch").unwrap();
        // The mutation touches only `price`; the brand slice is
        // provably unaffected and advances for the price of a poll.
        s2s.mutate_source("DB", watch_db("Seiko", 80), ChangeKind::RowUpdate, vec!["price".into()])
            .unwrap();
        let after = s2s.query("SELECT watch").unwrap();
        assert_eq!(after.stats.view_hits, 1, "brand advanced without re-extraction");
        assert_eq!(after.stats.view_refreshes, 1, "price re-extracted");
        assert_eq!(after.stats.view_full_refreshes, 0);
        assert_eq!(after.stats.feed_polls, 1, "slices of one source share the poll");
        assert!(
            after.stats.wire_response_bytes < first.stats.wire_response_bytes,
            "delta maintenance shipped fewer response bytes ({}) than the cold extraction ({})",
            after.stats.wire_response_bytes,
            first.stats.wire_response_bytes,
        );
        let price = s2s.ontology().property_iri("price").unwrap();
        assert!(
            after.individuals().iter().filter_map(|i| i.value(&price)).any(|v| v == "80"),
            "the mutated price is served"
        );
    }

    #[test]
    fn view_feed_gap_falls_back_to_full_refresh() {
        let s2s = deploy_views();
        s2s.query("SELECT watch").unwrap();
        // Push the feed far past its retention so `since = 1` predates
        // the retained history: the delta is unsound for both slices.
        for i in 0..70 {
            s2s.mutate_source(
                "DB",
                watch_db("Orient", 200 + i),
                ChangeKind::RowUpdate,
                vec!["price".into()],
            )
            .unwrap();
        }
        let after = s2s.query("SELECT watch").unwrap();
        assert_eq!(after.stats.view_full_refreshes, 2);
        assert_eq!(after.stats.view_hits, 0);
        let brand = s2s.ontology().property_iri("brand").unwrap();
        assert!(
            after.individuals().iter().filter_map(|i| i.value(&brand)).any(|v| v == "Orient"),
            "the full refresh serves current data"
        );
        // Views are re-materialized: the next query is all hits again.
        assert_eq!(s2s.query("SELECT watch").unwrap().stats.view_hits, 2);
    }

    #[test]
    fn view_answers_match_recompute_after_every_mutation() {
        // The delta-soundness contract the conform oracle fuzzes:
        // view-maintained answers are fingerprint-identical to a
        // recompute from scratch, whatever the mutation pattern.
        let s2s = deploy_views();
        // Each step declares exactly the fields its connection swap
        // really changes — the contract `mutate_source` callers owe.
        let steps: [(&str, u32, &[&str]); 4] = [
            ("Seiko", 61, &["price"]),
            ("B1", 61, &["brand"]),
            ("B2", 62, &[]),
            ("B3", 63, &["brand", "price"]),
        ];
        for (i, (brand, price, touched)) in steps.iter().enumerate() {
            s2s.query("SELECT watch").unwrap();
            s2s.mutate_source(
                "DB",
                watch_db(brand, *price),
                ChangeKind::RowUpdate,
                touched.iter().map(|f| f.to_string()).collect(),
            )
            .unwrap();
            let maintained = s2s.query("SELECT watch").unwrap();
            let mut fresh = S2s::new(ontology());
            fresh.register_source("DB", watch_db(brand, *price)).unwrap();
            for (attr, col) in [("brand", "brand"), ("price", "price")] {
                fresh
                    .register_attribute(
                        &format!("thing.product.watch.{attr}"),
                        ExtractionRule::Sql {
                            query: format!("SELECT {col} FROM w ORDER BY id"),
                            column: col.into(),
                        },
                        "DB",
                        RecordScenario::MultiRecord,
                    )
                    .unwrap();
            }
            let recomputed = fresh.query("SELECT watch").unwrap();
            assert_eq!(
                fingerprint(&maintained),
                fingerprint(&recomputed),
                "delta answer diverged after mutation {i} touching {touched:?}"
            );
        }
    }

    #[test]
    fn bootstrap_matches_handwritten_on_the_demo_database() {
        // Bootstrap the demo DB source and compare against the
        // hand-written deployment: same mappings, same query answer.
        let handwritten = deploy();
        let baseline = handwritten.query("SELECT watch WHERE brand=\"Seiko\"").unwrap();

        let mut db = Database::new("catalog");
        db.execute(
            "CREATE TABLE watches (id INTEGER PRIMARY KEY, brand TEXT, price REAL, case_m TEXT)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO watches VALUES \
             (1,'Seiko',129.99,'stainless-steel'), (2,'Casio',59.5,'resin')",
        )
        .unwrap();
        let mut s2s = S2s::new(ontology());
        s2s.register_source("DB_ID_45", Connection::Database { db: Arc::new(db) }).unwrap();
        let report = s2s.register_bootstrapped("DB_ID_45").unwrap();
        assert_eq!(report.candidates.iter().filter(|c| c.applied).count(), 3);
        assert_eq!(s2s.mapping_count(), 3);

        let bootstrapped = s2s.query("SELECT watch WHERE brand=\"Seiko\"").unwrap();
        let values = |o: &QueryOutcome| {
            let mut v: Vec<(String, String, String)> = o
                .instances
                .individuals
                .iter()
                .flat_map(|i| {
                    i.values.iter().flat_map(|(p, vals)| {
                        vals.iter().map(|val| (i.class.to_string(), p.to_string(), val.clone()))
                    })
                })
                .collect();
            v.sort();
            v
        };
        // The hand-written deployment integrates four sources; restrict
        // the comparison to what the DB contributed.
        let from_db: Vec<_> = values(&baseline)
            .into_iter()
            .filter(|(_, _, v)| ["Seiko", "129.99", "stainless-steel"].contains(&v.as_str()))
            .collect();
        assert!(!from_db.is_empty());
        for entry in &from_db {
            assert!(values(&bootstrapped).contains(entry), "missing {entry:?}");
        }
    }

    #[test]
    fn bootstrap_conflicts_surface_and_override_round_trips() {
        // A source whose schema has a name collision (`price` and
        // `price_usd` both hit the `price` property) and an unmappable
        // primary-key column must surface both conflicts and register
        // nothing until the caller resolves the winner.
        let mut db = Database::new("feed");
        db.execute("CREATE TABLE prices (id INTEGER PRIMARY KEY, price REAL, price_usd REAL)")
            .unwrap();
        db.execute("INSERT INTO prices VALUES (1, 129.99, 142.5)").unwrap();
        let mut s2s = S2s::new(ontology());
        s2s.register_source("FEED", Connection::Database { db: Arc::new(db) }).unwrap();

        let mut report = s2s.register_bootstrapped("FEED").unwrap();
        let kinds: Vec<&str> =
            report.conflicts.iter().map(crate::bootstrap::Conflict::kind).collect();
        assert!(kinds.contains(&"name-collision"), "{kinds:?}");
        assert!(kinds.contains(&"unmappable"), "{kinds:?}");
        assert_eq!(s2s.mapping_count(), 0);

        // The override round-trips: resolve → apply → queryable.
        report.resolve("price", "thing.product.watch.price").unwrap();
        assert_eq!(s2s.apply_bootstrap(&mut report).unwrap(), 1);
        assert_eq!(s2s.mapping_count(), 1);
        let outcome = s2s.query("SELECT watch").unwrap();
        assert!(outcome.instances.individuals.iter().any(|i| i
            .values
            .values()
            .flatten()
            .any(|v| v == "129.99")));
        // Re-applying is a no-op: the candidate is marked applied.
        assert_eq!(s2s.apply_bootstrap(&mut report).unwrap(), 0);
    }
}
