//! Materialized semantic views.
//!
//! A view is one `(source, attribute path)` slice of the ontology
//! instance space: the value list a mapping's rule extracted, stamped
//! with the source data version it reflects. Unlike the passive
//! [`crate::cache::ExtractionCache`] — which must be *invalidated* from
//! the outside when a source mutates — views maintain themselves
//! against the source's change feed:
//!
//! * version matches the source → serve directly (**view hit**);
//! * version behind → poll the feed since the view's version. If no
//!   retained event touches the rule's source-side field
//!   ([`crate::mapping::ExtractionRule::touched_field`]), the view is
//!   provably unaffected: advance its version without re-extraction
//!   (still a hit — the poll is the only wire cost). Otherwise
//!   re-extract just this slice (**refresh**);
//! * feed gap (the mutation history was truncated past the view's
//!   version) → the delta is unsound; fall back to a full re-extract
//!   (**full refresh**).
//!
//! Soundness leans conservative everywhere a static answer is
//! unavailable: a rule whose touched field is unknowable treats every
//! event as touching it, and an event that names no fields is treated
//! as touching everything. Views therefore never serve values a
//! recompute-from-scratch would not produce — the property the
//! `s2s-conform` delta oracle checks under fuzzed mutation
//! interleavings.
//!
//! Keys are `(source, path)`, one entry per mapped slice, so the map is
//! bounded by the deployment's mapping count; the entry stores its rule
//! text, and a lookup under a different rule (a mapping edit, or a
//! pushdown rewrite) is a miss that the next store overwrites.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use s2s_netsim::SimDuration;

/// One materialized slice served out of [`SemanticViews`].
#[derive(Debug, Clone)]
pub struct ViewSlice {
    /// The extracted values (aligned per record for multi-record
    /// sources).
    pub values: Arc<Vec<String>>,
    /// The source data version the values reflect.
    pub version: u64,
    /// Simulated instant the slice was last extracted or verified
    /// fresh against the feed.
    pub refreshed_at: SimDuration,
}

#[derive(Debug)]
struct ViewEntry {
    rule: String,
    values: Arc<Vec<String>>,
    version: u64,
    refreshed_at: SimDuration,
}

/// Cumulative maintenance counters of a [`SemanticViews`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Slices served without re-extraction (fresh, or cheaply advanced
    /// past untouching events).
    pub hits: u64,
    /// Slices incrementally re-extracted because a feed event touched
    /// their field.
    pub refreshes: u64,
    /// Slices re-extracted from scratch after a feed gap.
    pub full_refreshes: u64,
    /// Change-feed polls issued.
    pub feed_polls: u64,
}

/// The registry of materialized semantic views, shared across queries
/// on one engine. See the module docs for the maintenance protocol —
/// this type only stores slices and counts; the middleware drives the
/// feed polls and re-extraction.
#[derive(Debug, Default)]
pub struct SemanticViews {
    entries: RwLock<BTreeMap<(String, String), ViewEntry>>,
    hits: AtomicU64,
    refreshes: AtomicU64,
    full_refreshes: AtomicU64,
    feed_polls: AtomicU64,
}

impl SemanticViews {
    /// An empty view registry.
    pub fn new() -> Self {
        SemanticViews::default()
    }

    /// The slice materialized for `(source, path)`, provided it was
    /// built by the same `rule` (a different rule means the mapping was
    /// edited or rewritten — the stored values answer the wrong
    /// question).
    pub fn lookup(&self, source: &str, path: &str, rule: &str) -> Option<ViewSlice> {
        let entries = self.entries.read();
        let e = entries.get(&(source.to_string(), path.to_string()))?;
        (e.rule == rule).then(|| ViewSlice {
            values: Arc::clone(&e.values),
            version: e.version,
            refreshed_at: e.refreshed_at,
        })
    }

    /// Stores (or overwrites) the slice for `(source, path)`.
    pub fn store(
        &self,
        source: &str,
        path: &str,
        rule: &str,
        values: Vec<String>,
        version: u64,
        now: SimDuration,
    ) {
        self.entries.write().insert(
            (source.to_string(), path.to_string()),
            ViewEntry {
                rule: rule.to_string(),
                values: Arc::new(values),
                version,
                refreshed_at: now,
            },
        );
    }

    /// Advances a slice to `version` without re-extraction — the feed
    /// proved no retained event touched its field. `refreshed_at` moves
    /// to `now`: freshness was just verified against the source.
    pub fn advance(&self, source: &str, path: &str, version: u64, now: SimDuration) {
        if let Some(e) = self.entries.write().get_mut(&(source.to_string(), path.to_string())) {
            e.version = e.version.max(version);
            e.refreshed_at = now;
        }
    }

    /// Drops every slice materialized from `source`, returning how many
    /// were dropped (the mapping-edit path; data mutations never drop
    /// views — they self-heal through the feed).
    pub fn remove_source(&self, source: &str) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|(s, _), _| s != source);
        before - entries.len()
    }

    /// Drops every slice, returning how many were dropped.
    pub fn clear(&self) -> usize {
        let mut entries = self.entries.write();
        let n = entries.len();
        entries.clear();
        n
    }

    /// Number of materialized slices.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether no slice is materialized.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Folds one query's maintenance tallies into the cumulative
    /// counters and mirrors them to the metrics registry.
    pub fn tally(
        &self,
        hits: u64,
        refreshes: u64,
        full_refreshes: u64,
        feed_polls: u64,
        staleness: SimDuration,
    ) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.refreshes.fetch_add(refreshes, Ordering::Relaxed);
        self.full_refreshes.fetch_add(full_refreshes, Ordering::Relaxed);
        self.feed_polls.fetch_add(feed_polls, Ordering::Relaxed);
        if s2s_obs::enabled() {
            let metrics = s2s_obs::global();
            if hits > 0 {
                metrics.counter(s2s_obs::names::VIEW_HITS_TOTAL).add(hits);
                metrics.histogram(s2s_obs::names::VIEW_STALENESS_US).observe(staleness.as_micros());
            }
            if refreshes > 0 {
                metrics.counter(s2s_obs::names::VIEW_REFRESHES_TOTAL).add(refreshes);
            }
            if full_refreshes > 0 {
                metrics.counter(s2s_obs::names::VIEW_FULL_REFRESHES_TOTAL).add(full_refreshes);
            }
            if feed_polls > 0 {
                metrics.counter(s2s_obs::names::FEED_POLLS_TOTAL).add(feed_polls);
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ViewStats {
        ViewStats {
            hits: self.hits.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            full_refreshes: self.full_refreshes.load(Ordering::Relaxed),
            feed_polls: self.feed_polls.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_requires_matching_rule() {
        let views = SemanticViews::new();
        views.store("S", "thing.a.p", "SELECT p", vec!["1".into()], 3, SimDuration::ZERO);
        let slice = views.lookup("S", "thing.a.p", "SELECT p").expect("materialized");
        assert_eq!(slice.values.as_slice(), ["1"]);
        assert_eq!(slice.version, 3);
        assert!(views.lookup("S", "thing.a.p", "SELECT q").is_none(), "edited rule misses");
        assert!(views.lookup("T", "thing.a.p", "SELECT p").is_none());
    }

    #[test]
    fn advance_moves_version_and_refresh_instant_forward() {
        let views = SemanticViews::new();
        views.store("S", "p", "r", vec![], 1, SimDuration::ZERO);
        views.advance("S", "p", 4, SimDuration::from_micros(7));
        let slice = views.lookup("S", "p", "r").unwrap();
        assert_eq!(slice.version, 4);
        assert_eq!(slice.refreshed_at, SimDuration::from_micros(7));
        // Advancing backwards never regresses the version.
        views.advance("S", "p", 2, SimDuration::from_micros(9));
        assert_eq!(views.lookup("S", "p", "r").unwrap().version, 4);
    }

    #[test]
    fn remove_source_is_surgical_and_clear_is_not() {
        let views = SemanticViews::new();
        views.store("A", "p", "r", vec![], 1, SimDuration::ZERO);
        views.store("A", "q", "r", vec![], 1, SimDuration::ZERO);
        views.store("B", "p", "r", vec![], 1, SimDuration::ZERO);
        assert_eq!(views.remove_source("A"), 2);
        assert_eq!(views.len(), 1);
        assert!(views.lookup("B", "p", "r").is_some());
        assert_eq!(views.clear(), 1);
        assert!(views.is_empty());
    }

    #[test]
    fn tally_accumulates() {
        let views = SemanticViews::new();
        views.tally(2, 1, 0, 3, SimDuration::ZERO);
        views.tally(1, 0, 1, 1, SimDuration::ZERO);
        assert_eq!(
            views.stats(),
            ViewStats { hits: 3, refreshes: 1, full_refreshes: 1, feed_polls: 4 }
        );
    }
}
