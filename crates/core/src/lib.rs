//! # s2s-core
//!
//! The Syntactic-to-Semantic (S2S) middleware of Silva & Cardoso (IWDDS @
//! ICDCS 2006): based on a single query, integrates data residing in
//! different data sources — possibly with different formats, structures,
//! schemas, and semantics — and returns the result as OWL ontology
//! instances.
//!
//! Architecture (paper Figure 1):
//!
//! * [`source`] — the data-source registry: the "centralized connection
//!   information store" of §2.3.2, wrapping structured
//!   ([`s2s_minidb`]), semi-structured ([`s2s_xml`]), and unstructured
//!   ([`s2s_webdoc`]) sources, optionally behind simulated remote
//!   endpoints ([`s2s_netsim`]);
//! * [`mapping`] — the Mapping Module of §2.3: attribute naming,
//!   extraction rules, and attribute mapping (the 3-step registration of
//!   Figure 3), keyed on ontology attribute paths;
//! * [`extract`] — the Extractor Manager of §2.4: obtains extraction
//!   schemas and source definitions, then runs the 4-step extraction
//!   process of Figure 5 through per-source-type wrappers, serially or
//!   in parallel;
//! * [`query`] — the Query Handler of §2.5: the S2SQL language
//!   (`SELECT <class> WHERE <attr><op><constraint> AND …`, no FROM);
//! * [`instance`] — the Instance Generator of §2.6: compiles extracted
//!   fragments into OWL individuals, reports per-source errors, and
//!   serializes to OWL/RDF-XML, Turtle, N-Triples, XML, or text;
//! * [`middleware`] — the [`middleware::S2s`] façade tying it all
//!   together: a `Send + Sync` resident engine whose queries multiplex
//!   onto one shared worker pool, layered behind an [`engine`]
//!   plan cache and (opt-in) query-result cache;
//! * [`engine`] — the resident engine's query-level caches
//!   ([`engine::PlanCache`], [`engine::QueryResultCache`]);
//! * [`baseline`] — the syntactic-only integrator used as the paper's
//!   implicit comparison system (experiment E8).

pub mod baseline;
pub mod bootstrap;
pub mod cache;
pub mod engine;
pub mod error;
pub mod extract;
pub mod instance;
pub mod mapping;
pub mod middleware;
pub mod planner;
pub mod query;
pub mod rules;
pub mod source;
pub mod spec;
pub mod view;

pub use bootstrap::{
    BootstrapReport, ClassCandidate, Conflict, MappingCandidate, SchemaField, SchemaSummary,
};
pub use engine::{DependencySet, PlanCache, QueryResultCache, ResultCacheConfig};
pub use error::{FailureClass, S2sError};
pub use extract::{ResilienceContext, ResiliencePolicy, SourceHealth};
pub use middleware::{MutationReceipt, Priority, QueryOptions, S2s};
pub use planner::{plan_pushdown, PushdownPlan, SourcePlan};
pub use rules::RuleCache;
pub use view::{SemanticViews, ViewSlice, ViewStats};
