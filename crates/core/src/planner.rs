//! The federated pushdown planner.
//!
//! The paper's mediator always pulls every record of every mapped
//! source and filters after the fact. This module plans a cheaper
//! federation of the same query: each S2SQL conjunct that a source can
//! evaluate natively is rewritten *into* that source's extraction rule
//! (`WHERE` for SQL sources, an XPath predicate for XML sources, a
//! `Where` guard for WebL/regex sources), projections drop whole
//! extraction schemas, and sources whose mappings cannot contribute to
//! a required conjunct are pruned before any wire exchange.
//!
//! Safety model: pushdown only ever *removes* records that the
//! mediator's residual post-filter (the full condition tree, re-applied
//! in [`crate::instance`]) would remove anyway. Concretely, only
//! *required conjuncts* are pushed — leaves implied by the whole tree
//! (`required(AND) = union`, `required(OR) = intersection`,
//! `required(NOT) = ∅`) — and each per-kind rewrite is gated on exact
//! operator/typing parity with [`crate::query::condition_matches`]
//! semantics. Anything that cannot be proven equivalent stays in the
//! residual; answers are byte-identical with the planner on or off.
//!
//! Alignment: a pushed predicate filters the *records* of a source, so
//! every rule of that source must be rewritten with the same predicate
//! (value lists stay positionally aligned). Rewrites are therefore
//! all-or-nothing per source and kind; single-record sources never get
//! predicates pushed (filtering would change which record is "first").

use std::collections::{BTreeMap, BTreeSet};

use s2s_minidb::{CmpOp, ColumnRef, DataType, Database, Expr, Operand, SelectStmt, Value};
use s2s_netsim::wire::batch_exchange_size;
use s2s_rdf::Iri;
use s2s_webdoc::with_guards;
use s2s_xml::push_child_predicate;

use crate::extract::{prepare_values, ExtractionSchema};
use crate::mapping::{ExtractionRule, RecordScenario};
use crate::query::{CondOp, ConditionTree, ResolvedCondition};
use crate::rules::RuleCache;
use crate::source::{Connection, SourceRegistry};

/// What the planner did to one surviving source.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourcePlan {
    /// Human-readable pushed conjuncts (`"price < 100"`), in condition
    /// order. Empty when nothing could be pushed natively.
    pub pushed: Vec<String>,
    /// Extraction schemas still dispatched for this source.
    pub kept: usize,
    /// Schemas dropped because the projection (plus condition
    /// attributes) does not need them.
    pub projected_out: usize,
}

/// The explicit per-query federation plan: which sources were pruned,
/// what each surviving source evaluates natively, and how many wire
/// bytes the avoided work would have cost.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PushdownPlan {
    /// Surviving sources, keyed by source id.
    pub sources: BTreeMap<String, SourcePlan>,
    /// Sources pruned outright: a required conjunct names a property
    /// the source does not map, so every record it could contribute
    /// would fail the residual filter anyway.
    pub pruned: Vec<String>,
    /// Wire bytes of the exchanges that were never issued (pruned
    /// sources and projected-out schemas), sized as the batched
    /// exchange the baseline mediator would have run.
    pub avoided_wire_bytes: u64,
}

impl PushdownPlan {
    /// Total conjuncts pushed into native rules, across sources.
    pub fn pushed_predicates(&self) -> u64 {
        self.sources.values().map(|s| s.pushed.len() as u64).sum()
    }

    /// Number of sources pruned before any wire exchange.
    pub fn pruned_sources(&self) -> u64 {
        self.pruned.len() as u64
    }

    /// Whether the planner changed nothing (no pushes, no prunes, no
    /// projected-out schemas).
    pub fn is_pass_through(&self) -> bool {
        self.pruned.is_empty()
            && self.avoided_wire_bytes == 0
            && self.sources.values().all(|s| s.pushed.is_empty() && s.projected_out == 0)
    }
}

/// The conjuncts implied by the whole tree: pushing one of these can
/// only drop records the residual filter drops too. `AND` contributes
/// the union of both sides, `OR` only what *both* sides require, `NOT`
/// nothing.
fn required_conjuncts(tree: &ConditionTree) -> Vec<&ResolvedCondition> {
    fn dedup(mut v: Vec<&ResolvedCondition>) -> Vec<&ResolvedCondition> {
        let mut seen = Vec::new();
        v.retain(|c| {
            if seen.contains(c) {
                false
            } else {
                seen.push(c);
                true
            }
        });
        v
    }
    match tree {
        ConditionTree::Leaf(c) => vec![c],
        ConditionTree::And(a, b) => {
            let mut v = required_conjuncts(a);
            v.extend(required_conjuncts(b));
            dedup(v)
        }
        ConditionTree::Or(a, b) => {
            let right = required_conjuncts(b);
            required_conjuncts(a).into_iter().filter(|c| right.contains(c)).collect()
        }
        ConditionTree::Not(_) => Vec::new(),
    }
}

/// Plans pushdown over the extraction schemas of one query: prunes
/// non-contributing sources, drops schemas outside the projection
/// keep-set, and rewrites each surviving source's rules to evaluate
/// every provably-equivalent required conjunct natively. Schemas come
/// back in their original order with [`ExtractionSchema::baseline`]
/// recording the pre-rewrite mapping for wire accounting.
pub fn plan_pushdown(
    registry: &SourceRegistry,
    schemas: &[ExtractionSchema],
    condition: Option<&ConditionTree>,
    projection: Option<&[Iri]>,
    rules: &RuleCache,
) -> (Vec<ExtractionSchema>, PushdownPlan) {
    if condition.is_none() && projection.is_none() {
        return (schemas.to_vec(), PushdownPlan::default());
    }
    let required = condition.map(required_conjuncts).unwrap_or_default();
    // The residual filter reads *every* condition leaf (not just the
    // required ones), so projection may only drop schemas outside
    // projection ∪ all-condition-properties.
    let keep_props: Option<BTreeSet<&Iri>> = projection.map(|p| {
        let mut set: BTreeSet<&Iri> = p.iter().collect();
        if let Some(tree) = condition {
            set.extend(tree.leaves().into_iter().map(|c| &c.property));
        }
        set
    });

    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, s) in schemas.iter().enumerate() {
        groups.entry(s.mapping.source().to_string()).or_default().push(i);
    }

    let mut plan = PushdownPlan::default();
    // Replacement rule (or None to keep) for every surviving index.
    let mut surviving: BTreeMap<usize, Option<ExtractionRule>> = BTreeMap::new();

    for (source_id, indices) in &groups {
        let group: Vec<&ExtractionSchema> = indices.iter().map(|&i| &schemas[i]).collect();
        let props: BTreeSet<&Iri> = group.iter().map(|s| s.mapping.property()).collect();

        // Capability pruning: a source that cannot supply a required
        // conjunct's property yields only individuals the residual
        // filter rejects, so skip its exchange entirely.
        if !required.is_empty() && required.iter().any(|c| !props.contains(&c.property)) {
            plan.avoided_wire_bytes += baseline_batch_bytes(registry, &group, rules);
            plan.pruned.push(source_id.clone());
            continue;
        }

        let keep = |s: &ExtractionSchema| {
            keep_props.as_ref().is_none_or(|set| set.contains(s.mapping.property()))
        };
        let kept_idx: Vec<usize> = indices.iter().copied().filter(|&i| keep(&schemas[i])).collect();
        let dropped: Vec<&ExtractionSchema> =
            indices.iter().filter(|&&i| !keep(&schemas[i])).map(|&i| &schemas[i]).collect();
        plan.avoided_wire_bytes += if kept_idx.is_empty() {
            // The whole batch disappears, frame headers and all.
            baseline_batch_bytes(registry, &group, rules)
        } else {
            dropped.iter().map(|s| baseline_section_bytes(registry, s, rules)).sum()
        };

        let single = group.iter().any(|s| s.mapping.scenario() == RecordScenario::SingleRecord);
        let applicable: Vec<&ResolvedCondition> =
            required.iter().copied().filter(|c| props.contains(&c.property)).collect();

        let mut pushed_desc = Vec::new();
        if !single && !applicable.is_empty() && !kept_idx.is_empty() {
            let kept: Vec<&ExtractionSchema> = kept_idx.iter().map(|&i| &schemas[i]).collect();
            let rewritten =
                registry.get(&source_id.as_str().into()).and_then(|source| {
                    match source.connection() {
                        Connection::Database { db } => rewrite_db(db, &group, &kept, &applicable),
                        Connection::Xml { .. } => rewrite_xml(&group, &kept, &applicable),
                        Connection::Web { .. } | Connection::Text { .. } => {
                            rewrite_webl(&group, &kept, &applicable)
                        }
                    }
                });
            if let Some((new_rules, desc)) = rewritten {
                pushed_desc = desc;
                for (&i, rule) in kept_idx.iter().zip(new_rules) {
                    surviving.insert(i, Some(rule));
                }
            }
        }
        for &i in &kept_idx {
            surviving.entry(i).or_insert(None);
        }
        plan.sources.insert(
            source_id.clone(),
            SourcePlan { pushed: pushed_desc, kept: kept_idx.len(), projected_out: dropped.len() },
        );
    }

    let mut out = Vec::with_capacity(surviving.len());
    for (i, replacement) in surviving {
        let old = &schemas[i];
        out.push(match replacement {
            Some(rule) => ExtractionSchema {
                mapping: old.mapping.with_rule(rule),
                baseline: Some(old.mapping.clone()),
            },
            None => old.clone(),
        });
    }
    (out, plan)
}

/// Wire bytes of the batched exchange the baseline mediator would run
/// for this source group (rules that fail locally never reach the wire
/// and count nothing).
fn baseline_batch_bytes(
    registry: &SourceRegistry,
    group: &[&ExtractionSchema],
    rules: &RuleCache,
) -> u64 {
    let ok: Vec<(usize, usize)> = group
        .iter()
        .filter_map(|s| {
            prepare_values(registry, &s.mapping, rules).ok().map(|values| {
                (s.mapping.rule().text().len(), values.iter().map(String::len).sum::<usize>())
            })
        })
        .collect();
    if ok.is_empty() {
        return 0;
    }
    batch_exchange_size(ok.iter().map(|&(r, _)| r), ok.iter().map(|&(_, v)| v)) as u64
}

/// Wire bytes one schema contributes as a section of a batch that
/// still flies (4-byte section prefix on each side).
fn baseline_section_bytes(
    registry: &SourceRegistry,
    schema: &ExtractionSchema,
    rules: &RuleCache,
) -> u64 {
    match prepare_values(registry, &schema.mapping, rules) {
        Ok(values) => {
            let resp: usize = values.iter().map(String::len).sum();
            (4 + schema.mapping.rule().text().len() + 4 + resp) as u64
        }
        Err(_) => 0,
    }
}

fn describe(c: &ResolvedCondition) -> String {
    format!("{} {} {}", c.property.local_name(), c.op, c.value)
}

fn cmp_of(op: CondOp) -> Option<CmpOp> {
    match op {
        CondOp::Eq => Some(CmpOp::Eq),
        CondOp::Ne => Some(CmpOp::Ne),
        CondOp::Lt => Some(CmpOp::Lt),
        CondOp::Le => Some(CmpOp::Le),
        CondOp::Gt => Some(CmpOp::Gt),
        CondOp::Ge => Some(CmpOp::Ge),
        CondOp::Like => None,
    }
}

/// Rewrites a database source's rules: every kept rule must be a
/// single-column scan of the same table with the same ordering; each
/// applicable conjunct becomes a typed `WHERE` term when the column
/// type reproduces the mediator's numeric-else-string comparison.
fn rewrite_db(
    db: &Database,
    group: &[&ExtractionSchema],
    kept: &[&ExtractionSchema],
    conjuncts: &[&ResolvedCondition],
) -> Option<(Vec<ExtractionRule>, Vec<String>)> {
    let mut stmts: Vec<(SelectStmt, &str)> = Vec::with_capacity(kept.len());
    for s in kept {
        let ExtractionRule::Sql { query, column } = s.mapping.rule() else { return None };
        let stmt = Database::prepare_select(query).ok()?;
        if !stmt.pushdown_eligible() {
            return None;
        }
        stmts.push((stmt, column));
    }
    let (first, _) = stmts.first()?;
    if stmts.iter().any(|(s, _)| s.table != first.table || s.order_by != first.order_by) {
        return None;
    }
    let table = db.table(&first.table)?.schema().clone();
    // Guard columns may come from schemas the projection dropped: the
    // predicate runs over table rows, not over shipped sections.
    let column_of = |prop: &Iri| -> Option<&str> {
        group.iter().find_map(|s| match (s.mapping.property() == prop, s.mapping.rule()) {
            (true, ExtractionRule::Sql { column, .. }) => Some(column.as_str()),
            _ => None,
        })
    };

    let mut exprs = Vec::new();
    let mut desc = Vec::new();
    for c in conjuncts {
        let Some(column) = column_of(&c.property) else { continue };
        let Some(idx) = table.column_index(column) else { continue };
        let numeric_value = c.value.parse::<f64>().is_ok();
        let expr = match (table.columns()[idx].data_type(), c.op) {
            // LIKE is text pattern matching on both sides.
            (DataType::Text, CondOp::Like) => Expr::Like {
                column: ColumnRef::new(column),
                pattern: c.value.clone(),
                negated: false,
            },
            // Numeric column + numeric literal: SQL compares
            // numerically, exactly like the mediator's f64 path.
            (DataType::Integer | DataType::Real, op) if numeric_value => {
                let value = match c.value.parse::<i64>() {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Float(c.value.parse::<f64>().ok()?),
                };
                Expr::Compare {
                    left: ColumnRef::new(column),
                    op: cmp_of(op)?,
                    right: Operand::Literal(value),
                }
            }
            // Text column + non-numeric literal: both sides compare
            // as strings. A numeric-looking literal would make the
            // mediator compare numerically while SQL compares text,
            // so it stays in the residual.
            (DataType::Text, op) if !numeric_value => Expr::Compare {
                left: ColumnRef::new(column),
                op: cmp_of(op)?,
                right: Operand::Literal(Value::Text(c.value.clone())),
            },
            _ => continue,
        };
        desc.push(describe(c));
        exprs.push(expr);
    }
    if exprs.is_empty() {
        return None;
    }
    let rules = stmts
        .into_iter()
        .map(|(stmt, column)| {
            let pushed = exprs.iter().cloned().fold(stmt, |s, e| s.and_predicate(e));
            ExtractionRule::Sql { query: pushed.to_sql(), column: column.to_string() }
        })
        .collect();
    Some((rules, desc))
}

/// Rewrites an XML source's rules by splicing `[guard op 'value']`
/// record predicates into every kept XPath. Equality stays residual
/// for numeric-looking literals (XPath `=` is string equality here);
/// ordered comparisons reuse the mediator's numeric-else-string
/// constraint semantics.
fn rewrite_xml(
    group: &[&ExtractionSchema],
    kept: &[&ExtractionSchema],
    conjuncts: &[&ResolvedCondition],
) -> Option<(Vec<ExtractionRule>, Vec<String>)> {
    let mut paths: Vec<String> = Vec::with_capacity(kept.len());
    for s in kept {
        let ExtractionRule::XPath { path } = s.mapping.rule() else { return None };
        paths.push(path.clone());
    }
    let guard_of = |prop: &Iri| -> Option<String> {
        group.iter().find_map(|s| match (s.mapping.property() == prop, s.mapping.rule()) {
            (true, ExtractionRule::XPath { path }) => path
                .strip_suffix("/text()")
                .and_then(|p| p.rsplit('/').next())
                .map(|s: &str| s.to_string()),
            _ => None,
        })
    };

    let mut desc = Vec::new();
    for c in conjuncts {
        if c.op == CondOp::Like {
            continue;
        }
        if c.op == CondOp::Eq && c.value.parse::<f64>().is_ok() {
            continue;
        }
        let Some(guard) = guard_of(&c.property) else { continue };
        let op = c.op.to_string();
        // All-or-nothing per conjunct: every rule of the source must
        // accept the splice or value lists would misalign.
        let Ok(next) = paths
            .iter()
            .map(|p| push_child_predicate(p, &guard, &op, &c.value))
            .collect::<Result<Vec<_>, _>>()
        else {
            continue;
        };
        paths = next;
        desc.push(describe(c));
    }
    if desc.is_empty() {
        return None;
    }
    Some((paths.into_iter().map(|path| ExtractionRule::XPath { path }).collect(), desc))
}

/// Converts a web/text rule into WebL program text the guard rewriter
/// can compose. `Extract(StripTags(PAGE), …)` reproduces the
/// mediator's regex-over-`doc.text()` path exactly (StripTags yields
/// parsed text for HTML pages and the raw source for plain text).
fn webl_text_of(rule: &ExtractionRule) -> Option<String> {
    match rule {
        ExtractionRule::Webl { program } => Some(program.clone()),
        // Pattern literals are raw until the closing backtick — a
        // backtick in the pattern cannot be rendered back.
        ExtractionRule::TextRegex { pattern, group } if !pattern.contains('`') => {
            Some(format!("Extract(StripTags(PAGE), `{pattern}`, {group});"))
        }
        _ => None,
    }
}

/// Rewrites a web or plain-text source's rules: each kept program is
/// masked by `Where` guards that re-run the guard attribute's own
/// program and keep only positions satisfying the conjunct — one
/// composed rewrite per rule so every mask stays aligned.
fn rewrite_webl(
    group: &[&ExtractionSchema],
    kept: &[&ExtractionSchema],
    conjuncts: &[&ResolvedCondition],
) -> Option<(Vec<ExtractionRule>, Vec<String>)> {
    let targets: Vec<String> =
        kept.iter().map(|s| webl_text_of(s.mapping.rule())).collect::<Option<_>>()?;
    let guard_of = |prop: &Iri| -> Option<String> {
        group.iter().find_map(|s| {
            if s.mapping.property() == prop {
                webl_text_of(s.mapping.rule())
            } else {
                None
            }
        })
    };

    let mut guards: Vec<(String, String, String)> = Vec::new();
    let mut desc = Vec::new();
    for c in conjuncts {
        let Some(guard) = guard_of(&c.property) else { continue };
        guards.push((guard, c.op.to_string(), c.value.clone()));
        desc.push(describe(c));
    }
    if guards.is_empty() {
        return None;
    }
    let specs: Vec<(&str, &str, &str)> =
        guards.iter().map(|(g, o, v)| (g.as_str(), o.as_str(), v.as_str())).collect();
    // All-or-nothing for the whole source: a rule that cannot take the
    // guard set leaves the source un-pushed rather than misaligned.
    let programs =
        targets.iter().map(|t| with_guards(t, &specs)).collect::<Result<Vec<_>, _>>().ok()?;
    Some((programs.into_iter().map(|program| ExtractionRule::Webl { program }).collect(), desc))
}
