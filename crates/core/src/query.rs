//! The Query Handler and the S2SQL language (paper §2.5).
//!
//! "The Syntactic-to-Semantic Query Language (S2SQL) is the query
//! language based on SQL supported by the extraction module. It is a
//! simpler version of SQL since data location is transparent […] the
//! FROM and related operators have no use in S2SQL."
//!
//! Syntax:
//!
//! ```text
//! SELECT <ontology class>[(<attribute>, <attribute>, …)]
//! WHERE <attribute><operator><constraint> AND <attribute><operator><constraint> …
//! ```
//!
//! The paper's example: `SELECT product WHERE brand='Seiko' AND
//! case='stainless-steel'`. We additionally support `!=`, `<`, `<=`,
//! `>`, `>=`, `LIKE` with `%`/`_` wildcards, and an explicit
//! projection list (`SELECT watch(brand, price)`) that restricts the
//! output to the named attributes — and lets the federated planner
//! skip extracting everything else.

use s2s_owl::{AttributePath, Ontology, PropertyKind, Reasoner};
use s2s_rdf::Iri;

use crate::error::S2sError;

/// A comparison operator in an S2SQL condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `LIKE`
    Like,
}

impl std::fmt::Display for CondOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CondOp::Eq => "=",
            CondOp::Ne => "!=",
            CondOp::Lt => "<",
            CondOp::Le => "<=",
            CondOp::Gt => ">",
            CondOp::Ge => ">=",
            CondOp::Like => "LIKE",
        })
    }
}

/// One `attribute op constraint` condition as written.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// The attribute as written (simple name or dotted path).
    pub attribute: String,
    /// The operator.
    pub op: CondOp,
    /// The constraint text (quotes removed).
    pub value: String,
}

/// A boolean combination of conditions (extension beyond the paper's
/// pure conjunctions: `OR`, `NOT`, and parentheses are accepted too).
#[derive(Debug, Clone, PartialEq)]
pub enum ConditionExpr {
    /// A single `attribute op constraint`.
    Leaf(Condition),
    /// Conjunction.
    And(Box<ConditionExpr>, Box<ConditionExpr>),
    /// Disjunction.
    Or(Box<ConditionExpr>, Box<ConditionExpr>),
    /// Negation.
    Not(Box<ConditionExpr>),
}

impl ConditionExpr {
    /// The leaves in left-to-right order.
    pub fn leaves(&self) -> Vec<&Condition> {
        let mut out = Vec::new();
        fn walk<'e>(e: &'e ConditionExpr, out: &mut Vec<&'e Condition>) {
            match e {
                ConditionExpr::Leaf(c) => out.push(c),
                ConditionExpr::And(a, b) | ConditionExpr::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                ConditionExpr::Not(e) => walk(e, out),
            }
        }
        walk(self, &mut out);
        out
    }
}

/// A parsed (but not yet validated) S2SQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct S2sqlQuery {
    /// The ontology class selected.
    pub class: String,
    /// The projection list as written (`SELECT class(a, b)`), if any.
    pub projection: Option<Vec<String>>,
    /// The WHERE clause, if any.
    pub condition: Option<ConditionExpr>,
}

/// A condition resolved against the ontology.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedCondition {
    /// The property the attribute resolved to.
    pub property: Iri,
    /// The operator.
    pub op: CondOp,
    /// The constraint text.
    pub value: String,
}

/// A resolved boolean condition tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ConditionTree {
    /// A resolved leaf.
    Leaf(ResolvedCondition),
    /// Conjunction.
    And(Box<ConditionTree>, Box<ConditionTree>),
    /// Disjunction.
    Or(Box<ConditionTree>, Box<ConditionTree>),
    /// Negation.
    Not(Box<ConditionTree>),
}

impl ConditionTree {
    /// Evaluates against one individual's property values. A leaf holds
    /// when at least one value of its property satisfies the comparison
    /// (missing properties fail the leaf — best-effort semantics).
    pub fn matches(&self, values: &std::collections::BTreeMap<Iri, Vec<String>>) -> bool {
        match self {
            ConditionTree::Leaf(c) => {
                values.get(&c.property).is_some_and(|vs| vs.iter().any(|v| condition_matches(c, v)))
            }
            ConditionTree::And(a, b) => a.matches(values) && b.matches(values),
            ConditionTree::Or(a, b) => a.matches(values) || b.matches(values),
            ConditionTree::Not(e) => !e.matches(values),
        }
    }

    /// The resolved leaves in left-to-right order.
    pub fn leaves(&self) -> Vec<&ResolvedCondition> {
        let mut out = Vec::new();
        fn walk<'e>(e: &'e ConditionTree, out: &mut Vec<&'e ResolvedCondition>) {
            match e {
                ConditionTree::Leaf(c) => out.push(c),
                ConditionTree::And(a, b) | ConditionTree::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                ConditionTree::Not(e) => walk(e, out),
            }
        }
        walk(self, &mut out);
        out
    }
}

/// The output of query handling: what to extract and what to return
/// (paper: "the query output will have all their associated classes").
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The selected class.
    pub class: Iri,
    /// The selected class plus every class reachable through object
    /// properties (the associated classes included in the output).
    pub output_classes: Vec<Iri>,
    /// Canonical attribute paths for every property applicable to the
    /// selected class — the extraction attribute list (Fig. 5 step 1).
    pub attributes: Vec<AttributePath>,
    /// The resolved projection, if the query named one: only these
    /// properties appear in the output, and the pushdown planner may
    /// skip extracting anything outside the projection and the
    /// condition attributes.
    pub projection: Option<Vec<Iri>>,
    /// The validated condition tree, if the query had a WHERE clause.
    pub condition: Option<ConditionTree>,
}

/// Parses S2SQL text.
///
/// # Errors
///
/// Returns [`S2sError::QuerySyntax`] on malformed input.
pub fn parse(input: &str) -> Result<S2sqlQuery, S2sError> {
    let parsed = parse_inner(input);
    if s2s_obs::enabled() {
        let m = s2s_obs::global();
        m.counter("s2s_query_parses_total").inc();
        if parsed.is_err() {
            m.counter("s2s_query_parse_errors_total").inc();
        }
    }
    parsed
}

fn parse_inner(input: &str) -> Result<S2sqlQuery, S2sError> {
    let mut p = Parser { chars: input.char_indices().collect(), pos: 0, len: input.len() };
    p.skip_ws();
    p.expect_keyword("SELECT")?;
    p.skip_ws();
    let class = p.parse_identifier()?;
    p.skip_ws();
    let projection = if p.peek() == Some('(') {
        p.pos += 1;
        let mut names = Vec::new();
        loop {
            p.skip_ws();
            names.push(p.parse_identifier()?);
            p.skip_ws();
            match p.peek() {
                Some(',') => p.pos += 1,
                Some(')') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(p.err("expected `,` or `)` in projection list")),
            }
        }
        Some(names)
    } else {
        None
    };
    p.skip_ws();
    let condition = if p.peek_keyword("WHERE") {
        p.expect_keyword("WHERE")?;
        Some(p.parse_or_expr()?)
    } else {
        None
    };
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("unexpected trailing content"));
    }
    Ok(S2sqlQuery { class, projection, condition })
}

/// Keywords whose case is insignificant in S2SQL.
const KEYWORDS: [&str; 6] = ["SELECT", "WHERE", "AND", "OR", "NOT", "LIKE"];

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.' || c == '-'
}

/// Normalizes S2SQL text into a canonical form for cache keying: two
/// queries the parser treats identically normalize to the same string,
/// and — just as important for a cache key — queries the parser treats
/// *differently* never collide.
///
/// The text is re-tokenized (quoted constraints verbatim with their
/// quotes and doubled-quote escapes; identifier/number words; `<=`,
/// `>=`, `!=`, `<>` as single tokens; any other symbol alone), keywords
/// are uppercased, and tokens are joined with single spaces. Joining is
/// injective because only quoted tokens can contain a space and they
/// keep their delimiters; lexing the two-character operators whole
/// keeps e.g. the invalid `price < = 10` from colliding with
/// `price <= 10`. Invalid queries still normalize (to an equally
/// invalid canonical text) — callers may key error-free caches without
/// pre-validating.
pub fn normalize(input: &str) -> String {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens: Vec<String> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '\'' || c == '"' {
            // Quoted constraint: verbatim, delimiters included. A
            // doubled quote is an escape; an unterminated string runs
            // to the end of the input (the parser rejects it, but the
            // key must still be deterministic).
            let mut tok = String::new();
            tok.push(c);
            i += 1;
            while i < chars.len() {
                let d = chars[i];
                tok.push(d);
                i += 1;
                if d == c {
                    if i < chars.len() && chars[i] == c {
                        tok.push(c);
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
            tokens.push(tok);
            continue;
        }
        if is_word_char(c) {
            let mut tok = String::new();
            while i < chars.len() && is_word_char(chars[i]) {
                tok.push(chars[i]);
                i += 1;
            }
            if KEYWORDS.iter().any(|k| tok.eq_ignore_ascii_case(k)) {
                tok = tok.to_ascii_uppercase();
            }
            tokens.push(tok);
            continue;
        }
        let two = matches!((c, chars.get(i + 1)), ('<' | '>' | '!', Some('=')) | ('<', Some('>')));
        if two {
            tokens.push([c, chars[i + 1]].into_iter().collect());
            i += 2;
        } else {
            tokens.push(c.to_string());
            i += 1;
        }
    }
    tokens.join(" ")
}

/// Validates a parsed query against the ontology and produces the
/// extraction plan.
///
/// # Errors
///
/// Returns [`S2sError::QuerySemantics`] for unknown classes/attributes
/// or attributes that do not apply to the selected class.
pub fn plan(query: &S2sqlQuery, ontology: &Ontology) -> Result<QueryPlan, S2sError> {
    let class = ontology
        .classes()
        .find(|c| c.iri().local_name().eq_ignore_ascii_case(&query.class))
        .map(|c| c.iri().clone())
        .ok_or_else(|| S2sError::QuerySemantics {
            message: format!("unknown class `{}`", query.class),
        })?;

    let reasoner = Reasoner::new(ontology);
    let properties = ontology.properties_of_class(&class);

    // Associated output classes: ranges of object properties, followed
    // transitively (paper: "all products have a Provider, therefore the
    // output classes will be Product, watch, and Provider").
    let mut output_classes = vec![class.clone()];
    let mut frontier = vec![class.clone()];
    while let Some(c) = frontier.pop() {
        for p in ontology.properties_of_class(&c) {
            if p.kind() == PropertyKind::Object {
                for range in p.ranges() {
                    if ontology.class(range).is_some() && !output_classes.contains(range) {
                        output_classes.push(range.clone());
                        frontier.push(range.clone());
                    }
                }
            }
        }
        // Subclasses of the selected class are also part of the answer
        // space (a query for `product` returns watches too).
        for sub in ontology.subclasses(&c) {
            if !output_classes.contains(&sub) {
                output_classes.push(sub.clone());
            }
        }
    }
    let _ = reasoner; // closure retained for future subsumption checks

    // Attribute list: one canonical path per applicable property, for
    // the selected class AND each of its subclasses — a query for
    // `product` must reach mappings registered at `watch` level, since
    // every watch is a product.
    let mut attributes = Vec::new();
    let mut answer_classes = vec![class.clone()];
    answer_classes.extend(ontology.subclasses(&class));
    for c in &answer_classes {
        for p in ontology.properties_of_class(c) {
            let path = AttributePath::for_attribute(ontology, c, p.iri())?;
            if !attributes.contains(&path) {
                attributes.push(path);
            }
        }
    }

    // Conditions must name attributes applicable to the class (or be
    // full paths that resolve to one of them).
    fn resolve_tree(
        expr: &ConditionExpr,
        class: &Iri,
        properties: &[&s2s_owl::PropertyDef],
        ontology: &Ontology,
    ) -> Result<ConditionTree, S2sError> {
        Ok(match expr {
            ConditionExpr::Leaf(c) => {
                let property = if c.attribute.contains('.') {
                    let path: AttributePath = c.attribute.parse().map_err(S2sError::Owl)?;
                    path.resolve(ontology)?.property
                } else {
                    properties
                        .iter()
                        .find(|p| p.iri().local_name().eq_ignore_ascii_case(&c.attribute))
                        .map(|p| p.iri().clone())
                        .ok_or_else(|| S2sError::QuerySemantics {
                            message: format!(
                                "class `{}` has no attribute `{}`",
                                class.local_name(),
                                c.attribute
                            ),
                        })?
                };
                ConditionTree::Leaf(ResolvedCondition {
                    property,
                    op: c.op,
                    value: c.value.clone(),
                })
            }
            ConditionExpr::And(a, b) => ConditionTree::And(
                Box::new(resolve_tree(a, class, properties, ontology)?),
                Box::new(resolve_tree(b, class, properties, ontology)?),
            ),
            ConditionExpr::Or(a, b) => ConditionTree::Or(
                Box::new(resolve_tree(a, class, properties, ontology)?),
                Box::new(resolve_tree(b, class, properties, ontology)?),
            ),
            ConditionExpr::Not(e) => {
                ConditionTree::Not(Box::new(resolve_tree(e, class, properties, ontology)?))
            }
        })
    }
    let condition = match &query.condition {
        Some(expr) => Some(resolve_tree(expr, &class, &properties, ontology)?),
        None => None,
    };

    // The projection resolves exactly like condition attributes: simple
    // names against the selected class's properties, dotted names as
    // full attribute paths.
    let projection = match &query.projection {
        Some(names) => {
            let mut resolved = Vec::new();
            for name in names {
                let property = if name.contains('.') {
                    let path: AttributePath = name.parse().map_err(S2sError::Owl)?;
                    path.resolve(ontology)?.property
                } else {
                    properties
                        .iter()
                        .find(|p| p.iri().local_name().eq_ignore_ascii_case(name))
                        .map(|p| p.iri().clone())
                        .ok_or_else(|| S2sError::QuerySemantics {
                            message: format!(
                                "class `{}` has no attribute `{name}` to project",
                                class.local_name()
                            ),
                        })?
                };
                if !resolved.contains(&property) {
                    resolved.push(property);
                }
            }
            Some(resolved)
        }
        None => None,
    };

    Ok(QueryPlan { class, output_classes, attributes, projection, condition })
}

/// Evaluates one resolved condition against a candidate value. Numeric
/// comparison applies when both sides parse as numbers; otherwise
/// string comparison. `LIKE` uses `%`/`_` wildcards.
pub fn condition_matches(cond: &ResolvedCondition, value: &str) -> bool {
    if cond.op == CondOp::Like {
        return s2s_minidb::value::like_match(value, &cond.value);
    }
    let ord = match (value.parse::<f64>(), cond.value.parse::<f64>()) {
        (Ok(a), Ok(b)) => a.partial_cmp(&b),
        _ => Some(value.cmp(cond.value.as_str())),
    };
    let Some(ord) = ord else { return false };
    match cond.op {
        CondOp::Eq => ord.is_eq(),
        CondOp::Ne => !ord.is_eq(),
        CondOp::Lt => ord.is_lt(),
        CondOp::Le => ord.is_le(),
        CondOp::Gt => ord.is_gt(),
        CondOp::Ge => ord.is_ge(),
        CondOp::Like => unreachable!("handled above"),
    }
}

// ---------------------------------------------------------------- parser

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> S2sError {
        let position = self.chars.get(self.pos).map(|&(b, _)| b).unwrap_or(self.len);
        S2sError::QuerySyntax { position, message: message.into() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        let upper: String = self
            .chars
            .iter()
            .skip(self.pos)
            .take(kw.len())
            .map(|&(_, c)| c.to_ascii_uppercase())
            .collect();
        upper == kw
            && self
                .chars
                .get(self.pos + kw.len())
                .map(|&(_, c)| !c.is_ascii_alphanumeric())
                .unwrap_or(true)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), S2sError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_identifier(&mut self) -> Result<String, S2sError> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-' {
                s.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        if s.is_empty() {
            return Err(self.err("expected an identifier"));
        }
        Ok(s)
    }

    // or_expr := and_expr (OR and_expr)*
    fn parse_or_expr(&mut self) -> Result<ConditionExpr, S2sError> {
        self.skip_ws();
        let mut left = self.parse_and_expr()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("OR") {
                let right = self.parse_and_expr()?;
                left = ConditionExpr::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    // and_expr := unary (AND unary)*
    fn parse_and_expr(&mut self) -> Result<ConditionExpr, S2sError> {
        self.skip_ws();
        let mut left = self.parse_unary_expr()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("AND") {
                let right = self.parse_unary_expr()?;
                left = ConditionExpr::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    // unary := NOT unary | '(' or_expr ')' | condition
    fn parse_unary_expr(&mut self) -> Result<ConditionExpr, S2sError> {
        self.skip_ws();
        if self.eat_keyword("NOT") {
            return Ok(ConditionExpr::Not(Box::new(self.parse_unary_expr()?)));
        }
        if self.peek() == Some('(') {
            self.pos += 1;
            let e = self.parse_or_expr()?;
            self.skip_ws();
            if self.peek() != Some(')') {
                return Err(self.err("expected `)`"));
            }
            self.pos += 1;
            return Ok(e);
        }
        Ok(ConditionExpr::Leaf(self.parse_condition()?))
    }

    fn parse_condition(&mut self) -> Result<Condition, S2sError> {
        let attribute = self.parse_identifier()?;
        self.skip_ws();
        let op = if self.eat_keyword("LIKE") {
            CondOp::Like
        } else {
            match self.peek() {
                Some('=') => {
                    self.pos += 1;
                    CondOp::Eq
                }
                Some('!') => {
                    self.pos += 1;
                    if self.peek() != Some('=') {
                        return Err(self.err("expected `=` after `!`"));
                    }
                    self.pos += 1;
                    CondOp::Ne
                }
                Some('<') => {
                    self.pos += 1;
                    if self.peek() == Some('=') {
                        self.pos += 1;
                        CondOp::Le
                    } else if self.peek() == Some('>') {
                        self.pos += 1;
                        CondOp::Ne
                    } else {
                        CondOp::Lt
                    }
                }
                Some('>') => {
                    self.pos += 1;
                    if self.peek() == Some('=') {
                        self.pos += 1;
                        CondOp::Ge
                    } else {
                        CondOp::Gt
                    }
                }
                _ => return Err(self.err("expected a comparison operator")),
            }
        };
        self.skip_ws();
        let value = self.parse_constraint()?;
        Ok(Condition { attribute, op, value })
    }

    fn parse_constraint(&mut self) -> Result<String, S2sError> {
        match self.peek() {
            Some(q @ ('\'' | '"')) => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.peek() {
                        None => return Err(self.err("unterminated string constraint")),
                        Some(c) if c == q => {
                            self.pos += 1;
                            // '' escape
                            if self.peek() == Some(q) {
                                s.push(q);
                                self.pos += 1;
                            } else {
                                return Ok(s);
                            }
                        }
                        Some(c) => {
                            s.push(c);
                            self.pos += 1;
                        }
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut s = String::new();
                s.push(c);
                self.pos += 1;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        s.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(s)
            }
            _ => {
                // Bare word constraint (paper writes brand="Seiko" but we
                // tolerate brand=Seiko).
                let s = self.parse_identifier()?;
                Ok(s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_owl::Ontology;

    fn onto() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .class("Watch", Some("Product"))
            .unwrap()
            .class("Provider", None)
            .unwrap()
            .class("Country", None)
            .unwrap()
            .datatype_property("brand", "Product", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .datatype_property("case", "Watch", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .datatype_property("price", "Product", s2s_rdf::vocab::xsd::DECIMAL)
            .unwrap()
            .object_property("provider", "Product", "Provider")
            .unwrap()
            .object_property("country", "Provider", "Country")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn normalize_collapses_whitespace_and_keyword_case() {
        let a = normalize("select  watch\n where PRICE < 100 and brand = 'Seiko'");
        let b = normalize("SELECT watch WHERE price<100 AND brand='Seiko'");
        // The attribute identifier keeps its case (the planner matches
        // it case-insensitively, but `PRICE` is not a keyword) — only
        // whitespace, operator spacing, and keyword case normalize.
        assert_eq!(a, "SELECT watch WHERE PRICE < 100 AND brand = 'Seiko'");
        assert_eq!(b, "SELECT watch WHERE price < 100 AND brand = 'Seiko'");
    }

    #[test]
    fn normalize_is_identical_for_equivalent_spacing() {
        let variants = [
            "SELECT watch WHERE price<=100",
            "select watch where price <= 100",
            "  SELECT\twatch\nWHERE   price  <=  100  ",
        ];
        let keys: Vec<String> = variants.iter().map(|v| normalize(v)).collect();
        assert!(keys.iter().all(|k| k == &keys[0]), "{keys:?}");
    }

    #[test]
    fn normalize_keeps_quoted_text_verbatim() {
        let q = normalize("SELECT watch WHERE brand='  Select  Or ''x''  '");
        assert_eq!(q, "SELECT watch WHERE brand = '  Select  Or ''x''  '");
        // Double-quoted constraints keep their delimiter too, so the
        // two quoting styles never collide.
        assert_ne!(normalize("SELECT w WHERE b='x'"), normalize("SELECT w WHERE b=\"x\""));
    }

    #[test]
    fn normalize_does_not_collide_distinct_queries() {
        // `< =` is a syntax error while `<=` parses: different keys.
        assert_ne!(
            normalize("SELECT w WHERE price < = 10"),
            normalize("SELECT w WHERE price <= 10")
        );
        assert_ne!(normalize("SELECT w WHERE price <> 10"), normalize("SELECT w WHERE price < 10"));
        // Negative numbers lex as one word either way.
        assert_eq!(
            normalize("SELECT w WHERE price=-12.5"),
            normalize("SELECT w WHERE price = -12.5")
        );
    }

    #[test]
    fn parses_paper_example() {
        let q = parse("SELECT product WHERE brand='Seiko' AND case='stainless-steel'").unwrap();
        assert_eq!(q.class, "product");
        let tree = q.condition.as_ref().unwrap();
        assert!(matches!(tree, ConditionExpr::And(_, _)));
        let leaves = tree.leaves();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].attribute, "brand");
        assert_eq!(leaves[0].op, CondOp::Eq);
        assert_eq!(leaves[0].value, "Seiko");
        assert_eq!(leaves[1].value, "stainless-steel");
    }

    #[test]
    fn parses_without_where() {
        let q = parse("SELECT watch").unwrap();
        assert!(q.condition.is_none());
        assert!(q.projection.is_none());
    }

    #[test]
    fn parses_projection_list() {
        let q = parse("SELECT watch(brand, price) WHERE price<100").unwrap();
        assert_eq!(q.projection.as_deref(), Some(&["brand".to_string(), "price".into()][..]));
        assert!(q.condition.is_some());
        // Without WHERE, and with odd spacing.
        let q = parse("SELECT watch ( brand )").unwrap();
        assert_eq!(q.projection.as_deref(), Some(&["brand".to_string()][..]));
        // Malformed lists are rejected.
        assert!(parse("SELECT watch(").is_err());
        assert!(parse("SELECT watch()").is_err());
        assert!(parse("SELECT watch(brand,)").is_err());
        assert!(parse("SELECT watch(brand").is_err());
    }

    #[test]
    fn plan_resolves_projection() {
        let o = onto();
        let q = parse("SELECT product(brand, price, brand)").unwrap();
        let p = plan(&q, &o).unwrap();
        let names: Vec<&str> =
            p.projection.as_ref().unwrap().iter().map(|i| i.local_name()).collect();
        assert_eq!(names, ["brand", "price"], "duplicates collapse");
        // Dotted paths resolve too.
        let q = parse("SELECT watch(thing.product.watch.case)").unwrap();
        let p = plan(&q, &o).unwrap();
        assert_eq!(p.projection.as_ref().unwrap()[0].local_name(), "case");
        // Unknown projection attributes are rejected.
        let q = parse("SELECT product(nonexistent)").unwrap();
        assert!(matches!(plan(&q, &o), Err(S2sError::QuerySemantics { .. })));
    }

    #[test]
    fn parses_all_operators() {
        let q = parse(
            "SELECT product WHERE a=1 AND b!=2 AND c<3 AND d<=4 AND e>5 AND f>=6 AND g<>7 AND h LIKE 'S%'",
        )
        .unwrap();
        let tree = q.condition.unwrap();
        let ops: Vec<CondOp> = tree.leaves().iter().map(|c| c.op).collect();
        assert_eq!(
            ops,
            [
                CondOp::Eq,
                CondOp::Ne,
                CondOp::Lt,
                CondOp::Le,
                CondOp::Gt,
                CondOp::Ge,
                CondOp::Ne,
                CondOp::Like
            ]
        );
    }

    #[test]
    fn quoted_escapes_and_numbers() {
        let q = parse("SELECT p WHERE a='it''s' AND b=-12.5 AND c=\"x\"").unwrap();
        let tree = q.condition.unwrap();
        let leaves = tree.leaves();
        assert_eq!(leaves[0].value, "it's");
        assert_eq!(leaves[1].value, "-12.5");
        assert_eq!(leaves[2].value, "x");
    }

    #[test]
    fn or_not_and_parentheses() {
        // OR binds looser than AND.
        let q = parse("SELECT p WHERE a=1 OR b=2 AND c=3").unwrap();
        match q.condition.unwrap() {
            ConditionExpr::Or(_, right) => assert!(matches!(*right, ConditionExpr::And(_, _))),
            other => panic!("{other:?}"),
        }
        // Parentheses override.
        let q = parse("SELECT p WHERE (a=1 OR b=2) AND c=3").unwrap();
        match q.condition.unwrap() {
            ConditionExpr::And(left, _) => assert!(matches!(*left, ConditionExpr::Or(_, _))),
            other => panic!("{other:?}"),
        }
        // NOT.
        let q = parse("SELECT p WHERE NOT brand='Seiko'").unwrap();
        assert!(matches!(q.condition.unwrap(), ConditionExpr::Not(_)));
        // Unbalanced parens rejected.
        assert!(parse("SELECT p WHERE (a=1").is_err());
        assert!(parse("SELECT p WHERE a=1)").is_err());
    }

    #[test]
    fn condition_tree_evaluation() {
        let o = onto();
        let q = parse("SELECT product WHERE brand='Seiko' OR brand='Casio'").unwrap();
        let p = plan(&q, &o).unwrap();
        let tree = p.condition.as_ref().unwrap();
        let brand = o.property_iri("brand").unwrap();
        let with = |v: &str| {
            let mut m = std::collections::BTreeMap::new();
            m.insert(brand.clone(), vec![v.to_string()]);
            m
        };
        assert!(tree.matches(&with("Seiko")));
        assert!(tree.matches(&with("Casio")));
        assert!(!tree.matches(&with("Orient")));

        let q = parse("SELECT product WHERE NOT (brand='Seiko' OR price<100)").unwrap();
        let p = plan(&q, &o).unwrap();
        let tree = p.condition.as_ref().unwrap();
        assert!(!tree.matches(&with("Seiko")));
        // No price value present → `price<100` leaf is false → whole OR
        // false → NOT true.
        assert!(tree.matches(&with("Orient")));
    }

    #[test]
    fn syntax_errors() {
        assert!(matches!(parse("WHERE x=1"), Err(S2sError::QuerySyntax { .. })));
        assert!(matches!(parse("SELECT"), Err(S2sError::QuerySyntax { .. })));
        assert!(matches!(parse("SELECT p WHERE"), Err(S2sError::QuerySyntax { .. })));
        assert!(matches!(parse("SELECT p WHERE a"), Err(S2sError::QuerySyntax { .. })));
        assert!(matches!(parse("SELECT p WHERE a='x' extra"), Err(S2sError::QuerySyntax { .. })));
        assert!(matches!(
            parse("SELECT p WHERE a='unterminated"),
            Err(S2sError::QuerySyntax { .. })
        ));
        // FROM is not part of S2SQL.
        assert!(parse("SELECT p FROM t").is_err());
    }

    #[test]
    fn plan_resolves_class_case_insensitively() {
        let o = onto();
        let q = parse("SELECT product").unwrap();
        let p = plan(&q, &o).unwrap();
        assert_eq!(p.class.local_name(), "Product");
    }

    #[test]
    fn plan_output_classes_follow_object_properties() {
        // Paper: "all products have a Provider, and therefore the output
        // classes will be Product, watch, and Provider."
        let o = onto();
        let q = parse("SELECT product").unwrap();
        let p = plan(&q, &o).unwrap();
        let names: Vec<&str> = p.output_classes.iter().map(|c| c.local_name()).collect();
        assert!(names.contains(&"Product"));
        assert!(names.contains(&"Watch"));
        assert!(names.contains(&"Provider"));
        // Transitive: Provider → Country.
        assert!(names.contains(&"Country"));
    }

    #[test]
    fn plan_attribute_list_covers_class_properties() {
        let o = onto();
        let q = parse("SELECT watch").unwrap();
        let p = plan(&q, &o).unwrap();
        let attrs: Vec<String> = p.attributes.iter().map(|a| a.to_string()).collect();
        assert!(attrs.contains(&"thing.product.watch.brand".to_string()), "{attrs:?}");
        assert!(attrs.contains(&"thing.product.watch.case".to_string()));
        assert!(attrs.contains(&"thing.product.watch.price".to_string()));
        assert!(attrs.contains(&"thing.product.watch.provider".to_string()));
    }

    #[test]
    fn plan_rejects_unknown_class_and_attribute() {
        let o = onto();
        let q = parse("SELECT gadget").unwrap();
        assert!(matches!(plan(&q, &o), Err(S2sError::QuerySemantics { .. })));
        let q = parse("SELECT product WHERE nonexistent='x'").unwrap();
        assert!(matches!(plan(&q, &o), Err(S2sError::QuerySemantics { .. })));
        // `case` belongs to Watch, not Product.
        let q = parse("SELECT provider WHERE case='steel'").unwrap();
        assert!(matches!(plan(&q, &o), Err(S2sError::QuerySemantics { .. })));
    }

    #[test]
    fn plan_accepts_dotted_condition_paths() {
        let o = onto();
        let q = parse("SELECT watch WHERE thing.product.watch.case='steel'").unwrap();
        let p = plan(&q, &o).unwrap();
        let tree = p.condition.unwrap();
        assert_eq!(tree.leaves()[0].property.local_name(), "case");
    }

    #[test]
    fn condition_matching_semantics() {
        let c = |op, value: &str| ResolvedCondition {
            property: Iri::new("http://x.org/p").unwrap(),
            op,
            value: value.to_string(),
        };
        assert!(condition_matches(&c(CondOp::Eq, "Seiko"), "Seiko"));
        assert!(!condition_matches(&c(CondOp::Eq, "Seiko"), "seiko"));
        assert!(condition_matches(&c(CondOp::Lt, "100"), "59.5"));
        assert!(!condition_matches(&c(CondOp::Lt, "100"), "129.99"));
        // Numeric compare applies even with different lexemes.
        assert!(condition_matches(&c(CondOp::Eq, "100"), "100.0"));
        assert!(condition_matches(&c(CondOp::Like, "stain%"), "stainless-steel"));
        assert!(condition_matches(&c(CondOp::Ne, "a"), "b"));
        assert!(condition_matches(&c(CondOp::Ge, "59.5"), "59.5"));
    }
}
