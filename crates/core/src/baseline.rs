//! The syntactic-only baseline integrator.
//!
//! The paper's motivation (§1, §5): "most current middleware only covers
//! syntactical integration and it has been recognized that semantics are
//! an indispensable approach to support and enhance integration." To
//! make that comparison measurable (experiment E8), this module
//! implements the alternative: a point-to-point integrator where the
//! developer hand-writes one raw query per source and merges the string
//! results, with no shared ontology, no unit/nomenclature resolution,
//! and no schema alignment.
//!
//! What it shows, quantitatively:
//!
//! * **glue count** — the baseline needs `sources × fields` hand-written
//!   accessors *per consuming query shape*, while S2S registers
//!   `sources × fields` mappings once and serves any S2SQL query;
//! * **heterogeneity errors** — the baseline returns raw, conflicting
//!   representations (e.g. `Seiko` vs `SEIKO-JP`, EUR vs USD) that the
//!   semantic layer's per-source rules normalize at mapping time.

use s2s_netsim::SimDuration;

use crate::error::S2sError;
use crate::extract::extract_one;
use crate::mapping::{AttributeMapping, ExtractionRule, MappingModule, RecordScenario};
use crate::source::{SourceId, SourceRegistry};

/// One hand-written accessor: a raw rule aimed at one source, labelled
/// with whatever field name that source uses.
#[derive(Debug, Clone, PartialEq)]
pub struct GlueRule {
    /// The source to hit.
    pub source: SourceId,
    /// The source's own field label (not aligned with anything).
    pub field: String,
    /// The raw extraction rule.
    pub rule: ExtractionRule,
}

/// A merged record from the baseline: field labels as each source names
/// them, values as each source formats them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawRecord {
    /// `(field label, raw value)` pairs in rule order.
    pub fields: Vec<(String, String)>,
    /// Which source produced it.
    pub source: String,
}

/// The baseline's result: unaligned records plus cost accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BaselineResult {
    /// Records, grouped per source in registration order.
    pub records: Vec<RawRecord>,
    /// Errors encountered (one per failing rule).
    pub errors: Vec<(String, String)>,
    /// Total simulated time (the baseline runs serially — no mediator).
    pub simulated: SimDuration,
}

/// The syntactic integrator.
#[derive(Debug, Clone, Default)]
pub struct SyntacticIntegrator {
    glue: Vec<GlueRule>,
}

impl SyntacticIntegrator {
    /// An integrator with no glue yet.
    pub fn new() -> Self {
        SyntacticIntegrator::default()
    }

    /// Adds a hand-written accessor.
    pub fn add_rule(
        &mut self,
        source: impl Into<SourceId>,
        field: impl Into<String>,
        rule: ExtractionRule,
    ) -> &mut Self {
        self.glue.push(GlueRule { source: source.into(), field: field.into(), rule });
        self
    }

    /// Lines-of-glue proxy: the number of hand-written accessors.
    pub fn glue_count(&self) -> usize {
        self.glue.len()
    }

    /// Runs every accessor and merges results per source by position —
    /// all the alignment a syntactic integrator can do.
    pub fn run(&self, registry: &SourceRegistry) -> BaselineResult {
        let mut result = BaselineResult::default();

        // Group rules per source, preserving order.
        let mut sources: Vec<SourceId> = Vec::new();
        for g in &self.glue {
            if !sources.contains(&g.source) {
                sources.push(g.source.clone());
            }
        }

        for source in sources {
            let rules: Vec<&GlueRule> = self.glue.iter().filter(|g| g.source == source).collect();
            let mut columns: Vec<(String, Vec<String>)> = Vec::new();
            for g in &rules {
                match run_raw(registry, g) {
                    Ok((values, elapsed)) => {
                        result.simulated += elapsed;
                        columns.push((g.field.clone(), values));
                    }
                    Err(e) => {
                        result.errors.push((g.source.to_string(), e.to_string()));
                    }
                }
            }
            let records = columns.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
            for i in 0..records {
                let fields = columns
                    .iter()
                    .filter_map(|(f, v)| v.get(i).map(|x| (f.clone(), x.clone())))
                    .collect();
                result.records.push(RawRecord { fields, source: source.to_string() });
            }
        }
        result
    }
}

/// Runs one glue rule through a throwaway mapping so the same wrappers
/// and endpoints are exercised — the baseline differs in *architecture*
/// (no ontology, no mediation), not in wrapper quality.
fn run_raw(
    registry: &SourceRegistry,
    glue: &GlueRule,
) -> Result<(Vec<String>, SimDuration), S2sError> {
    // A minimal throwaway ontology to host the mapping machinery.
    let onto = s2s_owl::Ontology::builder("http://baseline.invalid/#")
        .class("R", None)?
        .datatype_property("f", "R", s2s_rdf::vocab::xsd::STRING)?
        .build()?;
    let mut module = MappingModule::new();
    module.register(
        &onto,
        "thing.r.f".parse().map_err(S2sError::Owl)?,
        glue.rule.clone(),
        glue.source.clone(),
        RecordScenario::MultiRecord,
    )?;
    let mapping: &AttributeMapping = module.iter().next().expect("just registered");
    extract_one(registry, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Connection;
    use s2s_minidb::Database;
    use std::sync::Arc;

    fn registry() -> SourceRegistry {
        let mut db1 = Database::new("org1");
        db1.execute("CREATE TABLE products (pid INTEGER PRIMARY KEY, brand TEXT, price_usd REAL)")
            .unwrap();
        db1.execute("INSERT INTO products VALUES (1,'Seiko',129.99)").unwrap();

        let mut db2 = Database::new("org2");
        db2.execute("CREATE TABLE artikel (nr INTEGER PRIMARY KEY, marke TEXT, preis_eur REAL)")
            .unwrap();
        db2.execute("INSERT INTO artikel VALUES (7,'SEIKO-JP',118.5)").unwrap();

        let mut r = SourceRegistry::new();
        r.register_local("ORG1", Connection::Database { db: Arc::new(db1) }).unwrap();
        r.register_local("ORG2", Connection::Database { db: Arc::new(db2) }).unwrap();
        r
    }

    #[test]
    fn baseline_returns_conflicting_raw_fields() {
        let r = registry();
        let mut b = SyntacticIntegrator::new();
        b.add_rule(
            "ORG1",
            "brand",
            ExtractionRule::Sql {
                query: "SELECT brand FROM products".into(),
                column: "brand".into(),
            },
        );
        b.add_rule(
            "ORG2",
            "marke",
            ExtractionRule::Sql {
                query: "SELECT marke FROM artikel".into(),
                column: "marke".into(),
            },
        );
        let out = b.run(&r);
        assert_eq!(out.records.len(), 2);
        // The baseline exposes the heterogeneity: same manufacturer, two
        // labels, two field names.
        let values: Vec<&str> = out.records.iter().map(|rec| rec.fields[0].1.as_str()).collect();
        assert!(values.contains(&"Seiko"));
        assert!(values.contains(&"SEIKO-JP"));
        let fields: Vec<&str> = out.records.iter().map(|rec| rec.fields[0].0.as_str()).collect();
        assert!(fields.contains(&"brand"));
        assert!(fields.contains(&"marke"));
    }

    #[test]
    fn glue_count_scales_with_sources_times_fields() {
        let mut b = SyntacticIntegrator::new();
        for src in ["ORG1", "ORG2", "ORG3"] {
            for field in ["brand", "price", "case"] {
                b.add_rule(
                    src,
                    field,
                    ExtractionRule::Sql { query: "SELECT 1".into(), column: "x".into() },
                );
            }
        }
        assert_eq!(b.glue_count(), 9);
    }

    #[test]
    fn per_source_positional_merge() {
        let r = registry();
        let mut b = SyntacticIntegrator::new();
        b.add_rule(
            "ORG1",
            "brand",
            ExtractionRule::Sql {
                query: "SELECT brand FROM products".into(),
                column: "brand".into(),
            },
        );
        b.add_rule(
            "ORG1",
            "price_usd",
            ExtractionRule::Sql {
                query: "SELECT price_usd FROM products".into(),
                column: "price_usd".into(),
            },
        );
        let out = b.run(&r);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].fields.len(), 2);
    }

    #[test]
    fn errors_recorded_not_fatal() {
        let r = registry();
        let mut b = SyntacticIntegrator::new();
        b.add_rule(
            "ORG1",
            "bad",
            ExtractionRule::Sql {
                query: "SELECT nope FROM products".into(),
                column: "nope".into(),
            },
        );
        b.add_rule(
            "ORG1",
            "brand",
            ExtractionRule::Sql {
                query: "SELECT brand FROM products".into(),
                column: "brand".into(),
            },
        );
        let out = b.run(&r);
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.records.len(), 1);
    }
}
