//! The middleware error type.

use std::error::Error;
use std::fmt;

use s2s_minidb::DbError;
use s2s_netsim::NetError;
use s2s_owl::OwlError;
use s2s_rdf::RdfError;
use s2s_webdoc::WebdocError;
use s2s_xml::XmlError;

/// Whether a failed operation could plausibly succeed if repeated.
///
/// Drives the resilience layer: transient failures are worth a retry
/// or a failover to a replica; permanent ones (bad rules, missing
/// columns, protocol bugs) would fail identically everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// A retry or a different replica could succeed.
    Transient,
    /// Retrying the same operation cannot help.
    Permanent,
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureClass::Transient => "transient",
            FailureClass::Permanent => "permanent",
        })
    }
}

/// An error produced by the S2S middleware.
#[derive(Debug, Clone, PartialEq)]
pub enum S2sError {
    /// A data source id is not registered.
    UnknownSource {
        /// The id as given.
        id: String,
    },
    /// A source id was registered twice.
    DuplicateSource {
        /// The id.
        id: String,
    },
    /// A source mutation tried to swap the connection for one of a
    /// different kind (e.g. replacing a database with a web page),
    /// which would silently orphan every mapped extraction rule.
    MutationKindMismatch {
        /// The mutated source.
        id: String,
        /// The registered source kind.
        expected: String,
        /// The kind of the replacement connection.
        actual: String,
    },
    /// An attribute path has no mapping.
    UnmappedAttribute {
        /// The path text.
        attribute: String,
    },
    /// An extraction rule does not fit the source type (e.g. SQL rule on
    /// a web page).
    RuleSourceMismatch {
        /// The attribute being mapped.
        attribute: String,
        /// Explanation.
        message: String,
    },
    /// S2SQL syntax error.
    QuerySyntax {
        /// Byte position.
        position: usize,
        /// Description.
        message: String,
    },
    /// The query references an unknown class or attribute.
    QuerySemantics {
        /// Description.
        message: String,
    },
    /// An ontology-layer error.
    Owl(OwlError),
    /// An RDF-layer error.
    Rdf(RdfError),
    /// A database error during extraction.
    Db(DbError),
    /// An XML error during extraction.
    Xml(XmlError),
    /// A web/WebL error during extraction.
    Webdoc(WebdocError),
    /// A simulated network failure.
    Net(NetError),
    /// The circuit breaker for a source is open: every endpoint was
    /// rejected without being called.
    CircuitOpen {
        /// The source whose endpoints are gated.
        source: String,
    },
    /// The query's deadline budget ran out while this source's exchange
    /// was still in flight (possibly mid-backoff). The partial answer is
    /// returned degraded; nothing further is attempted for the source.
    DeadlineExceeded {
        /// The source whose exchange exhausted the budget.
        source: String,
    },
    /// Automatic mapping bootstrap failed for a source (empty schema,
    /// non-HTML web page, resolving a field that has no conflict, …).
    Bootstrap {
        /// The source being bootstrapped.
        source: String,
        /// Description.
        message: String,
    },
}

impl S2sError {
    /// Classifies the failure for the resilience layer.
    ///
    /// Transient: injected network failures a retry could dodge
    /// ([`NetError::is_transient`]) and open circuit breakers (a later
    /// call after the cooldown may be admitted). Everything else —
    /// wrapper errors, bad rules, unknown sources, protocol bugs — is
    /// permanent: replicas hold the same data and would fail the same
    /// way. An exhausted deadline budget is also permanent: the budget
    /// is gone, so neither a retry nor a replica can fit inside it.
    pub fn failure_class(&self) -> FailureClass {
        match self {
            S2sError::Net(e) if e.is_transient() => FailureClass::Transient,
            S2sError::CircuitOpen { .. } => FailureClass::Transient,
            _ => FailureClass::Permanent,
        }
    }

    /// A stable machine-readable diagnostic code, `s2s::` namespaced —
    /// the miette `#[diagnostic(code(...))]` convention without the
    /// dependency. Codes are part of the public contract: tools may
    /// match on them, so they never change meaning.
    pub fn code(&self) -> &'static str {
        match self {
            S2sError::UnknownSource { .. } => "s2s::source::unknown",
            S2sError::DuplicateSource { .. } => "s2s::source::duplicate",
            S2sError::MutationKindMismatch { .. } => "s2s::source::kind_mismatch",
            S2sError::UnmappedAttribute { .. } => "s2s::mapping::unmapped_attribute",
            S2sError::RuleSourceMismatch { .. } => "s2s::mapping::rule_source_mismatch",
            S2sError::QuerySyntax { .. } => "s2s::query::syntax",
            S2sError::QuerySemantics { .. } => "s2s::query::semantics",
            S2sError::Owl(_) => "s2s::owl",
            S2sError::Rdf(_) => "s2s::rdf",
            S2sError::Db(_) => "s2s::db",
            S2sError::Xml(_) => "s2s::xml",
            S2sError::Webdoc(_) => "s2s::webdoc",
            S2sError::Net(_) => "s2s::net",
            S2sError::CircuitOpen { .. } => "s2s::resilience::circuit_open",
            S2sError::DeadlineExceeded { .. } => "s2s::resilience::deadline_exceeded",
            S2sError::Bootstrap { .. } => "s2s::bootstrap::failed",
        }
    }

    /// Actionable help text for the diagnostic, when the error has a
    /// standard remedy — the miette `#[diagnostic(help(...))]`
    /// convention without the dependency.
    pub fn help(&self) -> Option<&'static str> {
        match self {
            S2sError::UnknownSource { .. } => {
                Some("register the source first with S2s::register_source")
            }
            S2sError::UnmappedAttribute { .. } => Some(
                "map the attribute with S2s::register_attribute, or bootstrap the source's \
                 schema with S2s::register_bootstrapped",
            ),
            S2sError::RuleSourceMismatch { .. } => Some(
                "match the rule kind to the source kind: Sql for databases, XPath/XQuery for \
                 XML, Webl for web pages, TextRegex for text files",
            ),
            S2sError::Bootstrap { .. } => Some(
                "inspect the BootstrapReport's conflicts; resolve ambiguous fields with \
                 BootstrapReport::resolve or add mappings with BootstrapReport::add_override",
            ),
            _ => None,
        }
    }
}

impl fmt::Display for S2sError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S2sError::UnknownSource { id } => write!(f, "unknown data source `{id}`"),
            S2sError::DuplicateSource { id } => write!(f, "data source `{id}` already registered"),
            S2sError::MutationKindMismatch { id, expected, actual } => {
                write!(f, "mutation of `{id}` must keep kind {expected}, got {actual}")
            }
            S2sError::UnmappedAttribute { attribute } => {
                write!(f, "attribute `{attribute}` has no mapping")
            }
            S2sError::RuleSourceMismatch { attribute, message } => {
                write!(f, "rule/source mismatch for `{attribute}`: {message}")
            }
            S2sError::QuerySyntax { position, message } => {
                write!(f, "s2sql syntax error at byte {position}: {message}")
            }
            S2sError::QuerySemantics { message } => write!(f, "s2sql semantic error: {message}"),
            S2sError::Owl(e) => write!(f, "ontology error: {e}"),
            S2sError::Rdf(e) => write!(f, "rdf error: {e}"),
            S2sError::Db(e) => write!(f, "database error: {e}"),
            S2sError::Xml(e) => write!(f, "xml error: {e}"),
            S2sError::Webdoc(e) => write!(f, "web error: {e}"),
            S2sError::Net(e) => write!(f, "network error: {e}"),
            S2sError::CircuitOpen { source } => {
                write!(f, "circuit breaker open for source `{source}`")
            }
            S2sError::DeadlineExceeded { source } => {
                write!(f, "deadline budget exhausted during exchange with source `{source}`")
            }
            S2sError::Bootstrap { source, message } => {
                write!(f, "bootstrap failed for source `{source}`: {message}")
            }
        }
    }
}

impl Error for S2sError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            S2sError::Owl(e) => Some(e),
            S2sError::Rdf(e) => Some(e),
            S2sError::Db(e) => Some(e),
            S2sError::Xml(e) => Some(e),
            S2sError::Webdoc(e) => Some(e),
            S2sError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OwlError> for S2sError {
    fn from(e: OwlError) -> Self {
        S2sError::Owl(e)
    }
}

impl From<RdfError> for S2sError {
    fn from(e: RdfError) -> Self {
        S2sError::Rdf(e)
    }
}

impl From<DbError> for S2sError {
    fn from(e: DbError) -> Self {
        S2sError::Db(e)
    }
}

impl From<XmlError> for S2sError {
    fn from(e: XmlError) -> Self {
        S2sError::Xml(e)
    }
}

impl From<WebdocError> for S2sError {
    fn from(e: WebdocError) -> Self {
        S2sError::Webdoc(e)
    }
}

impl From<NetError> for S2sError {
    fn from(e: NetError) -> Self {
        S2sError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_failures_classify_transient() {
        let unreachable = S2sError::Net(NetError::Unreachable { endpoint: "e".into() });
        let timeout = S2sError::Net(NetError::Timeout { endpoint: "e".into(), timeout_us: 1 });
        assert_eq!(unreachable.failure_class(), FailureClass::Transient);
        assert_eq!(timeout.failure_class(), FailureClass::Transient);
        let open = S2sError::CircuitOpen { source: "s".into() };
        assert_eq!(open.failure_class(), FailureClass::Transient);
    }

    #[test]
    fn logic_failures_classify_permanent() {
        let bad_frame = S2sError::Net(NetError::BadFrame { message: "m".into() });
        assert_eq!(bad_frame.failure_class(), FailureClass::Permanent);
        let unknown = S2sError::UnknownSource { id: "x".into() };
        assert_eq!(unknown.failure_class(), FailureClass::Permanent);
        let unmapped = S2sError::UnmappedAttribute { attribute: "a.b".into() };
        assert_eq!(unmapped.failure_class(), FailureClass::Permanent);
        let expired = S2sError::DeadlineExceeded { source: "x".into() };
        assert_eq!(expired.failure_class(), FailureClass::Permanent);
        let bootstrap = S2sError::Bootstrap { source: "x".into(), message: "m".into() };
        assert_eq!(bootstrap.failure_class(), FailureClass::Permanent);
    }

    #[test]
    fn diagnostics_carry_stable_codes_and_help() {
        let bootstrap = S2sError::Bootstrap { source: "DB".into(), message: "empty".into() };
        assert_eq!(bootstrap.code(), "s2s::bootstrap::failed");
        assert!(bootstrap.help().unwrap().contains("BootstrapReport::resolve"));

        let unmapped = S2sError::UnmappedAttribute { attribute: "thing.x".into() };
        assert_eq!(unmapped.code(), "s2s::mapping::unmapped_attribute");
        assert!(unmapped.help().unwrap().contains("register_bootstrapped"));

        // Errors without a standard remedy have a code but no help.
        let net = S2sError::Net(NetError::BadFrame { message: "m".into() });
        assert_eq!(net.code(), "s2s::net");
        assert!(net.help().is_none());
    }
}
