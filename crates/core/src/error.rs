//! The middleware error type.

use std::error::Error;
use std::fmt;

use s2s_minidb::DbError;
use s2s_netsim::NetError;
use s2s_owl::OwlError;
use s2s_rdf::RdfError;
use s2s_webdoc::WebdocError;
use s2s_xml::XmlError;

/// An error produced by the S2S middleware.
#[derive(Debug, Clone, PartialEq)]
pub enum S2sError {
    /// A data source id is not registered.
    UnknownSource {
        /// The id as given.
        id: String,
    },
    /// A source id was registered twice.
    DuplicateSource {
        /// The id.
        id: String,
    },
    /// An attribute path has no mapping.
    UnmappedAttribute {
        /// The path text.
        attribute: String,
    },
    /// An extraction rule does not fit the source type (e.g. SQL rule on
    /// a web page).
    RuleSourceMismatch {
        /// The attribute being mapped.
        attribute: String,
        /// Explanation.
        message: String,
    },
    /// S2SQL syntax error.
    QuerySyntax {
        /// Byte position.
        position: usize,
        /// Description.
        message: String,
    },
    /// The query references an unknown class or attribute.
    QuerySemantics {
        /// Description.
        message: String,
    },
    /// An ontology-layer error.
    Owl(OwlError),
    /// An RDF-layer error.
    Rdf(RdfError),
    /// A database error during extraction.
    Db(DbError),
    /// An XML error during extraction.
    Xml(XmlError),
    /// A web/WebL error during extraction.
    Webdoc(WebdocError),
    /// A simulated network failure.
    Net(NetError),
}

impl fmt::Display for S2sError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S2sError::UnknownSource { id } => write!(f, "unknown data source `{id}`"),
            S2sError::DuplicateSource { id } => write!(f, "data source `{id}` already registered"),
            S2sError::UnmappedAttribute { attribute } => {
                write!(f, "attribute `{attribute}` has no mapping")
            }
            S2sError::RuleSourceMismatch { attribute, message } => {
                write!(f, "rule/source mismatch for `{attribute}`: {message}")
            }
            S2sError::QuerySyntax { position, message } => {
                write!(f, "s2sql syntax error at byte {position}: {message}")
            }
            S2sError::QuerySemantics { message } => write!(f, "s2sql semantic error: {message}"),
            S2sError::Owl(e) => write!(f, "ontology error: {e}"),
            S2sError::Rdf(e) => write!(f, "rdf error: {e}"),
            S2sError::Db(e) => write!(f, "database error: {e}"),
            S2sError::Xml(e) => write!(f, "xml error: {e}"),
            S2sError::Webdoc(e) => write!(f, "web error: {e}"),
            S2sError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for S2sError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            S2sError::Owl(e) => Some(e),
            S2sError::Rdf(e) => Some(e),
            S2sError::Db(e) => Some(e),
            S2sError::Xml(e) => Some(e),
            S2sError::Webdoc(e) => Some(e),
            S2sError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OwlError> for S2sError {
    fn from(e: OwlError) -> Self {
        S2sError::Owl(e)
    }
}

impl From<RdfError> for S2sError {
    fn from(e: RdfError) -> Self {
        S2sError::Rdf(e)
    }
}

impl From<DbError> for S2sError {
    fn from(e: DbError) -> Self {
        S2sError::Db(e)
    }
}

impl From<XmlError> for S2sError {
    fn from(e: XmlError) -> Self {
        S2sError::Xml(e)
    }
}

impl From<WebdocError> for S2sError {
    fn from(e: WebdocError) -> Self {
        S2sError::Webdoc(e)
    }
}

impl From<NetError> for S2sError {
    fn from(e: NetError) -> Self {
        S2sError::Net(e)
    }
}
