//! Compiled-rule cache.
//!
//! `run_wrapper` used to recompile its extraction rule on every call:
//! the regex NFA, the XPath/XQuery parse, the WebL program, and the SQL
//! statement were all rebuilt per task, per query. Mappings are stable
//! (the paper: they "should not need substantial maintenance after
//! being created"), so the compiled form is reusable forever.
//! [`RuleCache`] memoizes it per distinct `(language, rule text)` and
//! is shared across tasks and queries via the middleware, exactly like
//! [`crate::cache::ExtractionCache`] shares extracted values.
//!
//! Only successful compiles are cached: a malformed rule re-reports its
//! error on every use instead of poisoning the cache.
//!
//! Like the extraction cache, the map is LRU-bounded
//! ([`RuleCache::with_capacity`], default [`RuleCache::DEFAULT_CAPACITY`])
//! so a resident engine cannot grow it without bound; evictions are
//! counted and exported.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use s2s_minidb::{Database, SelectStmt};
use s2s_textmatch::Regex;
use s2s_webdoc::WeblProgram;
use s2s_xml::xpath::XPath;
use s2s_xml::xquery::XQuery;

use crate::cache::CacheStats;
use crate::error::S2sError;
use crate::mapping::ExtractionRule;

/// A rule compiled to its executable form. Variants are `Arc`-shared so
/// a cache hit is a pointer clone.
#[derive(Debug, Clone)]
pub enum CompiledRule {
    /// A parsed SQL SELECT (column projection happens at execution).
    Sql(Arc<SelectStmt>),
    /// A parsed XPath expression.
    XPath(Arc<XPath>),
    /// A parsed XQuery FLWOR expression.
    XQuery(Arc<XQuery>),
    /// A parsed WebL program.
    Webl(Arc<WeblProgram>),
    /// A compiled regular expression (the capture group index lives in
    /// the mapping, not here).
    Regex(Arc<Regex>),
}

#[derive(Debug)]
struct Entry {
    rule: CompiledRule,
    stamp: AtomicU64,
}

/// A concurrent, LRU-bounded memo of compiled extraction rules.
#[derive(Debug)]
pub struct RuleCache {
    compiled: RwLock<HashMap<(&'static str, String), Entry>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for RuleCache {
    fn default() -> Self {
        RuleCache::new()
    }
}

impl RuleCache {
    /// Default LRU capacity (distinct `(language, text)` rules).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        RuleCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` compiled rules (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        RuleCache {
            compiled: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The LRU capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the compiled form of `rule`, compiling on first sight.
    ///
    /// # Errors
    ///
    /// Propagates the rule's own parse/compile error ([`S2sError::Db`],
    /// XML, WebL, or regex errors).
    pub fn get_or_compile(&self, rule: &ExtractionRule) -> Result<CompiledRule, S2sError> {
        let key = (rule.language(), rule.text().to_string());
        if let Some(hit) = self.compiled.read().get(&key) {
            hit.stamp.store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            if s2s_obs::enabled() {
                s2s_obs::global().counter("s2s_rule_cache_hits_total").inc();
            }
            return Ok(hit.rule.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if s2s_obs::enabled() {
            s2s_obs::global().counter("s2s_rule_cache_misses_total").inc();
        }
        let compiled = compile(rule)?;
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.compiled.write();
        // A racing compile of the same rule is harmless: keep the first.
        if !entries.contains_key(&key) {
            if entries.len() >= self.capacity {
                crate::cache::evict_lru(&mut entries, |e| &e.stamp);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if s2s_obs::enabled() {
                    s2s_obs::global().counter(s2s_obs::names::RULE_CACHE_EVICTIONS_TOTAL).inc();
                }
            }
            entries.insert(key, Entry { rule: compiled.clone(), stamp: AtomicU64::new(stamp) });
        }
        Ok(compiled)
    }

    /// Number of distinct compiled rules held.
    pub fn len(&self) -> usize {
        self.compiled.read().len()
    }

    /// Whether the cache holds no compiled rules.
    pub fn is_empty(&self) -> bool {
        self.compiled.read().is_empty()
    }

    /// Drops every compiled rule.
    pub fn clear(&self) {
        self.compiled.write().clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

fn compile(rule: &ExtractionRule) -> Result<CompiledRule, S2sError> {
    match rule {
        ExtractionRule::Sql { query, .. } => {
            Ok(CompiledRule::Sql(Arc::new(Database::prepare_select(query)?)))
        }
        ExtractionRule::XPath { path } => Ok(CompiledRule::XPath(Arc::new(XPath::new(path)?))),
        ExtractionRule::XQuery { query } => Ok(CompiledRule::XQuery(Arc::new(XQuery::new(query)?))),
        ExtractionRule::Webl { program } => {
            Ok(CompiledRule::Webl(Arc::new(WeblProgram::parse(program)?)))
        }
        ExtractionRule::TextRegex { pattern, .. } => {
            let re = Regex::new(pattern).map_err(|e| {
                S2sError::Webdoc(s2s_webdoc::WebdocError::BadRegex {
                    pattern: pattern.clone(),
                    message: e.to_string(),
                })
            })?;
            Ok(CompiledRule::Regex(Arc::new(re)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_compiles_hit() {
        let cache = RuleCache::new();
        let rule = ExtractionRule::XPath { path: "//w/brand/text()".into() };
        assert!(cache.get_or_compile(&rule).is_ok());
        assert!(cache.get_or_compile(&rule).is_ok());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_rules_do_not_collide() {
        let cache = RuleCache::new();
        cache
            .get_or_compile(&ExtractionRule::TextRegex { pattern: "a+".into(), group: 0 })
            .unwrap();
        cache
            .get_or_compile(&ExtractionRule::TextRegex { pattern: "b+".into(), group: 0 })
            .unwrap();
        // Same pattern, different group: the compiled regex is shared.
        cache
            .get_or_compile(&ExtractionRule::TextRegex { pattern: "a+".into(), group: 1 })
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2, evictions: 0 });
    }

    #[test]
    fn bad_rules_error_every_time_and_are_never_cached() {
        let cache = RuleCache::new();
        let bad = ExtractionRule::Sql { query: "DROP TABLE t".into(), column: "c".into() };
        assert!(cache.get_or_compile(&bad).is_err());
        assert!(cache.get_or_compile(&bad).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn sql_compiles_to_prepared_select() {
        let cache = RuleCache::new();
        let rule = ExtractionRule::Sql { query: "SELECT a FROM t".into(), column: "a".into() };
        match cache.get_or_compile(&rule).unwrap() {
            CompiledRule::Sql(stmt) => assert_eq!(stmt.table, "t"),
            other => panic!("expected Sql, got {other:?}"),
        }
    }

    #[test]
    fn clear_empties() {
        let cache = RuleCache::new();
        cache.get_or_compile(&ExtractionRule::XPath { path: "//x".into() }).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = RuleCache::with_capacity(2);
        let (a, b, c) = (
            ExtractionRule::XPath { path: "//a".into() },
            ExtractionRule::XPath { path: "//b".into() },
            ExtractionRule::XPath { path: "//c".into() },
        );
        cache.get_or_compile(&a).unwrap();
        cache.get_or_compile(&b).unwrap();
        // Touch `a`; compiling `c` must evict `b`.
        cache.get_or_compile(&a).unwrap();
        cache.get_or_compile(&c).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let before = cache.stats();
        cache.get_or_compile(&a).unwrap();
        cache.get_or_compile(&b).unwrap(); // recompiles: it was evicted
        let after = cache.stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
    }
}
