//! Data sources and the source registry.
//!
//! Paper §2.3.2: "Registering data sources separately from the
//! extraction rules is useful to create a centralized connection
//! information store, allowing reuse and preventing information
//! redundancy." Source ids follow the paper's style: `DB_ID_45`,
//! `wpage_81`.

use std::collections::BTreeMap;
use std::sync::Arc;

use s2s_minidb::Database;
use s2s_netsim::feed::{ChangeEvent, ChangeFeed, ChangeKind, FeedGap};
use s2s_netsim::{CostModel, Endpoint, FailureModel, FaultSchedule};
use s2s_webdoc::WebStore;
use s2s_xml::Document;

use crate::error::S2sError;

/// A data source identifier (paper style: `DB_ID_45`, `wpage_81`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(String);

impl SourceId {
    /// Wraps an id string.
    pub fn new(id: impl Into<String>) -> Self {
        SourceId(id.into())
    }

    /// The id text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SourceId {
    fn from(s: &str) -> Self {
        SourceId::new(s)
    }
}

/// The taxonomy of §2.1: structured, semi-structured, unstructured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SourceKind {
    /// A relational database (structured).
    Database,
    /// An XML document (semi-structured).
    Xml,
    /// A web page (unstructured).
    WebPage,
    /// A plain-text file (unstructured).
    TextFile,
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SourceKind::Database => "database",
            SourceKind::Xml => "xml",
            SourceKind::WebPage => "web-page",
            SourceKind::TextFile => "text-file",
        })
    }
}

/// Connection information per source type (paper §2.3.2: "Web pages
/// require URLs, files require paths, and databases require location,
/// login, password, and driver type").
#[derive(Debug, Clone)]
pub enum Connection {
    /// A database handle (stands in for location/login/driver).
    Database {
        /// The database snapshot queried by extraction rules.
        db: Arc<Database>,
    },
    /// A parsed XML document (stands in for a stream URL/path).
    Xml {
        /// The document.
        document: Arc<Document>,
    },
    /// A URL into the simulated web.
    Web {
        /// The web store holding the page.
        store: Arc<WebStore>,
        /// The page URL.
        url: String,
    },
    /// A plain-text file addressed by URL/path in the store.
    Text {
        /// The store holding the file.
        store: Arc<WebStore>,
        /// The file path/URL.
        url: String,
    },
}

impl Connection {
    /// The source kind this connection serves.
    pub fn kind(&self) -> SourceKind {
        match self {
            Connection::Database { .. } => SourceKind::Database,
            Connection::Xml { .. } => SourceKind::Xml,
            Connection::Web { .. } => SourceKind::WebPage,
            Connection::Text { .. } => SourceKind::TextFile,
        }
    }
}

/// A registered source: connection plus its (possibly remote) endpoint
/// and any replica endpoints serving the same data.
#[derive(Debug, Clone)]
pub struct RegisteredSource {
    id: SourceId,
    connection: Connection,
    endpoint: Arc<Endpoint>,
    replicas: Vec<Arc<Endpoint>>,
    feed: ChangeFeed,
}

impl RegisteredSource {
    /// The source id.
    pub fn id(&self) -> &SourceId {
        &self.id
    }

    /// The connection information.
    pub fn connection(&self) -> &Connection {
        &self.connection
    }

    /// The primary network endpoint fronting the source.
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.endpoint
    }

    /// Replica endpoints, in failover order (may be empty).
    pub fn replicas(&self) -> &[Arc<Endpoint>] {
        &self.replicas
    }

    /// Primary endpoint followed by the replicas — the failover order.
    pub fn endpoints(&self) -> impl Iterator<Item = &Arc<Endpoint>> {
        std::iter::once(&self.endpoint).chain(self.replicas.iter())
    }

    /// The source kind.
    pub fn kind(&self) -> SourceKind {
        self.connection.kind()
    }

    /// The monotone data version of this source (0 = never mutated).
    pub fn version(&self) -> u64 {
        self.feed.version()
    }

    /// The source's mutation log (what changed since version N).
    pub fn feed(&self) -> &ChangeFeed {
        &self.feed
    }
}

/// The centralized connection-information store.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use s2s_core::source::{Connection, SourceRegistry};
/// use s2s_minidb::Database;
///
/// # fn main() -> Result<(), s2s_core::S2sError> {
/// let mut db = Database::new("catalog");
/// db.execute("CREATE TABLE w (id INTEGER PRIMARY KEY)").unwrap();
/// let mut registry = SourceRegistry::new();
/// registry.register_local("DB_ID_45", Connection::Database { db: Arc::new(db) })?;
/// assert!(registry.get(&"DB_ID_45".into()).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SourceRegistry {
    sources: BTreeMap<SourceId, RegisteredSource>,
}

impl SourceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SourceRegistry::default()
    }

    /// Registers a local source (no network cost, never fails).
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::DuplicateSource`] if the id is taken.
    pub fn register_local(
        &mut self,
        id: impl Into<SourceId>,
        connection: Connection,
    ) -> Result<(), S2sError> {
        let id = id.into();
        let endpoint = Arc::new(Endpoint::new(
            id.as_str(),
            CostModel::instant(),
            FailureModel::reliable(),
            stable_seed(id.as_str()),
        ));
        self.insert(id, connection, endpoint)
    }

    /// Registers a remote source behind a simulated endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::DuplicateSource`] if the id is taken.
    pub fn register_remote(
        &mut self,
        id: impl Into<SourceId>,
        connection: Connection,
        cost: CostModel,
        failure: FailureModel,
    ) -> Result<(), S2sError> {
        let id = id.into();
        let endpoint =
            Arc::new(Endpoint::new(id.as_str(), cost, failure, stable_seed(id.as_str())));
        self.insert(id, connection, endpoint)
    }

    /// Registers a remote source with full control over the endpoint's
    /// determinism: an explicit RNG seed (`None` falls back to the
    /// id-derived [`stable_seed`]) and a scripted [`FaultSchedule`].
    /// This is the hook conformance tests use to vary endpoint
    /// randomness and force faults independently of source ids.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::DuplicateSource`] if the id is taken.
    pub fn register_remote_detailed(
        &mut self,
        id: impl Into<SourceId>,
        connection: Connection,
        cost: CostModel,
        failure: FailureModel,
        seed: Option<u64>,
        schedule: FaultSchedule,
    ) -> Result<(), S2sError> {
        let id = id.into();
        let seed = seed.unwrap_or_else(|| stable_seed(id.as_str()));
        let endpoint =
            Arc::new(Endpoint::new(id.as_str(), cost, failure, seed).with_schedule(schedule));
        self.insert(id, connection, endpoint)
    }

    /// Registers a remote source with replica endpoints: the primary
    /// uses `failure`, each entry of `replicas` adds one more endpoint
    /// (id `"<id>#r<k>"`, same cost model, its own failure model and
    /// deterministic seed) serving the same connection. The resilience
    /// layer fails over along this list.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::DuplicateSource`] if the id is taken.
    pub fn register_remote_with_replicas(
        &mut self,
        id: impl Into<SourceId>,
        connection: Connection,
        cost: CostModel,
        failure: FailureModel,
        replicas: &[FailureModel],
    ) -> Result<(), S2sError> {
        let id = id.into();
        self.register_remote(id.clone(), connection, cost, failure)?;
        for replica in replicas {
            self.add_replica(&id, *replica)?;
        }
        Ok(())
    }

    /// Appends one replica endpoint to an already registered source,
    /// reusing the primary's cost model.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::UnknownSource`] if `id` is not registered.
    pub fn add_replica(&mut self, id: &SourceId, failure: FailureModel) -> Result<(), S2sError> {
        let source = self
            .sources
            .get_mut(id)
            .ok_or_else(|| S2sError::UnknownSource { id: id.as_str().to_string() })?;
        let replica_id = format!("{}#r{}", id.as_str(), source.replicas.len() + 1);
        let cost = *source.endpoint.cost_model();
        source.replicas.push(Arc::new(Endpoint::new(
            replica_id.as_str(),
            cost,
            failure,
            stable_seed(&replica_id),
        )));
        Ok(())
    }

    fn insert(
        &mut self,
        id: SourceId,
        connection: Connection,
        endpoint: Arc<Endpoint>,
    ) -> Result<(), S2sError> {
        if self.sources.contains_key(&id) {
            return Err(S2sError::DuplicateSource { id: id.as_str().to_string() });
        }
        self.sources.insert(
            id.clone(),
            RegisteredSource {
                id,
                connection,
                endpoint,
                replicas: Vec::new(),
                feed: ChangeFeed::new(),
            },
        );
        Ok(())
    }

    /// Applies a data mutation: swaps the source's immutable connection
    /// snapshot for the mutated one, bumps the monotone version, and
    /// records a [`ChangeEvent`] on the source's feed. `fields` names
    /// the source-side columns/elements the mutation touched (empty =
    /// potentially everything). Returns the new version.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::UnknownSource`] if `id` is not registered and
    /// [`S2sError::MutationKindMismatch`] if the replacement connection
    /// has a different kind than the registered one.
    pub fn apply_mutation(
        &mut self,
        id: &SourceId,
        connection: Connection,
        kind: ChangeKind,
        fields: Vec<String>,
    ) -> Result<u64, S2sError> {
        let source = self
            .sources
            .get_mut(id)
            .ok_or_else(|| S2sError::UnknownSource { id: id.as_str().to_string() })?;
        if connection.kind() != source.connection.kind() {
            return Err(S2sError::MutationKindMismatch {
                id: id.as_str().to_string(),
                expected: source.connection.kind().to_string(),
                actual: connection.kind().to_string(),
            });
        }
        source.connection = connection;
        Ok(source.feed.record(kind, fields))
    }

    /// The current data version of a source, if registered.
    pub fn version_of(&self, id: &SourceId) -> Option<u64> {
        self.sources.get(id).map(|s| s.feed.version())
    }

    /// Polls a source's change feed: every event after `since`.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::UnknownSource`] for unregistered ids; the
    /// inner `Err(FeedGap)` means `since` predates retained history and
    /// only a full refresh is sound.
    pub fn poll_changes(
        &self,
        id: &SourceId,
        since: u64,
    ) -> Result<Result<Vec<ChangeEvent>, FeedGap>, S2sError> {
        Ok(self.require(id)?.feed.poll_changes(since))
    }

    /// Looks up a source definition (paper §2.4.2 "Obtain Data Source
    /// Definition").
    pub fn get(&self, id: &SourceId) -> Option<&RegisteredSource> {
        self.sources.get(id)
    }

    /// Like [`SourceRegistry::get`] but with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::UnknownSource`] when absent.
    pub fn require(&self, id: &SourceId) -> Result<&RegisteredSource, S2sError> {
        self.get(id).ok_or_else(|| S2sError::UnknownSource { id: id.as_str().to_string() })
    }

    /// Iterates over all sources in id order.
    pub fn iter(&self) -> impl Iterator<Item = &RegisteredSource> {
        self.sources.values()
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

/// Deterministic seed from a source id (FNV-1a), so endpoint behaviour
/// is stable across runs without global state. Public so tests and the
/// conformance harness can log or reproduce the exact seed a
/// registration derived.
pub fn stable_seed(id: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_conn() -> Connection {
        let mut db = Database::new("d");
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        Connection::Database { db: Arc::new(db) }
    }

    #[test]
    fn register_and_lookup() {
        let mut r = SourceRegistry::new();
        r.register_local("DB_ID_45", db_conn()).unwrap();
        let s = r.get(&"DB_ID_45".into()).unwrap();
        assert_eq!(s.kind(), SourceKind::Database);
        assert_eq!(s.id().as_str(), "DB_ID_45");
        assert!(r.require(&"DB_ID_45".into()).is_ok());
    }

    #[test]
    fn duplicate_rejected() {
        let mut r = SourceRegistry::new();
        r.register_local("X", db_conn()).unwrap();
        assert!(matches!(r.register_local("X", db_conn()), Err(S2sError::DuplicateSource { .. })));
    }

    #[test]
    fn unknown_source_error() {
        let r = SourceRegistry::new();
        assert!(matches!(r.require(&"nope".into()), Err(S2sError::UnknownSource { .. })));
    }

    #[test]
    fn kinds_cover_taxonomy() {
        let store = Arc::new(WebStore::new());
        let doc = Arc::new(s2s_xml::parse("<a/>").unwrap());
        assert_eq!(db_conn().kind(), SourceKind::Database);
        assert_eq!(Connection::Xml { document: doc }.kind(), SourceKind::Xml);
        assert_eq!(
            Connection::Web { store: store.clone(), url: "http://x".into() }.kind(),
            SourceKind::WebPage
        );
        assert_eq!(
            Connection::Text { store, url: "file:///x".into() }.kind(),
            SourceKind::TextFile
        );
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(stable_seed("a"), stable_seed("a"));
        assert_ne!(stable_seed("a"), stable_seed("b"));
    }

    #[test]
    fn remote_registration_carries_models() {
        let mut r = SourceRegistry::new();
        r.register_remote("W", db_conn(), CostModel::wan(), FailureModel::reliable()).unwrap();
        let ep = r.get(&"W".into()).unwrap().endpoint();
        assert_eq!(ep.cost_model(), &CostModel::wan());
    }

    #[test]
    fn replicas_get_derived_ids_and_primary_cost() {
        let mut r = SourceRegistry::new();
        r.register_remote_with_replicas(
            "DB",
            db_conn(),
            CostModel::wan(),
            FailureModel::unreachable(),
            &[FailureModel::reliable(), FailureModel::flaky(0.2)],
        )
        .unwrap();
        let s = r.get(&"DB".into()).unwrap();
        assert_eq!(s.replicas().len(), 2);
        let ids: Vec<_> = s.endpoints().map(|e| e.id().to_string()).collect();
        assert_eq!(ids, ["DB", "DB#r1", "DB#r2"]);
        assert!(s.endpoints().all(|e| e.cost_model() == &CostModel::wan()));
    }

    #[test]
    fn detailed_registration_controls_seed_and_schedule() {
        use s2s_netsim::FaultKind;
        let mut r = SourceRegistry::new();
        r.register_remote_detailed(
            "D",
            db_conn(),
            CostModel::lan(),
            FailureModel::reliable(),
            Some(99),
            FaultSchedule::new().fail_call(0, FaultKind::Unreachable),
        )
        .unwrap();
        let ep = r.get(&"D".into()).unwrap().endpoint();
        assert_eq!(ep.schedule().len(), 1);
        assert!(ep.invoke(1, || ()).is_err(), "call 0 is scheduled to fail");
        assert!(ep.invoke(1, || ()).is_ok());
    }

    #[test]
    fn mutation_bumps_version_and_feeds_events() {
        let mut r = SourceRegistry::new();
        r.register_local("DB", db_conn()).unwrap();
        assert_eq!(r.version_of(&"DB".into()), Some(0));
        let v = r
            .apply_mutation(&"DB".into(), db_conn(), ChangeKind::RowUpdate, vec!["price".into()])
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(r.version_of(&"DB".into()), Some(1));
        let events = r.poll_changes(&"DB".into(), 0).unwrap().unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].touches("price"));
        assert!(!events[0].touches("brand"));
        assert!(r.poll_changes(&"DB".into(), 1).unwrap().unwrap().is_empty());
    }

    #[test]
    fn mutation_rejects_unknown_source_and_kind_swap() {
        let mut r = SourceRegistry::new();
        r.register_local("DB", db_conn()).unwrap();
        assert!(matches!(
            r.apply_mutation(&"nope".into(), db_conn(), ChangeKind::RowInsert, vec![]),
            Err(S2sError::UnknownSource { .. })
        ));
        let doc = Arc::new(s2s_xml::parse("<a/>").unwrap());
        assert!(matches!(
            r.apply_mutation(
                &"DB".into(),
                Connection::Xml { document: doc },
                ChangeKind::DocReplace,
                vec![]
            ),
            Err(S2sError::MutationKindMismatch { .. })
        ));
        assert_eq!(r.version_of(&"DB".into()), Some(0), "failed mutations must not bump");
    }

    #[test]
    fn add_replica_requires_registered_source() {
        let mut r = SourceRegistry::new();
        assert!(matches!(
            r.add_replica(&"nope".into(), FailureModel::reliable()),
            Err(S2sError::UnknownSource { .. })
        ));
    }
}
