//! The Extractor Manager (paper §2.4).
//!
//! "This is the hot point in the extraction mechanism. It is supported
//! by a mediator and a set of wrappers/extractors." The four steps of
//! Figure 5 map onto this module:
//!
//! 1. *know what data to extract* — the query handler produces the
//!    attribute list ([`crate::query`]);
//! 2. *obtain extraction schema* — [`ExtractionSchema`] pairs each
//!    attribute with its rule from the attribute repository;
//! 3. *obtain data source information* — the source registry supplies
//!    connection definitions ([`crate::source`]);
//! 4. *extract data* — the mediator delegates each rule to the wrapper
//!    for its source type (database extractor, XML extractor, web
//!    wrapper, text extractor) and collects raw data fragments.
//!
//! The mediator runs serially or on a parallel worker pool
//! ([`Strategy`]); every source access crosses a simulated network
//! endpoint, so the report carries both real and simulated timings.

use std::collections::BTreeMap;

use s2s_netsim::wire::{encode, FrameKind};
use s2s_netsim::{makespan, run_parallel, SimDuration};
use s2s_textmatch::Regex;
use s2s_webdoc::{WeblProgram, WeblValue};
use s2s_xml::xpath::XPath;

use crate::error::S2sError;
use crate::mapping::{AttributeMapping, ExtractionRule, MappingModule, RecordScenario};
use crate::source::{Connection, SourceRegistry};

/// One unit of extraction work: an attribute, its rule, its source
/// (paper §2.4.1: "extraction schemas of the required attributes").
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionSchema {
    /// The mapping driving this extraction.
    pub mapping: AttributeMapping,
}

/// How the mediator dispatches extraction tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One task at a time, in schema order.
    Serial,
    /// Up to `workers` concurrent tasks on real threads.
    Parallel {
        /// Worker-thread count (>= 1).
        workers: usize,
    },
}

impl Strategy {
    fn workers(self) -> usize {
        match self {
            Strategy::Serial => 1,
            Strategy::Parallel { workers } => workers.max(1),
        }
    }
}

/// The values extracted for one attribute from one source.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeResult {
    /// The mapping that produced the values.
    pub mapping: AttributeMapping,
    /// The raw data fragments, one per record.
    pub values: Vec<String>,
    /// Simulated network + service time of this extraction.
    pub elapsed: SimDuration,
}

/// A failed extraction, attributed to its attribute and source (feeds
/// the Instance Generator's error reporting, §2.6).
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionFailure {
    /// The attribute path that failed.
    pub attribute: String,
    /// The source involved.
    pub source: String,
    /// What went wrong.
    pub error: S2sError,
}

/// The full outcome of a mediated extraction round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExtractionReport {
    /// Successful per-attribute results.
    pub results: Vec<AttributeResult>,
    /// Failures (partial results are still returned).
    pub failures: Vec<ExtractionFailure>,
    /// Simulated completion time under the strategy used.
    pub simulated: SimDuration,
    /// Simulated completion time had the tasks run serially (for
    /// speed-up reporting).
    pub simulated_serial: SimDuration,
}

impl ExtractionReport {
    /// Total values extracted.
    pub fn value_count(&self) -> usize {
        self.results.iter().map(|r| r.values.len()).sum()
    }

    /// Whether every task succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The mediator: executes extraction schemas against registered sources.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtractorManager;

impl ExtractorManager {
    /// Builds extraction schemas for every mapping of the given
    /// attribute paths (step 2 of Fig. 5).
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::UnmappedAttribute`] if any path has no
    /// mapping at all.
    pub fn obtain_schemas(
        module: &MappingModule,
        paths: &[s2s_owl::AttributePath],
    ) -> Result<Vec<ExtractionSchema>, S2sError> {
        let mut schemas = Vec::new();
        for p in paths {
            let mappings = module.mappings_for(p);
            if mappings.is_empty() {
                return Err(S2sError::UnmappedAttribute { attribute: p.to_string() });
            }
            schemas
                .extend(mappings.into_iter().map(|m| ExtractionSchema { mapping: m.clone() }));
        }
        Ok(schemas)
    }

    /// Runs a batch of schemas (step 4 of Fig. 5), tolerating per-task
    /// failures.
    pub fn extract(
        registry: &SourceRegistry,
        schemas: Vec<ExtractionSchema>,
        strategy: Strategy,
    ) -> ExtractionReport {
        let workers = strategy.workers();
        let outcomes = run_parallel(schemas, workers, |schema| {
            let r = extract_one(registry, &schema.mapping);
            (schema, r)
        });

        let mut report = ExtractionReport::default();
        let mut durations = Vec::new();
        for (schema, outcome) in outcomes {
            match outcome {
                Ok((values, elapsed)) => {
                    durations.push(elapsed);
                    report.results.push(AttributeResult {
                        mapping: schema.mapping,
                        values,
                        elapsed,
                    });
                }
                Err(error) => {
                    report.failures.push(ExtractionFailure {
                        attribute: schema.mapping.path().to_string(),
                        source: schema.mapping.source().to_string(),
                        error,
                    });
                }
            }
        }
        report.simulated_serial = durations.iter().copied().sum();
        report.simulated = makespan(&durations, workers);
        report
    }
}

/// Runs one extraction rule against one source, crossing the source's
/// simulated endpoint.
///
/// Wire accounting: the rule text travels in a request frame, the
/// extracted values in a response frame; both feed the endpoint cost
/// model, so larger rules and larger results genuinely cost more
/// simulated time.
///
/// # Errors
///
/// Rule/source mismatches, wrapper errors, and injected network
/// failures all surface as [`S2sError`].
pub fn extract_one(
    registry: &SourceRegistry,
    mapping: &AttributeMapping,
) -> Result<(Vec<String>, SimDuration), S2sError> {
    let source = registry.require(mapping.source())?;
    if !mapping.rule().compatible_with(source.kind()) {
        return Err(S2sError::RuleSourceMismatch {
            attribute: mapping.path().to_string(),
            message: format!(
                "{} rule cannot run against a {} source",
                mapping.rule().language(),
                source.kind()
            ),
        });
    }

    // Run the wrapper for the source type.
    let mut values = run_wrapper(source.connection(), mapping.rule())?;
    if mapping.scenario() == RecordScenario::SingleRecord {
        values.truncate(1);
    }

    // Account the remote call: request (rule) + response (values).
    let request = encode(FrameKind::Request, mapping.rule().text().as_bytes());
    let response_len: usize = values.iter().map(String::len).sum();
    let response = encode(FrameKind::Response, &vec![0u8; response_len]);
    let bytes = request.len() + response.len();
    let call = source.endpoint().invoke(bytes, || ())?;
    Ok((values, call.elapsed))
}

/// Dispatches to the per-source-type extractor (paper: "for Web pages,
/// the extraction rules are delegated to a Web wrapper, for databases to
/// a database extractor, and so on").
fn run_wrapper(connection: &Connection, rule: &ExtractionRule) -> Result<Vec<String>, S2sError> {
    match (connection, rule) {
        (Connection::Database { db }, ExtractionRule::Sql { query, column }) => {
            let result = db.query(query)?;
            let idx = result.column_index(column).ok_or_else(|| {
                S2sError::Db(s2s_minidb::DbError::UnknownColumn { column: column.clone() })
            })?;
            Ok(result
                .rows()
                .iter()
                .filter(|row| !row[idx].is_null())
                .map(|row| row[idx].render())
                .collect())
        }
        (Connection::Xml { document }, ExtractionRule::XPath { path }) => {
            let xpath = XPath::new(path)?;
            Ok(xpath.eval_strings(document))
        }
        (Connection::Xml { document }, ExtractionRule::XQuery { query }) => {
            let xquery = s2s_xml::xquery::XQuery::new(query)?;
            Ok(xquery.eval(document))
        }
        (Connection::Web { store, url }, ExtractionRule::Webl { program }) => {
            let program = WeblProgram::parse(program)?;
            let doc = store.fetch(url)?;
            let mut env = BTreeMap::new();
            env.insert(
                "PAGE".to_string(),
                WeblValue::Page {
                    url: url.clone(),
                    source: doc.raw().to_string(),
                    html: doc.is_html(),
                },
            );
            env.insert("URL".to_string(), WeblValue::Str(url.clone()));
            let value = program.run_with(store, env)?;
            Ok(flatten_webl(value))
        }
        (Connection::Text { store, url }, ExtractionRule::Webl { program }) => {
            let program = WeblProgram::parse(program)?;
            let doc = store.fetch(url)?;
            let mut env = BTreeMap::new();
            env.insert(
                "PAGE".to_string(),
                WeblValue::Page { url: url.clone(), source: doc.raw().to_string(), html: false },
            );
            env.insert("URL".to_string(), WeblValue::Str(url.clone()));
            let value = program.run_with(store, env)?;
            Ok(flatten_webl(value))
        }
        (Connection::Web { store, url }, ExtractionRule::TextRegex { pattern, group })
        | (Connection::Text { store, url }, ExtractionRule::TextRegex { pattern, group }) => {
            let doc = store.fetch(url)?;
            let re = Regex::new(pattern).map_err(|e| {
                S2sError::Webdoc(s2s_webdoc::WebdocError::BadRegex {
                    pattern: pattern.clone(),
                    message: e.to_string(),
                })
            })?;
            let text = doc.text();
            Ok(re
                .find_iter(&text)
                .filter_map(|m| m.get(*group).map(|c| c.text().to_string()))
                .collect())
        }
        _ => Err(S2sError::RuleSourceMismatch {
            attribute: String::new(),
            message: "unsupported rule/source combination".to_string(),
        }),
    }
}

fn flatten_webl(value: WeblValue) -> Vec<String> {
    match value {
        WeblValue::List(items) => items.iter().map(WeblValue::to_text).collect(),
        other => {
            let t = other.to_text();
            if t.is_empty() {
                Vec::new()
            } else {
                vec![t]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingModule;
    use crate::source::Connection;
    use s2s_minidb::Database;
    use s2s_netsim::{CostModel, FailureModel};
    use s2s_owl::Ontology;
    use s2s_webdoc::WebStore;
    use std::sync::Arc;

    fn onto() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .datatype_property("brand", "Product", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .datatype_property("price", "Product", s2s_rdf::vocab::xsd::DECIMAL)
            .unwrap()
            .build()
            .unwrap()
    }

    fn registry() -> SourceRegistry {
        let mut db = Database::new("catalog");
        db.execute("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT, price REAL)").unwrap();
        db.execute("INSERT INTO w VALUES (1,'Seiko',129.99),(2,'Casio',59.5),(3,NULL,1.0)")
            .unwrap();

        let doc = s2s_xml::parse(
            "<catalog><w><brand>Orient</brand></w><w><brand>Tissot</brand></w></catalog>",
        )
        .unwrap();

        let mut web = WebStore::new();
        web.register_html("http://shop/81", "<p><b>Seiko Men's Automatic Dive Watch</b></p>");
        web.register_text("http://files/p.txt", "brand: Fossil\nbrand: Timex\n");
        let web = Arc::new(web);

        let mut r = SourceRegistry::new();
        r.register_local("DB_ID_45", Connection::Database { db: Arc::new(db) }).unwrap();
        r.register_local("XML_7", Connection::Xml { document: Arc::new(doc) }).unwrap();
        r.register_local(
            "wpage_81",
            Connection::Web { store: web.clone(), url: "http://shop/81".into() },
        )
        .unwrap();
        r.register_local(
            "txt_1",
            Connection::Text { store: web, url: "http://files/p.txt".into() },
        )
        .unwrap();
        r
    }

    fn module() -> MappingModule {
        let o = onto();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT brand FROM w ORDER BY id".into(), column: "brand".into() },
            "DB_ID_45".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        m
    }

    #[test]
    fn sql_wrapper_extracts_column_skipping_nulls() {
        let r = registry();
        let m = module();
        let mapping = m.iter().next().unwrap().clone();
        let (values, _) = extract_one(&r, &mapping).unwrap();
        assert_eq!(values, ["Seiko", "Casio"]);
    }

    #[test]
    fn xpath_wrapper_extracts() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::XPath { path: "//w/brand/text()".into() },
            "XML_7".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let (values, _) = extract_one(&r, m.iter().next().unwrap()).unwrap();
        assert_eq!(values, ["Orient", "Tissot"]);
    }

    #[test]
    fn webl_wrapper_with_bound_page() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Webl {
                program: r#"
                    var m = Str_Search(Text(PAGE), "<p><b>" + `[0-9a-zA-Z']+`);
                    var parts = Str_Split(m[0][0], "<>");
                    var brand = parts[2];
                "#
                .into(),
            },
            "wpage_81".into(),
            RecordScenario::SingleRecord,
        )
        .unwrap();
        let (values, _) = extract_one(&r, m.iter().next().unwrap()).unwrap();
        assert_eq!(values, ["Seiko"]);
    }

    #[test]
    fn text_regex_wrapper_multi_match() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::TextRegex { pattern: r"brand: (\w+)".into(), group: 1 },
            "txt_1".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let (values, _) = extract_one(&r, m.iter().next().unwrap()).unwrap();
        assert_eq!(values, ["Fossil", "Timex"]);
    }

    #[test]
    fn single_record_truncates() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::TextRegex { pattern: r"brand: (\w+)".into(), group: 1 },
            "txt_1".into(),
            RecordScenario::SingleRecord,
        )
        .unwrap();
        let (values, _) = extract_one(&r, m.iter().next().unwrap()).unwrap();
        assert_eq!(values, ["Fossil"]);
    }

    #[test]
    fn rule_source_mismatch_detected() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT 1".into(), column: "a".into() },
            "wpage_81".into(),
            RecordScenario::SingleRecord,
        )
        .unwrap();
        assert!(matches!(
            extract_one(&r, m.iter().next().unwrap()),
            Err(S2sError::RuleSourceMismatch { .. })
        ));
    }

    #[test]
    fn obtain_schemas_requires_mapping() {
        let m = module();
        let err = ExtractorManager::obtain_schemas(
            &m,
            &["thing.product.price".parse().unwrap()],
        );
        assert!(matches!(err, Err(S2sError::UnmappedAttribute { .. })));
        let ok = ExtractorManager::obtain_schemas(&m, &["thing.product.brand".parse().unwrap()])
            .unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn mediator_collects_results_and_failures() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT brand FROM w".into(), column: "brand".into() },
            "DB_ID_45".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        m.register(
            &o,
            "thing.product.price".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT oops FROM w".into(), column: "oops".into() },
            "DB_ID_45".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let schemas = ExtractorManager::obtain_schemas(
            &m,
            &[
                "thing.product.brand".parse().unwrap(),
                "thing.product.price".parse().unwrap(),
            ],
        )
        .unwrap();
        let report = ExtractorManager::extract(&r, schemas, Strategy::Serial);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.failures.len(), 1);
        assert!(!report.is_complete());
        assert_eq!(report.value_count(), 2);
        assert!(report.failures[0].attribute.contains("price"));
    }

    #[test]
    fn parallel_equals_serial_results() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        for (i, rule) in [
            ExtractionRule::Sql { query: "SELECT brand FROM w".into(), column: "brand".into() },
            ExtractionRule::Sql { query: "SELECT price FROM w".into(), column: "price".into() },
        ]
        .into_iter()
        .enumerate()
        {
            let path = if i == 0 { "thing.product.brand" } else { "thing.product.price" };
            m.register(&o, path.parse().unwrap(), rule, "DB_ID_45".into(), RecordScenario::MultiRecord)
                .unwrap();
        }
        let paths = vec![
            "thing.product.brand".parse().unwrap(),
            "thing.product.price".parse().unwrap(),
        ];
        let schemas = ExtractorManager::obtain_schemas(&m, &paths).unwrap();
        let serial = ExtractorManager::extract(&r, schemas.clone(), Strategy::Serial);
        let parallel = ExtractorManager::extract(&r, schemas, Strategy::Parallel { workers: 4 });
        let values = |rep: &ExtractionReport| {
            let mut v: Vec<Vec<String>> = rep.results.iter().map(|x| x.values.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(values(&serial), values(&parallel));
    }

    #[test]
    fn remote_failure_injection_surfaces_as_net_error() {
        let o = onto();
        let mut db = Database::new("d");
        db.execute("CREATE TABLE t (a TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES ('x')").unwrap();
        let mut r = SourceRegistry::new();
        r.register_remote(
            "FLAKY",
            Connection::Database { db: Arc::new(db) },
            CostModel::lan(),
            FailureModel { p_unreachable: 1.0, p_timeout: 0.0, timeout: SimDuration::from_millis(1) },
        )
        .unwrap();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT a FROM t".into(), column: "a".into() },
            "FLAKY".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        assert!(matches!(
            extract_one(&r, m.iter().next().unwrap()),
            Err(S2sError::Net(_))
        ));
    }

    #[test]
    fn simulated_time_parallel_not_more_than_serial() {
        let o = onto();
        let mut r = SourceRegistry::new();
        let mut m = MappingModule::new();
        for i in 0..6 {
            let mut db = Database::new("d");
            db.execute("CREATE TABLE t (brand TEXT)").unwrap();
            db.execute("INSERT INTO t VALUES ('X')").unwrap();
            let id = format!("DB_{i}");
            r.register_remote(
                id.as_str(),
                Connection::Database { db: Arc::new(db) },
                CostModel::wan(),
                FailureModel::reliable(),
            )
            .unwrap();
            m.register(
                &o,
                "thing.product.brand".parse().unwrap(),
                ExtractionRule::Sql { query: "SELECT brand FROM t".into(), column: "brand".into() },
                id.as_str().into(),
                RecordScenario::MultiRecord,
            )
            .unwrap();
        }
        let schemas =
            ExtractorManager::obtain_schemas(&m, &["thing.product.brand".parse().unwrap()])
                .unwrap();
        assert_eq!(schemas.len(), 6);
        let report = ExtractorManager::extract(&r, schemas, Strategy::Parallel { workers: 6 });
        assert!(report.is_complete());
        assert!(report.simulated < report.simulated_serial);
    }
}
