//! The Extractor Manager (paper §2.4).
//!
//! "This is the hot point in the extraction mechanism. It is supported
//! by a mediator and a set of wrappers/extractors." The four steps of
//! Figure 5 map onto this module:
//!
//! 1. *know what data to extract* — the query handler produces the
//!    attribute list ([`crate::query`]);
//! 2. *obtain extraction schema* — [`ExtractionSchema`] pairs each
//!    attribute with its rule from the attribute repository;
//! 3. *obtain data source information* — the source registry supplies
//!    connection definitions ([`crate::source`]);
//! 4. *extract data* — the mediator delegates each rule to the wrapper
//!    for its source type (database extractor, XML extractor, web
//!    wrapper, text extractor) and collects raw data fragments.
//!
//! The mediator runs serially or on a parallel worker pool
//! ([`Strategy`]); every source access crosses a simulated network
//! endpoint, so the report carries both real and simulated timings.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use s2s_netsim::wire::{batch_exchange_size, batch_frame_size, exchange_size, frame_size};
use s2s_netsim::{
    invoke_with_retry, makespan, BreakerConfig, BreakerState, CircuitBreaker, Endpoint,
    HedgeConfig, Hedger, RetryPolicy, SimDuration, WorkerPool,
};
use s2s_obs::{Span, SpanKind, SpanOutcome};
use s2s_webdoc::{WebStore, WeblProgram, WeblValue};

use crate::error::{FailureClass, S2sError};
use crate::mapping::{AttributeMapping, ExtractionRule, MappingModule, RecordScenario};
use crate::rules::{CompiledRule, RuleCache};
use crate::source::{Connection, RegisteredSource, SourceRegistry};

/// One unit of extraction work: an attribute, its rule, its source
/// (paper §2.4.1: "extraction schemas of the required attributes").
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionSchema {
    /// The mapping driving this extraction.
    pub mapping: AttributeMapping,
    /// The pre-pushdown mapping when the federated planner rewrote the
    /// rule ([`crate::planner`]); wire accounting prices it to measure
    /// the response bytes the rewrite avoided shipping.
    pub baseline: Option<AttributeMapping>,
}

/// How the mediator dispatches extraction tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One task at a time, in schema order.
    Serial,
    /// Up to `workers` concurrent tasks on real threads.
    Parallel {
        /// Worker-thread count (>= 1).
        workers: usize,
    },
    /// Every task in flight at once on an event-driven reactor over
    /// virtual time ([`s2s_netsim::Reactor`]): exchanges become timer
    /// events instead of blocked threads, so the concurrency ceiling
    /// is memory, not core count. Simulated makespan is the maximum
    /// per-task cost (unbounded overlap); answers are byte-identical
    /// to the threaded paths.
    Reactor {
        /// Timer shards of the reactor (>= 1; clamped).
        shards: usize,
    },
}

impl Strategy {
    /// The worker count this strategy asks for (>= 1). Sizes both the
    /// makespan accounting and the [`WorkerPool`] a resident engine
    /// spawns for the strategy. The reactor answers 1 — it runs on the
    /// calling thread and never dispatches to the pool.
    pub fn workers(self) -> usize {
        match self {
            Strategy::Serial => 1,
            Strategy::Parallel { workers } => workers.max(1),
            Strategy::Reactor { .. } => 1,
        }
    }
}

/// The values extracted for one attribute from one source.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeResult {
    /// The mapping that produced the values.
    pub mapping: AttributeMapping,
    /// The raw data fragments, one per record.
    pub values: Vec<String>,
    /// Simulated network + service time of this extraction.
    pub elapsed: SimDuration,
}

/// How the mediator copes with failing endpoints (the resilience
/// layer): per-call retries, failover across replica endpoints, and an
/// optional circuit breaker per endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Retry schedule for each endpoint attempt.
    pub retry: RetryPolicy,
    /// Whether a transient failure moves on to the next replica.
    pub failover: bool,
    /// Circuit-breaker tuning; `None` disables breakers.
    pub breaker: Option<BreakerConfig>,
    /// Hedged-request tuning; `None` disables hedging. When set, a
    /// successful exchange slower than the tracked latency percentile
    /// is re-issued to the next replica and the faster reply wins.
    pub hedge: Option<HedgeConfig>,
}

impl ResiliencePolicy {
    /// The legacy behaviour: one attempt, primary endpoint only, no
    /// breaker, no hedging.
    pub fn none() -> Self {
        ResiliencePolicy { retry: RetryPolicy::none(), failover: false, breaker: None, hedge: None }
    }

    /// Replaces the retry schedule.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables or disables replica failover.
    pub fn with_failover(mut self, failover: bool) -> Self {
        self.failover = failover;
        self
    }

    /// Enables per-endpoint circuit breakers.
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Enables hedged requests against straggling primaries. Requires
    /// failover (a hedge needs a replica to race); callers without
    /// replicas simply never hedge.
    pub fn with_hedging(mut self, config: HedgeConfig) -> Self {
        self.hedge = Some(config);
        self
    }
}

impl Default for ResiliencePolicy {
    /// No retries, failover enabled, no breaker, no hedging — replicas
    /// are used when registered, nothing else changes.
    fn default() -> Self {
        ResiliencePolicy { retry: RetryPolicy::none(), failover: true, breaker: None, hedge: None }
    }
}

/// Shared state of the resilience layer for one middleware instance:
/// the policy, one lazily created circuit breaker per endpoint, and a
/// virtual clock (accumulated simulated time) that drives breaker
/// cooldowns.
#[derive(Debug, Default)]
pub struct ResilienceContext {
    policy: ResiliencePolicy,
    breakers: Mutex<BTreeMap<String, Arc<CircuitBreaker>>>,
    clock: Mutex<SimDuration>,
    hedger: Option<Hedger>,
}

impl ResilienceContext {
    /// A fresh context (closed breakers, clock at zero, cold hedge
    /// tracker when the policy enables hedging).
    pub fn new(policy: ResiliencePolicy) -> Self {
        let hedger = policy.hedge.map(Hedger::new);
        ResilienceContext { policy, hedger, ..ResilienceContext::default() }
    }

    /// The policy in force.
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    /// The breaker guarding `endpoint_id`, if one has been created.
    pub fn breaker(&self, endpoint_id: &str) -> Option<Arc<CircuitBreaker>> {
        self.breakers.lock().get(endpoint_id).cloned()
    }

    /// The hedged-request latency tracker, when hedging is enabled.
    pub fn hedger(&self) -> Option<&Hedger> {
        self.hedger.as_ref()
    }

    /// Accumulated virtual time across all resilient calls so far.
    pub fn virtual_now(&self) -> SimDuration {
        *self.clock.lock()
    }

    /// Advances the virtual clock without performing a call (e.g. to
    /// let a breaker cooldown expire in tests or experiments).
    pub fn advance_clock(&self, elapsed: SimDuration) {
        *self.clock.lock() += elapsed;
    }

    fn breaker_for(&self, endpoint_id: &str) -> Option<Arc<CircuitBreaker>> {
        let config = self.policy.breaker?;
        Some(Arc::clone(
            self.breakers
                .lock()
                .entry(endpoint_id.to_string())
                .or_insert_with(|| Arc::new(CircuitBreaker::new(config))),
        ))
    }

    fn advance(&self, elapsed: SimDuration) -> SimDuration {
        let mut clock = self.clock.lock();
        *clock += elapsed;
        *clock
    }
}

/// Degraded-mode telemetry for one source, aggregated over all of a
/// query's extraction tasks against it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceHealth {
    /// Extraction tasks dispatched to this source.
    pub tasks: usize,
    /// Tasks that still failed after retries and failover.
    pub failed_tasks: usize,
    /// Endpoint attempts made (every retry and failover call counts).
    pub attempts: u64,
    /// Attempts beyond the first per endpoint.
    pub retries: u64,
    /// Switches to a replica endpoint.
    pub failovers: u64,
    /// Calls rejected by an open circuit breaker.
    pub breaker_rejections: u64,
    /// Simulated wire time spent against this source, including failed
    /// attempts and backoff waits (unlike the per-result `elapsed`,
    /// which only successful tasks report).
    pub elapsed: SimDuration,
    /// State of the primary endpoint's breaker after the query
    /// (`None` when breakers are disabled).
    pub breaker_state: Option<BreakerState>,
    /// Exchanges abandoned because the query's deadline budget ran out
    /// (mid-attempt or mid-backoff).
    pub deadline_hits: u64,
    /// Hedged replica requests launched against straggling primaries.
    pub hedges: u64,
    /// Hedged requests whose replica reply beat the primary. Invariant:
    /// `hedge_wins <= hedges`.
    pub hedge_wins: u64,
}

/// Per-task resilience counters, folded into [`SourceHealth`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TaskTrace {
    attempts: u64,
    retries: u64,
    failovers: u64,
    breaker_rejections: u64,
    elapsed: SimDuration,
    deadline_hits: u64,
    hedges: u64,
    hedge_wins: u64,
}

/// A failed extraction, attributed to its attribute and source (feeds
/// the Instance Generator's error reporting, §2.6).
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionFailure {
    /// The attribute path that failed.
    pub attribute: String,
    /// The source involved.
    pub source: String,
    /// What went wrong.
    pub error: S2sError,
}

/// The full outcome of a mediated extraction round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExtractionReport {
    /// Successful per-attribute results.
    pub results: Vec<AttributeResult>,
    /// Failures (partial results are still returned).
    pub failures: Vec<ExtractionFailure>,
    /// Simulated completion time under the strategy used.
    pub simulated: SimDuration,
    /// Simulated completion time had the tasks run serially (for
    /// speed-up reporting).
    pub simulated_serial: SimDuration,
    /// Degraded-mode telemetry per source id.
    pub resilience: BTreeMap<String, SourceHealth>,
    /// Per-batch trace spans (`batch → rule/attempt`), populated only
    /// by the `*_traced` entry points; empty otherwise. Spans are built
    /// thread-locally inside each worker and ride the result channel
    /// back, so collecting them adds no locks to the parallel path.
    pub spans: Vec<Span>,
    /// Total on-wire bytes (request plus response frames) of every
    /// exchange whose network leg completed.
    pub wire_bytes: u64,
    /// The response-frame share of `wire_bytes`.
    pub wire_response_bytes: u64,
    /// Response bytes the pushdown planner's rule rewrites avoided
    /// shipping versus the pre-rewrite (baseline) rules, summed over
    /// completed exchanges.
    pub wire_bytes_saved: u64,
}

impl ExtractionReport {
    /// Total values extracted.
    pub fn value_count(&self) -> usize {
        self.results.iter().map(|r| r.values.len()).sum()
    }

    /// Whether every task succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Fraction of tasks answered: `results / (results + failures)`,
    /// `1.0` when nothing was requested.
    pub fn completeness(&self) -> f64 {
        let requested = self.results.len() + self.failures.len();
        if requested == 0 {
            1.0
        } else {
            self.results.len() as f64 / requested as f64
        }
    }
}

/// The mediator: executes extraction schemas against registered sources.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtractorManager;

impl ExtractorManager {
    /// Builds extraction schemas for every mapping of the given
    /// attribute paths (step 2 of Fig. 5).
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::UnmappedAttribute`] if any path has no
    /// mapping at all.
    pub fn obtain_schemas(
        module: &MappingModule,
        paths: &[s2s_owl::AttributePath],
    ) -> Result<Vec<ExtractionSchema>, S2sError> {
        let mut schemas = Vec::new();
        for p in paths {
            let mappings = module.mappings_for(p);
            if mappings.is_empty() {
                return Err(S2sError::UnmappedAttribute { attribute: p.to_string() });
            }
            schemas.extend(
                mappings
                    .into_iter()
                    .map(|m| ExtractionSchema { mapping: m.clone(), baseline: None }),
            );
        }
        Ok(schemas)
    }

    /// Runs a batch of schemas (step 4 of Fig. 5), tolerating per-task
    /// failures. Legacy single-shot behaviour: one attempt against the
    /// primary endpoint, no failover, no breaker, one wire exchange per
    /// attribute.
    pub fn extract(
        registry: &SourceRegistry,
        schemas: Vec<ExtractionSchema>,
        strategy: Strategy,
    ) -> ExtractionReport {
        Self::extract_with(
            registry,
            schemas,
            strategy,
            &ResilienceContext::new(ResiliencePolicy::none()),
        )
    }

    /// Like [`ExtractorManager::extract`] but driven by a resilience
    /// context: each task retries per the policy, fails over across
    /// replica endpoints, and respects circuit breakers. The report's
    /// `resilience` map carries the degraded-mode telemetry.
    pub fn extract_with(
        registry: &SourceRegistry,
        schemas: Vec<ExtractionSchema>,
        strategy: Strategy,
        ctx: &ResilienceContext,
    ) -> ExtractionReport {
        Self::extract_with_rules(registry, schemas, strategy, ctx, &RuleCache::new())
    }

    /// The per-attribute path with a shared compiled-rule cache: one
    /// wire exchange per schema. Kept alongside
    /// [`ExtractorManager::extract_batched`] for the equivalence tests
    /// and the ablation bench.
    pub fn extract_with_rules(
        registry: &SourceRegistry,
        schemas: Vec<ExtractionSchema>,
        strategy: Strategy,
        ctx: &ResilienceContext,
        rules: &RuleCache,
    ) -> ExtractionReport {
        let pool = WorkerPool::new(strategy.workers());
        Self::extract_with_rules_traced(registry, schemas, strategy, ctx, rules, false, &pool, None)
    }

    /// [`ExtractorManager::extract_with_rules`] with optional span
    /// collection: when `traced`, the report's `spans` carry one
    /// `batch` span per task (this path puts each attribute on its own
    /// wire exchange) with its `rule` child and one `attempt` child per
    /// endpoint tried. Tasks execute on `pool` — a resident engine
    /// passes its long-lived shared pool so concurrent queries
    /// multiplex onto one fixed set of threads; the legacy entry points
    /// above construct a transient pool per call. `strategy` still
    /// sizes the *simulated* makespan accounting independently.
    /// `deadline` is the query's remaining budget, applied per source
    /// exchange (see [`ResiliencePolicy`] and the overload layer).
    #[allow(clippy::too_many_arguments)]
    pub fn extract_with_rules_traced(
        registry: &SourceRegistry,
        schemas: Vec<ExtractionSchema>,
        strategy: Strategy,
        ctx: &ResilienceContext,
        rules: &RuleCache,
        traced: bool,
        pool: &WorkerPool,
        deadline: Option<SimDuration>,
    ) -> ExtractionReport {
        let workers = strategy.workers();
        let run_one = |schema: ExtractionSchema| {
            let started = std::time::Instant::now();
            let mut attempt_spans = if traced { Some(Vec::new()) } else { None };
            let r = extract_one_resilient(
                registry,
                &schema,
                ctx,
                rules,
                deadline,
                attempt_spans.as_mut(),
            );
            (schema, r, attempt_spans, started.elapsed())
        };
        let outcomes = match strategy {
            Strategy::Reactor { shards } => {
                s2s_netsim::reactor::run_tasks(
                    shards,
                    schemas,
                    run_one,
                    |(_, (_, trace, _), _, _)| trace.elapsed,
                )
                .0
            }
            _ => pool.run(schemas, run_one),
        };

        let mut report = ExtractionReport::default();
        let mut durations = Vec::new();
        for (schema, (outcome, trace, wire), attempt_spans, wall) in outcomes {
            let health = report.resilience.entry(schema.mapping.source().to_string()).or_default();
            health.tasks += 1;
            fold_trace(health, trace);
            if let Some(attempt_spans) = attempt_spans {
                let mut rule = Span::new(SpanKind::Rule, schema.mapping.path().to_string());
                rule.attr("source", schema.mapping.source().to_string());
                match &outcome {
                    Ok((values, _)) => rule.attr("values", values.len().to_string()),
                    Err(error) => {
                        rule.outcome = SpanOutcome::Failed;
                        rule.attr("error", error.to_string());
                    }
                }
                let mut batch = Span::new(SpanKind::Batch, schema.mapping.source().to_string());
                batch.sim_us = trace.elapsed.as_micros();
                batch.wall_us = wall.as_micros() as u64;
                batch.outcome = batch_outcome(outcome.is_err(), false, &trace);
                batch.push(rule);
                for span in attempt_spans {
                    batch.push(span);
                }
                report.spans.push(batch);
            }
            match outcome {
                Ok((values, elapsed)) => {
                    durations.push(elapsed);
                    report.wire_bytes += wire.total;
                    report.wire_response_bytes += wire.response;
                    report.wire_bytes_saved += wire.saved;
                    report.results.push(AttributeResult {
                        mapping: schema.mapping,
                        values,
                        elapsed,
                    });
                }
                Err(error) => {
                    health.failed_tasks += 1;
                    report.failures.push(ExtractionFailure {
                        attribute: schema.mapping.path().to_string(),
                        source: schema.mapping.source().to_string(),
                        error,
                    });
                }
            }
        }
        fill_breaker_states(&mut report, registry, ctx);
        report.simulated_serial = durations.iter().copied().sum();
        report.simulated = makespan(&durations, simulated_workers(strategy, &durations, workers));
        record_report_metrics(&report);
        report
    }

    /// The batched pipeline: the planner groups the schema batch by
    /// source, runs every wrapper locally, coalesces each group's rules
    /// into a single `BatchRequest`/`BatchResponse` wire exchange, and
    /// dispatches batches longest-processing-time-first so the k-worker
    /// makespan is near-optimal.
    ///
    /// Semantics match the per-attribute paths exactly: results and
    /// failures come back in submission order with identical values and
    /// errors. A failed exchange retries/fails over *as a unit* and
    /// fails every batched rule with the same network error; wrapper
    /// errors (bad rules, missing columns) are reported individually
    /// and never reach the wire, so one bad rule cannot sink its batch.
    pub fn extract_batched(
        registry: &SourceRegistry,
        schemas: Vec<ExtractionSchema>,
        strategy: Strategy,
        ctx: &ResilienceContext,
        rules: &RuleCache,
    ) -> ExtractionReport {
        let pool = WorkerPool::new(strategy.workers());
        Self::extract_batched_traced(registry, schemas, strategy, ctx, rules, false, &pool, None)
    }

    /// [`ExtractorManager::extract_batched`] with optional span
    /// collection: when `traced`, the report's `spans` carry one
    /// `batch` span per planned wire exchange, with one `rule` child
    /// per planned rule (rule-cache provenance included — the planner
    /// runs serially, so the cache-stat deltas are unambiguous) and one
    /// `attempt` child per endpoint tried. Batches execute on `pool`
    /// (see [`ExtractorManager::extract_with_rules_traced`] for the
    /// pool/strategy split).
    #[allow(clippy::too_many_arguments)]
    pub fn extract_batched_traced(
        registry: &SourceRegistry,
        schemas: Vec<ExtractionSchema>,
        strategy: Strategy,
        ctx: &ResilienceContext,
        rules: &RuleCache,
        traced: bool,
        pool: &WorkerPool,
        deadline: Option<SimDuration>,
    ) -> ExtractionReport {
        let workers = strategy.workers();
        let batches = plan_batches(registry, schemas, rules, traced);
        if s2s_obs::enabled() {
            s2s_obs::global().counter("s2s_extract_batches_total").add(batches.len() as u64);
        }

        let outcomes = match strategy {
            Strategy::Reactor { shards } => {
                s2s_netsim::reactor::run_tasks(
                    shards,
                    batches,
                    |batch| run_batch(batch, ctx, deadline, traced),
                    |(_, (_, trace), _, _)| trace.elapsed,
                )
                .0
            }
            _ => pool.run(batches, |batch| run_batch(batch, ctx, deadline, traced)),
        };

        let mut report = ExtractionReport::default();
        let mut durations = Vec::new();
        let mut results = Vec::new();
        let mut failures = Vec::new();
        for (mut batch, (net, trace), attempt_spans, wall) in outcomes {
            let health = report.resilience.entry(batch.source_id.clone()).or_default();
            health.tasks += batch.ok.len() + batch.failed.len();
            fold_trace(health, trace);
            if let Some(attempt_spans) = attempt_spans {
                let mut span = Span::new(SpanKind::Batch, batch.source_id.clone());
                span.sim_us = trace.elapsed.as_micros();
                span.wall_us = wall.as_micros() as u64;
                span.outcome = batch_outcome(net.is_err(), !batch.failed.is_empty(), &trace);
                span.attr("rules", (batch.ok.len() + batch.failed.len()).to_string());
                span.attr("wire_bytes", batch.wire_bytes.to_string());
                for rule_span in std::mem::take(&mut batch.rule_spans) {
                    span.push(rule_span);
                }
                for attempt in attempt_spans {
                    span.push(attempt);
                }
                report.spans.push(span);
            }
            for (i, schema, error) in batch.failed {
                health.failed_tasks += 1;
                failures.push((i, failure_of(&schema, error)));
            }
            match net {
                Ok(elapsed) => {
                    if !batch.ok.is_empty() {
                        durations.push(elapsed);
                        report.wire_bytes += batch.wire_bytes as u64;
                        report.wire_response_bytes += batch.response_bytes as u64;
                        report.wire_bytes_saved += batch.saved_response_bytes as u64;
                    }
                    for (i, schema, values) in batch.ok {
                        results.push((
                            i,
                            AttributeResult { mapping: schema.mapping, values, elapsed },
                        ));
                    }
                }
                Err(error) => {
                    // The exchange failed as a unit: every batched rule
                    // reports the same network error.
                    for (i, schema, _) in batch.ok {
                        health.failed_tasks += 1;
                        failures.push((i, failure_of(&schema, error.clone())));
                    }
                }
            }
        }
        // Restore submission order so batched output is byte-identical
        // to the per-attribute paths.
        results.sort_by_key(|(i, _)| *i);
        failures.sort_by_key(|(i, _)| *i);
        report.results = results.into_iter().map(|(_, r)| r).collect();
        report.failures = failures.into_iter().map(|(_, f)| f).collect();
        fill_breaker_states(&mut report, registry, ctx);
        report.simulated_serial = durations.iter().copied().sum();
        report.simulated = makespan(&durations, simulated_workers(strategy, &durations, workers));
        record_report_metrics(&report);
        report
    }
}

/// The worker count the makespan accounting should assume: the
/// strategy's thread count, except under the reactor, where every task
/// overlaps every other (simulated makespan = max per-task cost).
fn simulated_workers(strategy: Strategy, durations: &[SimDuration], workers: usize) -> usize {
    match strategy {
        Strategy::Reactor { .. } => durations.len().max(1),
        _ => workers,
    }
}

/// One batch's outcome: the batch back (results/failures inside), the
/// wire leg's verdict and trace, optional attempt spans, wall elapsed.
type BatchOutcome<'a> =
    (PlannedBatch<'a>, (Result<SimDuration, S2sError>, TaskTrace), Option<Vec<Span>>, Duration);

/// Executes one planned batch's wire leg — the task body shared by the
/// pooled and reactor dispatchers of
/// [`ExtractorManager::extract_batched_traced`].
fn run_batch<'a>(
    batch: PlannedBatch<'a>,
    ctx: &ResilienceContext,
    deadline: Option<SimDuration>,
    traced: bool,
) -> BatchOutcome<'a> {
    let started = std::time::Instant::now();
    let mut attempt_spans = if traced { Some(Vec::new()) } else { None };
    let net = if let (Some(source), false) = (batch.source, batch.ok.is_empty()) {
        let salt = format!("{}:batch", batch.source_id);
        resilient_exchange(
            source,
            &batch.source_id,
            &salt,
            batch.wire_bytes,
            ctx,
            deadline,
            attempt_spans.as_mut(),
        )
    } else {
        // Nothing survived the wrappers (or the source is unknown): no
        // wire leg at all.
        (Ok(SimDuration::ZERO), TaskTrace::default())
    };
    (batch, net, attempt_spans, started.elapsed())
}

/// One per-source unit of batched work, planned before any wire leg.
struct PlannedBatch<'a> {
    source_id: String,
    source: Option<&'a RegisteredSource>,
    /// Wrapper-successful schemas: submission index, schema, values.
    ok: Vec<(usize, ExtractionSchema, Vec<String>)>,
    /// Wrapper-failed schemas (these never reach the wire).
    failed: Vec<(usize, ExtractionSchema, S2sError)>,
    /// Total on-wire bytes of the coalesced exchange.
    wire_bytes: usize,
    /// The `BatchResponse` frame's share of `wire_bytes`.
    response_bytes: usize,
    /// Response payload the pushdown rewrites kept off the wire
    /// (baseline minus actual, per pushed section).
    saved_response_bytes: usize,
    /// LPT sort key: estimated wire cost under the source's cost model.
    estimate: SimDuration,
    /// Per-rule trace spans in submission order (empty unless tracing).
    rule_spans: Vec<Span>,
}

/// Groups schemas by source, runs the local wrapper half, and sizes the
/// coalesced `BatchRequest`/`BatchResponse` exchange for each group.
fn plan_batches<'a>(
    registry: &'a SourceRegistry,
    schemas: Vec<ExtractionSchema>,
    rules: &RuleCache,
    traced: bool,
) -> Vec<PlannedBatch<'a>> {
    let mut groups: BTreeMap<String, Vec<(usize, ExtractionSchema)>> = BTreeMap::new();
    for (i, s) in schemas.into_iter().enumerate() {
        groups.entry(s.mapping.source().to_string()).or_default().push((i, s));
    }
    let mut batches = Vec::with_capacity(groups.len());
    for (source_id, group) in groups {
        let source = registry.get(&source_id.as_str().into());
        let mut ok = Vec::new();
        let mut failed = Vec::new();
        let mut rule_spans = Vec::new();
        for (i, schema) in group {
            let rule_started = std::time::Instant::now();
            // Planning runs serially in the caller's thread, so the
            // rule-cache stat delta around one wrapper run attributes
            // hit/miss provenance to this rule unambiguously.
            let hits_before = if traced { rules.stats().hits } else { 0 };
            let prepared = prepare_values(registry, &schema.mapping, rules);
            if traced {
                let mut span = Span::new(SpanKind::Rule, schema.mapping.path().to_string());
                span.wall_us = rule_started.elapsed().as_micros() as u64;
                span.attr("source", source_id.clone());
                span.attr("cache", if rules.stats().hits > hits_before { "hit" } else { "miss" });
                match &prepared {
                    Ok(values) => span.attr("values", values.len().to_string()),
                    Err(error) => {
                        span.outcome = SpanOutcome::Failed;
                        span.attr("error", error.to_string());
                    }
                }
                rule_spans.push(span);
            }
            match prepared {
                Ok(values) => ok.push((i, schema, values)),
                Err(e) => failed.push((i, schema, e)),
            }
        }
        // Every surviving rule travels as one section of a single
        // BatchRequest; every value list comes back as one section of
        // the matching BatchResponse.
        let (wire_bytes, response_bytes, saved_response_bytes) = if ok.is_empty() {
            (0, 0, 0)
        } else {
            let request_lens: Vec<usize> =
                ok.iter().map(|(_, s, _)| s.mapping.rule().text().len()).collect();
            let response_lens: Vec<usize> =
                ok.iter().map(|(_, _, v)| v.iter().map(String::len).sum()).collect();
            // Price the pre-rewrite rules of pushed schemas locally:
            // the difference is the response payload the rewrite keeps
            // off the wire. A baseline that fails locally saves
            // nothing (it would never have flown).
            let saved: usize = ok
                .iter()
                .zip(&response_lens)
                .map(|((_, s, _), &actual)| match &s.baseline {
                    Some(b) => prepare_values(registry, b, rules)
                        .map(|v| v.iter().map(String::len).sum::<usize>())
                        .unwrap_or(actual)
                        .saturating_sub(actual),
                    None => 0,
                })
                .sum();
            (
                batch_exchange_size(request_lens.iter().copied(), response_lens.iter().copied()),
                batch_frame_size(response_lens.iter().copied()),
                saved,
            )
        };
        let estimate =
            source.map(|s| s.endpoint().cost_model().cost(wire_bytes, 0.5)).unwrap_or_default();
        batches.push(PlannedBatch {
            source_id,
            source,
            ok,
            failed,
            wire_bytes,
            response_bytes,
            saved_response_bytes,
            estimate,
            rule_spans,
        });
    }
    // Longest processing time first: the greedy list scheduler (both
    // the worker pool and the `makespan` accounting) sees the costliest
    // batches first, which keeps the k-worker makespan near-optimal.
    batches.sort_by(|a, b| b.estimate.cmp(&a.estimate).then_with(|| a.source_id.cmp(&b.source_id)));
    batches
}

fn failure_of(schema: &ExtractionSchema, error: S2sError) -> ExtractionFailure {
    ExtractionFailure {
        attribute: schema.mapping.path().to_string(),
        source: schema.mapping.source().to_string(),
        error,
    }
}

fn fold_trace(health: &mut SourceHealth, trace: TaskTrace) {
    health.attempts += trace.attempts;
    health.retries += trace.retries;
    health.failovers += trace.failovers;
    health.breaker_rejections += trace.breaker_rejections;
    health.elapsed += trace.elapsed;
    health.deadline_hits += trace.deadline_hits;
    health.hedges += trace.hedges;
    health.hedge_wins += trace.hedge_wins;
}

/// Severity-composed outcome of a `batch` span: a failed wire exchange
/// dominates, then wrapper-level degradation, then resilience events
/// that a success still passed through (breaker skips, failovers,
/// retries).
fn batch_outcome(net_failed: bool, any_rule_failed: bool, trace: &TaskTrace) -> SpanOutcome {
    if net_failed {
        return SpanOutcome::Failed;
    }
    let mut outcome = SpanOutcome::Ok;
    if trace.retries > 0 {
        outcome = outcome.worst(SpanOutcome::Retried);
    }
    if trace.failovers > 0 {
        outcome = outcome.worst(SpanOutcome::FailedOver);
    }
    if trace.hedges > 0 {
        outcome = outcome.worst(SpanOutcome::Hedged);
    }
    if trace.breaker_rejections > 0 {
        outcome = outcome.worst(SpanOutcome::BreakerRejected);
    }
    if any_rule_failed {
        outcome = outcome.worst(SpanOutcome::Degraded);
    }
    outcome
}

/// Feeds the process-wide extraction metrics from a finished report
/// (no-op while observability is disabled).
fn record_report_metrics(report: &ExtractionReport) {
    if !s2s_obs::enabled() {
        return;
    }
    let metrics = s2s_obs::global();
    metrics
        .counter("s2s_extract_tasks_total")
        .add((report.results.len() + report.failures.len()) as u64);
    metrics.counter("s2s_extract_failed_tasks_total").add(report.failures.len() as u64);
    metrics.histogram("s2s_extract_sim_us").observe(report.simulated.as_micros());
}

fn fill_breaker_states(
    report: &mut ExtractionReport,
    registry: &SourceRegistry,
    ctx: &ResilienceContext,
) {
    for (source_id, health) in &mut report.resilience {
        health.breaker_state = registry
            .get(&source_id.as_str().into())
            .and_then(|s| ctx.breaker(s.endpoint().id()))
            .map(|b| b.state());
    }
}

/// Runs one extraction rule against one source, crossing the source's
/// simulated endpoint.
///
/// Wire accounting: the rule text travels in a request frame, the
/// extracted values in a response frame; both feed the endpoint cost
/// model, so larger rules and larger results genuinely cost more
/// simulated time.
///
/// # Errors
///
/// Rule/source mismatches, wrapper errors, and injected network
/// failures all surface as [`S2sError`].
pub fn extract_one(
    registry: &SourceRegistry,
    mapping: &AttributeMapping,
) -> Result<(Vec<String>, SimDuration), S2sError> {
    let (source, values, bytes, _) = prepare_task(registry, mapping, &RuleCache::new())?;
    let call = source.endpoint().invoke(bytes, || ())?;
    Ok((values, call.elapsed))
}

/// Like [`extract_one`] but under a [`ResilienceContext`]: the network
/// leg retries per the policy, fails over along the source's replica
/// list on transient failures, and is gated by per-endpoint circuit
/// breakers. Wrapper errors (bad rules, missing columns) are permanent
/// — replicas serve the same data, so neither retry nor failover is
/// attempted for them.
///
/// Returns the task outcome plus its resilience counters. The elapsed
/// time of a success includes every failed attempt and backoff wait
/// that led up to it.
/// Wire accounting of one completed exchange: total bytes, the
/// response-frame share, and the response payload a pushdown rewrite
/// avoided versus the baseline rule.
#[derive(Debug, Clone, Copy, Default)]
struct WireUsage {
    total: u64,
    response: u64,
    saved: u64,
}

type TaskOutcome = (Result<(Vec<String>, SimDuration), S2sError>, TaskTrace, WireUsage);

fn extract_one_resilient(
    registry: &SourceRegistry,
    schema: &ExtractionSchema,
    ctx: &ResilienceContext,
    rules: &RuleCache,
    deadline: Option<SimDuration>,
    spans: Option<&mut Vec<Span>>,
) -> TaskOutcome {
    let mapping = &schema.mapping;
    let (source, values, bytes, response_len) = match prepare_task(registry, mapping, rules) {
        Ok(prepared) => prepared,
        Err(e) => return (Err(e), TaskTrace::default(), WireUsage::default()),
    };
    let saved = match &schema.baseline {
        Some(b) => prepare_values(registry, b, rules)
            .map(|v| v.iter().map(String::len).sum::<usize>())
            .unwrap_or(response_len)
            .saturating_sub(response_len),
        None => 0,
    };
    let wire = WireUsage {
        total: bytes as u64,
        response: frame_size(response_len) as u64,
        saved: saved as u64,
    };
    let source_label = mapping.source().to_string();
    let salt = mapping.path().to_string();
    let (net, trace) =
        resilient_exchange(source, &source_label, &salt, bytes, ctx, deadline, spans);
    (net.map(|elapsed| (values, elapsed)), trace, wire)
}

/// The resilient network leg shared by the per-attribute and batched
/// paths: retries per the policy, fails over along the source's replica
/// list on transient failures, and is gated by per-endpoint circuit
/// breakers. `salt` keeps backoff-jitter draw streams distinct per
/// logical task; `source_label` names the source in errors.
///
/// A failover is counted only once at least one real attempt has been
/// made — skipping past a breaker-rejected endpoint costs no network
/// attempt and is not a failover.
///
/// `deadline` is the query's remaining budget for this exchange (the
/// parallel execution model starts every source at the same instant, so
/// each exchange gets the full per-query budget). It tightens the retry
/// policy's own deadline; when the budget runs out — mid-attempt or
/// mid-backoff — the exchange stops immediately with
/// [`S2sError::DeadlineExceeded`]: no further failover can fit in zero
/// remaining budget.
///
/// Hedging (when the policy enables it) races a straggling-but-
/// successful primary against the next replica: once the primary's
/// elapsed time exceeds the tracked latency percentile, a single
/// no-retry attempt is issued to the replica and the faster completion
/// time is charged. The loser is "cancelled" by never charging its
/// remainder — virtual time makes the race deterministic. Both the
/// primary and the hedge attempt reach the wire, so both count toward
/// `attempts` (and thus `round_trips`).
fn resilient_exchange(
    source: &RegisteredSource,
    source_label: &str,
    salt: &str,
    bytes: usize,
    ctx: &ResilienceContext,
    deadline: Option<SimDuration>,
    mut spans: Option<&mut Vec<Span>>,
) -> (Result<SimDuration, S2sError>, TaskTrace) {
    let mut trace = TaskTrace::default();
    let endpoints: Vec<&Arc<Endpoint>> =
        if ctx.policy.failover { source.endpoints().collect() } else { vec![source.endpoint()] };

    let mut attempted = false;
    let mut last_err = None;
    for (slot, endpoint) in endpoints.iter().enumerate() {
        if attempted {
            trace.failovers += 1;
        }
        let is_failover = attempted;
        let breaker = ctx.breaker_for(endpoint.id());
        if let Some(b) = &breaker {
            if !b.allow(ctx.virtual_now()) {
                trace.breaker_rejections += 1;
                if let Some(spans) = spans.as_deref_mut() {
                    let mut span = Span::new(SpanKind::Attempt, endpoint.id().to_string());
                    span.outcome = SpanOutcome::BreakerRejected;
                    spans.push(span);
                }
                last_err = Some(S2sError::CircuitOpen { source: source_label.to_string() });
                continue;
            }
        }
        // The effective retry deadline is the tighter of the policy's
        // own deadline and what remains of the query budget after the
        // attempts already spent on this exchange.
        let mut retry = ctx.policy.retry;
        if let Some(budget) = deadline {
            let remaining = budget.saturating_sub(trace.elapsed);
            if remaining == SimDuration::ZERO {
                trace.deadline_hits += 1;
                note_deadline_exceeded();
                last_err = Some(S2sError::DeadlineExceeded { source: source_label.to_string() });
                break;
            }
            retry.deadline = Some(retry.deadline.map_or(remaining, |d| d.min(remaining)));
        }
        let seed = crate::source::stable_seed(endpoint.id()) ^ crate::source::stable_seed(salt);
        let out = invoke_with_retry(endpoint, &retry, seed, bytes, || ());
        attempted = true;
        trace.attempts += u64::from(out.attempts);
        trace.retries += u64::from(out.retries());

        // Hedge a straggling success against the next replica.
        let mut charged = out.elapsed;
        let mut hedged = false;
        let mut hedge_won = false;
        if out.result.is_ok() {
            if let Some(hedger) = ctx.hedger() {
                hedger.record(out.elapsed);
                if let (Some(delay), Some(replica)) = (hedger.delay(), endpoints.get(slot + 1)) {
                    if out.elapsed > delay {
                        hedger.note_launch();
                        trace.hedges += 1;
                        hedged = true;
                        let h_seed = crate::source::stable_seed(replica.id())
                            ^ crate::source::stable_seed(salt)
                            ^ HEDGE_SEED_SALT;
                        let h =
                            invoke_with_retry(replica, &RetryPolicy::none(), h_seed, bytes, || ());
                        trace.attempts += u64::from(h.attempts);
                        if h.result.is_ok() {
                            let replica_done = delay + h.elapsed;
                            if replica_done < out.elapsed {
                                hedger.note_win();
                                trace.hedge_wins += 1;
                                hedge_won = true;
                                charged = replica_done;
                            }
                        }
                    }
                }
            }
        }
        trace.elapsed += charged;
        let now = ctx.advance(charged);
        if let Some(spans) = spans.as_deref_mut() {
            let mut span = Span::new(SpanKind::Attempt, endpoint.id().to_string());
            span.sim_us = charged.as_micros();
            span.outcome = match &out.result {
                Ok(()) if hedged => SpanOutcome::Hedged,
                Ok(()) if is_failover => SpanOutcome::FailedOver,
                Ok(()) if out.retries() > 0 => SpanOutcome::Retried,
                Ok(()) => SpanOutcome::Ok,
                Err(_) => SpanOutcome::Failed,
            };
            if hedged {
                span.attr("hedge", if hedge_won { "win" } else { "loss" });
            }
            if out.retries() > 0 {
                span.attr("retries", out.retries().to_string());
            }
            if let Err(e) = &out.result {
                span.attr("error", e.to_string());
            }
            spans.push(span);
        }
        match out.result {
            Ok(()) => {
                if let Some(b) = &breaker {
                    b.record_success(now);
                }
                return (Ok(trace.elapsed), trace);
            }
            Err(e) => {
                if let Some(b) = &breaker {
                    b.record_failure(now);
                }
                if out.deadline_hit {
                    // The budget expired mid-retry (possibly during a
                    // backoff wait): stop immediately and label the
                    // failure honestly — failover cannot fit in zero
                    // remaining budget.
                    trace.deadline_hits += 1;
                    note_deadline_exceeded();
                    last_err =
                        Some(S2sError::DeadlineExceeded { source: source_label.to_string() });
                    break;
                }
                let error = S2sError::Net(e);
                let transient = error.failure_class() == FailureClass::Transient;
                last_err = Some(error);
                if !transient {
                    break;
                }
            }
        }
    }
    let error =
        last_err.unwrap_or_else(|| S2sError::CircuitOpen { source: source_label.to_string() });
    (Err(error), trace)
}

/// Decorrelates the hedge attempt's jitter stream from the replica's
/// ordinary failover stream, so hedged and non-hedged runs stay
/// independently deterministic.
const HEDGE_SEED_SALT: u64 = 0x9e37_79b9_97f4_a7c5;

/// Bumps the process-wide deadline-exceeded counter (no-op while
/// observability is disabled).
fn note_deadline_exceeded() {
    if s2s_obs::enabled() {
        s2s_obs::global().counter(s2s_obs::names::OVERLOAD_DEADLINE_EXCEEDED_TOTAL).inc();
    }
}

/// The local half of a task: [`prepare_values`] plus wire-size
/// accounting (request frame carrying the rule text plus response frame
/// carrying the values). Returns the source, the values, the total
/// exchange bytes, and the response payload length.
fn prepare_task<'a>(
    registry: &'a SourceRegistry,
    mapping: &AttributeMapping,
    rules: &RuleCache,
) -> Result<(&'a RegisteredSource, Vec<String>, usize, usize), S2sError> {
    let source = registry.require(mapping.source())?;
    let values = prepare_values(registry, mapping, rules)?;
    let response_len: usize = values.iter().map(String::len).sum();
    let bytes = exchange_size(mapping.rule().text().len(), response_len);
    Ok((source, values, bytes, response_len))
}

/// Source lookup, rule/kind check, wrapper run, and scenario
/// truncation — everything local; no wire accounting. Also the
/// pushdown planner's pricing oracle: it runs baseline rules locally
/// to size the exchanges a rewrite avoids.
pub(crate) fn prepare_values(
    registry: &SourceRegistry,
    mapping: &AttributeMapping,
    rules: &RuleCache,
) -> Result<Vec<String>, S2sError> {
    let source = registry.require(mapping.source())?;
    if !mapping.rule().compatible_with(source.kind()) {
        return Err(S2sError::RuleSourceMismatch {
            attribute: mapping.path().to_string(),
            message: format!(
                "{} rule cannot run against a {} source",
                mapping.rule().language(),
                source.kind()
            ),
        });
    }

    let mut values = run_wrapper(source.connection(), mapping.rule(), rules)?;
    if mapping.scenario() == RecordScenario::SingleRecord {
        values.truncate(1);
    }
    Ok(values)
}

/// Dispatches to the per-source-type extractor (paper: "for Web pages,
/// the extraction rules are delegated to a Web wrapper, for databases to
/// a database extractor, and so on"), executing the cached compiled
/// form of the rule.
fn run_wrapper(
    connection: &Connection,
    rule: &ExtractionRule,
    rules: &RuleCache,
) -> Result<Vec<String>, S2sError> {
    let compiled = rules.get_or_compile(rule)?;
    match (connection, compiled) {
        (Connection::Database { db }, CompiledRule::Sql(stmt)) => {
            let ExtractionRule::Sql { column, .. } = rule else { unreachable!() };
            let result = db.query_prepared(&stmt)?;
            let idx = result.column_index(column).ok_or_else(|| {
                S2sError::Db(s2s_minidb::DbError::UnknownColumn { column: column.clone() })
            })?;
            Ok(result
                .rows()
                .iter()
                .filter(|row| !row[idx].is_null())
                .map(|row| row[idx].render())
                .collect())
        }
        (Connection::Xml { document }, CompiledRule::XPath(xpath)) => {
            Ok(xpath.eval_strings(document))
        }
        (Connection::Xml { document }, CompiledRule::XQuery(xquery)) => Ok(xquery.eval(document)),
        (Connection::Web { store, url }, CompiledRule::Webl(program)) => {
            run_webl(&program, store, url, true)
        }
        (Connection::Text { store, url }, CompiledRule::Webl(program)) => {
            run_webl(&program, store, url, false)
        }
        (
            Connection::Web { store, url } | Connection::Text { store, url },
            CompiledRule::Regex(re),
        ) => {
            let ExtractionRule::TextRegex { group, .. } = rule else { unreachable!() };
            let doc = store.fetch(url)?;
            let text = doc.text();
            Ok(re
                .find_iter(&text)
                .filter_map(|m| m.get(*group).map(|c| c.text().to_string()))
                .collect())
        }
        _ => Err(S2sError::RuleSourceMismatch {
            attribute: String::new(),
            message: "unsupported rule/source combination".to_string(),
        }),
    }
}

/// Runs a compiled WebL program against a fetched page with the
/// standard `PAGE`/`URL` bindings; `html` distinguishes the web wrapper
/// from the plain-text extractor.
fn run_webl(
    program: &WeblProgram,
    store: &Arc<WebStore>,
    url: &str,
    html: bool,
) -> Result<Vec<String>, S2sError> {
    let doc = store.fetch(url)?;
    let mut env = BTreeMap::new();
    env.insert(
        "PAGE".to_string(),
        WeblValue::Page {
            url: url.to_string(),
            source: doc.raw().to_string(),
            html: html && doc.is_html(),
        },
    );
    env.insert("URL".to_string(), WeblValue::Str(url.to_string()));
    let value = program.run_with(store, env)?;
    Ok(flatten_webl(value))
}

fn flatten_webl(value: WeblValue) -> Vec<String> {
    match value {
        WeblValue::List(items) => items.iter().map(WeblValue::to_text).collect(),
        other => {
            let t = other.to_text();
            if t.is_empty() {
                Vec::new()
            } else {
                vec![t]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use crate::mapping::MappingModule;
    use crate::source::Connection;
    use s2s_minidb::Database;
    use s2s_netsim::{CostModel, FailureModel};
    use s2s_owl::Ontology;
    use s2s_webdoc::WebStore;
    use std::sync::Arc;

    fn onto() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .datatype_property("brand", "Product", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .datatype_property("price", "Product", s2s_rdf::vocab::xsd::DECIMAL)
            .unwrap()
            .build()
            .unwrap()
    }

    fn registry() -> SourceRegistry {
        let mut db = Database::new("catalog");
        db.execute("CREATE TABLE w (id INTEGER PRIMARY KEY, brand TEXT, price REAL)").unwrap();
        db.execute("INSERT INTO w VALUES (1,'Seiko',129.99),(2,'Casio',59.5),(3,NULL,1.0)")
            .unwrap();

        let doc = s2s_xml::parse(
            "<catalog><w><brand>Orient</brand></w><w><brand>Tissot</brand></w></catalog>",
        )
        .unwrap();

        let mut web = WebStore::new();
        web.register_html("http://shop/81", "<p><b>Seiko Men's Automatic Dive Watch</b></p>");
        web.register_text("http://files/p.txt", "brand: Fossil\nbrand: Timex\n");
        let web = Arc::new(web);

        let mut r = SourceRegistry::new();
        r.register_local("DB_ID_45", Connection::Database { db: Arc::new(db) }).unwrap();
        r.register_local("XML_7", Connection::Xml { document: Arc::new(doc) }).unwrap();
        r.register_local(
            "wpage_81",
            Connection::Web { store: web.clone(), url: "http://shop/81".into() },
        )
        .unwrap();
        r.register_local(
            "txt_1",
            Connection::Text { store: web, url: "http://files/p.txt".into() },
        )
        .unwrap();
        r
    }

    fn module() -> MappingModule {
        let o = onto();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql {
                query: "SELECT brand FROM w ORDER BY id".into(),
                column: "brand".into(),
            },
            "DB_ID_45".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        m
    }

    #[test]
    fn sql_wrapper_extracts_column_skipping_nulls() {
        let r = registry();
        let m = module();
        let mapping = m.iter().next().unwrap().clone();
        let (values, _) = extract_one(&r, &mapping).unwrap();
        assert_eq!(values, ["Seiko", "Casio"]);
    }

    #[test]
    fn xpath_wrapper_extracts() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::XPath { path: "//w/brand/text()".into() },
            "XML_7".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let (values, _) = extract_one(&r, m.iter().next().unwrap()).unwrap();
        assert_eq!(values, ["Orient", "Tissot"]);
    }

    #[test]
    fn webl_wrapper_with_bound_page() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Webl {
                program: r#"
                    var m = Str_Search(Text(PAGE), "<p><b>" + `[0-9a-zA-Z']+`);
                    var parts = Str_Split(m[0][0], "<>");
                    var brand = parts[2];
                "#
                .into(),
            },
            "wpage_81".into(),
            RecordScenario::SingleRecord,
        )
        .unwrap();
        let (values, _) = extract_one(&r, m.iter().next().unwrap()).unwrap();
        assert_eq!(values, ["Seiko"]);
    }

    #[test]
    fn text_regex_wrapper_multi_match() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::TextRegex { pattern: r"brand: (\w+)".into(), group: 1 },
            "txt_1".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let (values, _) = extract_one(&r, m.iter().next().unwrap()).unwrap();
        assert_eq!(values, ["Fossil", "Timex"]);
    }

    #[test]
    fn single_record_truncates() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::TextRegex { pattern: r"brand: (\w+)".into(), group: 1 },
            "txt_1".into(),
            RecordScenario::SingleRecord,
        )
        .unwrap();
        let (values, _) = extract_one(&r, m.iter().next().unwrap()).unwrap();
        assert_eq!(values, ["Fossil"]);
    }

    #[test]
    fn rule_source_mismatch_detected() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT 1".into(), column: "a".into() },
            "wpage_81".into(),
            RecordScenario::SingleRecord,
        )
        .unwrap();
        assert!(matches!(
            extract_one(&r, m.iter().next().unwrap()),
            Err(S2sError::RuleSourceMismatch { .. })
        ));
    }

    #[test]
    fn obtain_schemas_requires_mapping() {
        let m = module();
        let err = ExtractorManager::obtain_schemas(&m, &["thing.product.price".parse().unwrap()]);
        assert!(matches!(err, Err(S2sError::UnmappedAttribute { .. })));
        let ok = ExtractorManager::obtain_schemas(&m, &["thing.product.brand".parse().unwrap()])
            .unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn mediator_collects_results_and_failures() {
        let o = onto();
        let r = registry();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT brand FROM w".into(), column: "brand".into() },
            "DB_ID_45".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        m.register(
            &o,
            "thing.product.price".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT oops FROM w".into(), column: "oops".into() },
            "DB_ID_45".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let schemas = ExtractorManager::obtain_schemas(
            &m,
            &["thing.product.brand".parse().unwrap(), "thing.product.price".parse().unwrap()],
        )
        .unwrap();
        let report = ExtractorManager::extract(&r, schemas, Strategy::Serial);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.failures.len(), 1);
        assert!(!report.is_complete());
        assert_eq!(report.value_count(), 2);
        assert!(report.failures[0].attribute.contains("price"));
    }

    /// A mixed fixture over every source of [`registry`]: seven
    /// attributes spread across the database, XML, and text sources,
    /// including a rule that fails at execution (unknown column) and one
    /// that fails to compile (broken regex), so equivalence covers
    /// failures too.
    fn mixed_fixture() -> (MappingModule, Vec<s2s_owl::AttributePath>) {
        let mut builder =
            Ontology::builder("http://example.org/schema#").class("Product", None).unwrap();
        for i in 0..7 {
            builder = builder
                .datatype_property(&format!("a{i}"), "Product", s2s_rdf::vocab::xsd::STRING)
                .unwrap();
        }
        let o = builder.build().unwrap();
        let entries: [(ExtractionRule, &str); 7] = [
            (
                ExtractionRule::Sql { query: "SELECT brand FROM w".into(), column: "brand".into() },
                "DB_ID_45",
            ),
            (
                ExtractionRule::Sql { query: "SELECT price FROM w".into(), column: "price".into() },
                "DB_ID_45",
            ),
            (
                ExtractionRule::Sql { query: "SELECT nope FROM w".into(), column: "nope".into() },
                "DB_ID_45",
            ),
            (ExtractionRule::XPath { path: "//w/brand/text()".into() }, "XML_7"),
            (ExtractionRule::TextRegex { pattern: r"brand: (\w+)".into(), group: 1 }, "txt_1"),
            (ExtractionRule::TextRegex { pattern: "(unclosed".into(), group: 0 }, "txt_1"),
            (ExtractionRule::XPath { path: "//w/missing/text()".into() }, "XML_7"),
        ];
        let mut m = MappingModule::new();
        let mut paths = Vec::new();
        for (i, (rule, source)) in entries.into_iter().enumerate() {
            let path: s2s_owl::AttributePath = format!("thing.product.a{i}").parse().unwrap();
            m.register(&o, path.clone(), rule, source.into(), RecordScenario::MultiRecord).unwrap();
            paths.push(path);
        }
        (m, paths)
    }

    /// Comparable view of a report: per-attribute values plus failure
    /// attribution (error text included, so "same failure" means the
    /// same error, not just the same count).
    fn outcome_key(rep: &ExtractionReport) -> (Vec<(String, Vec<String>)>, Vec<String>) {
        let mut values: Vec<(String, Vec<String>)> = rep
            .results
            .iter()
            .map(|x| (format!("{}@{}", x.mapping.path(), x.mapping.source()), x.values.clone()))
            .collect();
        values.sort();
        let mut failures: Vec<String> = rep
            .failures
            .iter()
            .map(|f| format!("{}@{}: {}", f.attribute, f.source, f.error))
            .collect();
        failures.sort();
        (values, failures)
    }

    #[test]
    fn parallel_equals_serial_results() {
        // Property-style equivalence: batched, per-attribute parallel,
        // and serial extraction must produce identical results *and*
        // identical failures for arbitrary schema subsets.
        let r = registry();
        let (m, paths) = mixed_fixture();
        let all = ExtractorManager::obtain_schemas(&m, &paths).unwrap();
        assert_eq!(all.len(), 7);
        // Every subset of the schema batch (including empty and full).
        for mask in 0..(1u32 << all.len()) {
            let subset: Vec<ExtractionSchema> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, s)| s.clone())
                .collect();
            let ctx = ResilienceContext::new(ResiliencePolicy::none());
            let rules = RuleCache::new();
            let serial = ExtractorManager::extract(&r, subset.clone(), Strategy::Serial);
            let parallel =
                ExtractorManager::extract(&r, subset.clone(), Strategy::Parallel { workers: 4 });
            let batched = ExtractorManager::extract_batched(
                &r,
                subset,
                Strategy::Parallel { workers: 4 },
                &ctx,
                &rules,
            );
            let key = outcome_key(&serial);
            assert_eq!(key, outcome_key(&parallel), "subset {mask:#b}");
            assert_eq!(key, outcome_key(&batched), "subset {mask:#b}");
        }
    }

    #[test]
    fn batched_results_preserve_submission_order() {
        let r = registry();
        let (m, paths) = mixed_fixture();
        let schemas = ExtractorManager::obtain_schemas(&m, &paths).unwrap();
        let ctx = ResilienceContext::new(ResiliencePolicy::none());
        let serial = ExtractorManager::extract(&r, schemas.clone(), Strategy::Serial);
        let batched = ExtractorManager::extract_batched(
            &r,
            schemas,
            Strategy::Serial,
            &ctx,
            &RuleCache::new(),
        );
        let order = |rep: &ExtractionReport| {
            rep.results
                .iter()
                .map(|x| format!("{}@{}", x.mapping.path(), x.mapping.source()))
                .collect::<Vec<_>>()
        };
        assert_eq!(order(&serial), order(&batched));
        let failure_order = |rep: &ExtractionReport| {
            rep.failures.iter().map(|f| f.source.clone()).collect::<Vec<_>>()
        };
        assert_eq!(failure_order(&serial), failure_order(&batched));
    }

    #[test]
    fn batching_coalesces_round_trips_per_source() {
        // 3 attributes on one remote source: the per-attribute path
        // pays 3 exchanges, the batched path exactly one.
        let o = onto();
        let (r, _) = flaky_registry(FailureModel::reliable(), &[]);
        let mut m = MappingModule::new();
        for (path, col) in [("thing.product.brand", "brand"), ("thing.product.price", "brand")] {
            m.register(
                &o,
                path.parse().unwrap(),
                ExtractionRule::Sql { query: format!("SELECT {col} FROM t"), column: col.into() },
                "R".into(),
                RecordScenario::MultiRecord,
            )
            .unwrap();
        }
        let paths: Vec<s2s_owl::AttributePath> =
            vec!["thing.product.brand".parse().unwrap(), "thing.product.price".parse().unwrap()];
        let schemas = ExtractorManager::obtain_schemas(&m, &paths).unwrap();
        let ctx = ResilienceContext::new(ResiliencePolicy::none());
        let report = ExtractorManager::extract_batched(
            &r,
            schemas,
            Strategy::Serial,
            &ctx,
            &RuleCache::new(),
        );
        assert!(report.is_complete(), "{:?}", report.failures);
        let health = &report.resilience["R"];
        assert_eq!(health.tasks, 2);
        assert_eq!(health.attempts, 1, "batch must cross the wire once");
        assert_eq!(r.get(&"R".into()).unwrap().endpoint().stats().calls, 1);
        assert!(health.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn batch_retries_as_a_unit() {
        // ~50% flaky source, generous retries: the batch either fully
        // succeeds or fully fails, and retry counters are per-exchange,
        // not per-attribute.
        let (r, _) = flaky_registry(FailureModel::flaky(0.5), &[]);
        let o = onto();
        let mut m = MappingModule::new();
        for path in ["thing.product.brand", "thing.product.price"] {
            m.register(
                &o,
                path.parse().unwrap(),
                ExtractionRule::Sql { query: "SELECT brand FROM t".into(), column: "brand".into() },
                "R".into(),
                RecordScenario::MultiRecord,
            )
            .unwrap();
        }
        let paths: Vec<s2s_owl::AttributePath> =
            vec!["thing.product.brand".parse().unwrap(), "thing.product.price".parse().unwrap()];
        let schemas = ExtractorManager::obtain_schemas(&m, &paths).unwrap();
        let ctx =
            ResilienceContext::new(ResiliencePolicy::none().with_retry(RetryPolicy::attempts(8)));
        let report = ExtractorManager::extract_batched(
            &r,
            schemas,
            Strategy::Serial,
            &ctx,
            &RuleCache::new(),
        );
        assert!(report.is_complete(), "8 attempts at p=0.5 should land: {:?}", report.failures);
        let health = &report.resilience["R"];
        assert_eq!(health.attempts, r.get(&"R".into()).unwrap().endpoint().stats().calls);
        assert_eq!(health.retries, health.attempts - 1, "one exchange, rest are retries");
        // Both attribute results carry the same batch elapsed.
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.results[0].elapsed, report.results[1].elapsed);
    }

    #[test]
    fn batch_fails_over_as_a_unit() {
        let o = onto();
        let (r, _) = flaky_registry(FailureModel::unreachable(), &[FailureModel::reliable()]);
        let mut m = MappingModule::new();
        for path in ["thing.product.brand", "thing.product.price"] {
            m.register(
                &o,
                path.parse().unwrap(),
                ExtractionRule::Sql { query: "SELECT brand FROM t".into(), column: "brand".into() },
                "R".into(),
                RecordScenario::MultiRecord,
            )
            .unwrap();
        }
        let paths: Vec<s2s_owl::AttributePath> =
            vec!["thing.product.brand".parse().unwrap(), "thing.product.price".parse().unwrap()];
        let schemas = ExtractorManager::obtain_schemas(&m, &paths).unwrap();
        let ctx = ResilienceContext::new(ResiliencePolicy::default());
        let report = ExtractorManager::extract_batched(
            &r,
            schemas,
            Strategy::Serial,
            &ctx,
            &RuleCache::new(),
        );
        assert!(report.is_complete(), "{:?}", report.failures);
        let health = &report.resilience["R"];
        // One failover for the whole batch, not one per attribute.
        assert_eq!(health.failovers, 1);
        assert_eq!(health.attempts, 2);
        assert_eq!(health.tasks, 2);
    }

    #[test]
    fn batch_trips_breaker_and_reports_all_rules_failed() {
        let o = onto();
        let (r, _) = flaky_registry(FailureModel::unreachable(), &[]);
        let mut m = MappingModule::new();
        for path in ["thing.product.brand", "thing.product.price"] {
            m.register(
                &o,
                path.parse().unwrap(),
                ExtractionRule::Sql { query: "SELECT brand FROM t".into(), column: "brand".into() },
                "R".into(),
                RecordScenario::MultiRecord,
            )
            .unwrap();
        }
        let paths: Vec<s2s_owl::AttributePath> =
            vec!["thing.product.brand".parse().unwrap(), "thing.product.price".parse().unwrap()];
        let schemas = ExtractorManager::obtain_schemas(&m, &paths).unwrap();
        let policy = ResiliencePolicy::none()
            .with_breaker(BreakerConfig::new(2, SimDuration::from_millis(60_000)));
        let ctx = ResilienceContext::new(policy);
        let rules = RuleCache::new();
        let mut failures = Vec::new();
        for _ in 0..4 {
            let report = ExtractorManager::extract_batched(
                &r,
                schemas.clone(),
                Strategy::Serial,
                &ctx,
                &rules,
            );
            // The failed exchange fails every batched rule.
            assert_eq!(report.failures.len(), 2);
            failures.extend(report.failures);
        }
        // Two real exchanges tripped the breaker; later batches were
        // rejected without touching the endpoint.
        assert_eq!(r.get(&"R".into()).unwrap().endpoint().stats().calls, 2);
        assert_eq!(ctx.breaker("R").unwrap().state(), BreakerState::Open);
        assert!(failures[4..].iter().all(|f| matches!(f.error, S2sError::CircuitOpen { .. })));
    }

    #[test]
    fn breaker_rejected_primary_is_not_a_failover() {
        // Regression: skipping past a breaker-rejected primary used to
        // count as a failover even though no network attempt was made.
        let (r, m) = flaky_registry(FailureModel::unreachable(), &[FailureModel::reliable()]);
        let policy = ResiliencePolicy::default()
            .with_breaker(BreakerConfig::new(1, SimDuration::from_millis(60_000)));
        let ctx = ResilienceContext::new(policy);
        // First task: real attempt on the primary fails (tripping its
        // breaker), then a genuine failover to the replica.
        let first = ExtractorManager::extract_with(&r, brand_schemas(&m), Strategy::Serial, &ctx);
        assert!(first.is_complete());
        assert_eq!(first.resilience["R"].failovers, 1);
        assert_eq!(ctx.breaker("R").unwrap().state(), BreakerState::Open);
        // Second task: the primary is breaker-rejected with no attempt,
        // so serving from the replica is not a failover.
        let second = ExtractorManager::extract_with(&r, brand_schemas(&m), Strategy::Serial, &ctx);
        assert!(second.is_complete());
        let health = &second.resilience["R"];
        assert_eq!(health.breaker_rejections, 1);
        assert_eq!(health.attempts, 1);
        assert_eq!(health.failovers, 0, "no real attempt preceded the switch");
    }

    #[test]
    fn wrapper_error_does_not_sink_its_batch() {
        let o = onto();
        let (r, _) = flaky_registry(FailureModel::reliable(), &[]);
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT brand FROM t".into(), column: "brand".into() },
            "R".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        m.register(
            &o,
            "thing.product.price".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT oops FROM t".into(), column: "oops".into() },
            "R".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let paths: Vec<s2s_owl::AttributePath> =
            vec!["thing.product.brand".parse().unwrap(), "thing.product.price".parse().unwrap()];
        let schemas = ExtractorManager::obtain_schemas(&m, &paths).unwrap();
        let ctx = ResilienceContext::new(ResiliencePolicy::none());
        let report = ExtractorManager::extract_batched(
            &r,
            schemas,
            Strategy::Serial,
            &ctx,
            &RuleCache::new(),
        );
        // The bad rule fails individually; the good rule still ships in
        // a 1-section batch.
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].attribute.contains("price"));
        assert_eq!(report.resilience["R"].attempts, 1);
        assert_eq!(report.resilience["R"].failed_tasks, 1);
    }

    #[test]
    fn rule_cache_is_shared_across_batched_tasks() {
        let r = registry();
        let (m, paths) = mixed_fixture();
        let schemas = ExtractorManager::obtain_schemas(&m, &paths).unwrap();
        let ctx = ResilienceContext::new(ResiliencePolicy::none());
        let rules = RuleCache::new();
        let _ =
            ExtractorManager::extract_batched(&r, schemas.clone(), Strategy::Serial, &ctx, &rules);
        let first = rules.stats();
        assert_eq!(first, CacheStats { hits: 0, misses: 7, evictions: 0 });
        // 6 of 7 rules compile (the broken regex never caches; the
        // unknown-column SQL parses fine and only fails at execution).
        assert_eq!(rules.len(), 6);
        let _ = ExtractorManager::extract_batched(&r, schemas, Strategy::Serial, &ctx, &rules);
        let second = rules.stats();
        assert_eq!(second.misses - first.misses, 1, "only the broken regex recompiles");
        assert_eq!(second.hits, 6);
    }

    #[test]
    fn remote_failure_injection_surfaces_as_net_error() {
        let o = onto();
        let mut db = Database::new("d");
        db.execute("CREATE TABLE t (a TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES ('x')").unwrap();
        let mut r = SourceRegistry::new();
        r.register_remote(
            "FLAKY",
            Connection::Database { db: Arc::new(db) },
            CostModel::lan(),
            FailureModel {
                p_unreachable: 1.0,
                p_timeout: 0.0,
                timeout: SimDuration::from_millis(1),
            },
        )
        .unwrap();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT a FROM t".into(), column: "a".into() },
            "FLAKY".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        assert!(matches!(extract_one(&r, m.iter().next().unwrap()), Err(S2sError::Net(_))));
    }

    /// A registry with one remote database source `R`: primary with the
    /// given failure model, plus any replicas.
    fn flaky_registry(
        primary: FailureModel,
        replicas: &[FailureModel],
    ) -> (SourceRegistry, MappingModule) {
        let o = onto();
        let mut db = Database::new("d");
        db.execute("CREATE TABLE t (brand TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES ('X')").unwrap();
        let mut r = SourceRegistry::new();
        r.register_remote_with_replicas(
            "R",
            Connection::Database { db: Arc::new(db) },
            CostModel::lan(),
            primary,
            replicas,
        )
        .unwrap();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT brand FROM t".into(), column: "brand".into() },
            "R".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        (r, m)
    }

    fn brand_schemas(m: &MappingModule) -> Vec<ExtractionSchema> {
        ExtractorManager::obtain_schemas(m, &["thing.product.brand".parse().unwrap()]).unwrap()
    }

    #[test]
    fn failover_reaches_healthy_replica() {
        let (r, m) = flaky_registry(FailureModel::unreachable(), &[FailureModel::reliable()]);
        let ctx = ResilienceContext::new(ResiliencePolicy::default());
        let report = ExtractorManager::extract_with(&r, brand_schemas(&m), Strategy::Serial, &ctx);
        assert!(report.is_complete(), "{:?}", report.failures);
        assert_eq!(report.completeness(), 1.0);
        let health = &report.resilience["R"];
        assert_eq!(health.failovers, 1);
        assert_eq!(health.attempts, 2);
        assert_eq!(health.failed_tasks, 0);
    }

    #[test]
    fn failover_disabled_keeps_failure_on_primary() {
        let (r, m) = flaky_registry(FailureModel::unreachable(), &[FailureModel::reliable()]);
        let ctx = ResilienceContext::new(ResiliencePolicy::none());
        let report = ExtractorManager::extract_with(&r, brand_schemas(&m), Strategy::Serial, &ctx);
        assert!(!report.is_complete());
        assert_eq!(report.completeness(), 0.0);
        let health = &report.resilience["R"];
        assert_eq!(health.failovers, 0);
        assert_eq!(health.failed_tasks, 1);
        assert!(matches!(
            report.failures[0].error,
            S2sError::Net(s2s_netsim::NetError::Unreachable { .. })
        ));
    }

    #[test]
    fn open_breaker_stops_calling_a_dead_source() {
        let (r, m) = flaky_registry(FailureModel::unreachable(), &[]);
        let policy = ResiliencePolicy::none()
            .with_breaker(BreakerConfig::new(2, SimDuration::from_millis(60_000)));
        let ctx = ResilienceContext::new(policy);
        let mut failures = Vec::new();
        for _ in 0..8 {
            let report =
                ExtractorManager::extract_with(&r, brand_schemas(&m), Strategy::Serial, &ctx);
            failures.extend(report.failures);
        }
        // Two real attempts tripped the breaker; the remaining six tasks
        // were rejected without touching the endpoint.
        let endpoint = r.get(&"R".into()).unwrap().endpoint().clone();
        assert_eq!(endpoint.stats().calls, 2, "breaker failed to short-circuit");
        assert_eq!(ctx.breaker("R").unwrap().state(), BreakerState::Open);
        assert_eq!(failures.len(), 8);
        assert!(failures[7..].iter().all(|f| matches!(f.error, S2sError::CircuitOpen { .. })));
    }

    #[test]
    fn breaker_cooldown_admits_probe_after_clock_advance() {
        let (r, m) = flaky_registry(FailureModel::unreachable(), &[]);
        let policy = ResiliencePolicy::none()
            .with_breaker(BreakerConfig::new(1, SimDuration::from_millis(100)));
        let ctx = ResilienceContext::new(policy);
        let _ = ExtractorManager::extract_with(&r, brand_schemas(&m), Strategy::Serial, &ctx);
        assert_eq!(ctx.breaker("R").unwrap().state(), BreakerState::Open);
        ctx.advance_clock(SimDuration::from_millis(200));
        let _ = ExtractorManager::extract_with(&r, brand_schemas(&m), Strategy::Serial, &ctx);
        // The probe was admitted (and failed again): the endpoint saw a
        // second real call.
        let endpoint = r.get(&"R".into()).unwrap().endpoint().clone();
        assert_eq!(endpoint.stats().calls, 2);
        assert_eq!(ctx.breaker("R").unwrap().counters().half_opened, 1);
    }

    #[test]
    fn wrapper_errors_are_permanent_and_skip_failover() {
        let o = onto();
        let (r, _) = flaky_registry(FailureModel::reliable(), &[FailureModel::reliable()]);
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.product.brand".parse().unwrap(),
            ExtractionRule::Sql { query: "SELECT oops FROM t".into(), column: "oops".into() },
            "R".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let ctx = ResilienceContext::new(
            ResiliencePolicy::default().with_retry(RetryPolicy::attempts(3)),
        );
        let report = ExtractorManager::extract_with(&r, brand_schemas(&m), Strategy::Serial, &ctx);
        assert!(!report.is_complete());
        let health = &report.resilience["R"];
        // The failure happened in the wrapper, before any network leg:
        // no attempts, no retries, no failover.
        assert_eq!((health.attempts, health.retries, health.failovers), (0, 0, 0));
        assert_eq!(report.failures[0].error.failure_class(), FailureClass::Permanent);
    }

    #[test]
    fn completeness_ratio_reflects_partial_results() {
        let report = ExtractionReport::default();
        assert_eq!(report.completeness(), 1.0);
        let (r, m) = flaky_registry(FailureModel::unreachable(), &[]);
        let mut schemas = brand_schemas(&m);
        schemas.extend(brand_schemas(&m));
        let ctx = ResilienceContext::new(ResiliencePolicy::none());
        let report = ExtractorManager::extract_with(&r, schemas, Strategy::Serial, &ctx);
        assert_eq!(report.completeness(), 0.0);
    }

    #[test]
    fn simulated_time_parallel_not_more_than_serial() {
        let o = onto();
        let mut r = SourceRegistry::new();
        let mut m = MappingModule::new();
        for i in 0..6 {
            let mut db = Database::new("d");
            db.execute("CREATE TABLE t (brand TEXT)").unwrap();
            db.execute("INSERT INTO t VALUES ('X')").unwrap();
            let id = format!("DB_{i}");
            r.register_remote(
                id.as_str(),
                Connection::Database { db: Arc::new(db) },
                CostModel::wan(),
                FailureModel::reliable(),
            )
            .unwrap();
            m.register(
                &o,
                "thing.product.brand".parse().unwrap(),
                ExtractionRule::Sql { query: "SELECT brand FROM t".into(), column: "brand".into() },
                id.as_str().into(),
                RecordScenario::MultiRecord,
            )
            .unwrap();
        }
        let schemas =
            ExtractorManager::obtain_schemas(&m, &["thing.product.brand".parse().unwrap()])
                .unwrap();
        assert_eq!(schemas.len(), 6);
        let report = ExtractorManager::extract(&r, schemas, Strategy::Parallel { workers: 6 });
        assert!(report.is_complete());
        assert!(report.simulated < report.simulated_serial);
    }
}
