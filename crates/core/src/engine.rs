//! The resident engine's query-level caches.
//!
//! The paper's mediator handles one query at a time; a resident,
//! concurrently shared [`crate::middleware::S2s`] adds two cache layers
//! *above* the extraction and compiled-rule caches:
//!
//! * [`PlanCache`] — memoizes the parse/validate/plan front half of
//!   query handling, keyed on [`crate::query::normalize`]d S2SQL text.
//!   LRU-bounded; each entry carries a [`DependencySet`] naming the
//!   sources its class was mapped to at plan time, and a mapping edit
//!   drops exactly the plans that named the edited source. (Plans are
//!   derived from the immutable ontology plus the query text alone, so
//!   the drop is a bounded hygiene measure, not a correctness
//!   requirement — a re-derived plan is always identical.)
//! * [`QueryResultCache`] — memoizes whole query answers (the
//!   [`InstanceSet`] plus the stats of the run that produced it),
//!   same normalized key, LRU + optional TTL in *simulated* time.
//!   Invalidation is **dependency-tracked**: each entry records the
//!   `(source, version)` set the producing run read, a data mutation or
//!   mapping edit drops only the entries whose dependency set
//!   intersects the change, and admission re-checks the recorded
//!   versions against a per-source invalidation floor so a query that
//!   raced a mutation can never install a stale answer. Registering a
//!   *new* source or attribute still clears wholesale — cached answers
//!   may be missing data the newcomer would have contributed, which no
//!   per-entry dependency set can see. Only complete, failure-free
//!   answers are admitted, so a degraded result is never replayed after
//!   the sources recover.
//!
//! Both caches key on the normalized text rather than the parsed query
//! so a hit skips the parser entirely; normalization is injective with
//! respect to the parser's token stream, so two queries share a key
//! only if the parser cannot tell them apart.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use s2s_netsim::SimDuration;

use crate::cache::{evict_lru, CacheStats};
use crate::instance::InstanceSet;
use crate::middleware::QueryStats;
use crate::query::QueryPlan;

/// The `(source, version)` dependencies a cached artifact read,
/// captured under the registry read lock of the producing run.
///
/// Surgical invalidation intersects a mutation with these sets: an
/// entry is dropped only if it depends on the mutated source at a
/// version older than the mutation's.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencySet {
    sources: BTreeMap<String, u64>,
}

impl DependencySet {
    /// An empty dependency set (depends on nothing; never dropped by
    /// targeted invalidation).
    pub fn new() -> Self {
        DependencySet::default()
    }

    /// Records that the artifact read `source` at data `version`.
    /// Re-recording keeps the *older* version: if a run somehow saw two
    /// versions, the entry must be dropped by any mutation after the
    /// first.
    pub fn record(&mut self, source: &str, version: u64) {
        self.sources
            .entry(source.to_string())
            .and_modify(|v| *v = (*v).min(version))
            .or_insert(version);
    }

    /// Whether the artifact read this source at all.
    pub fn depends_on(&self, source: &str) -> bool {
        self.sources.contains_key(source)
    }

    /// The version the artifact read this source at, if it did.
    pub fn version_of(&self, source: &str) -> Option<u64> {
        self.sources.get(source).copied()
    }

    /// Iterates the `(source, version)` pairs in source order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.sources.iter().map(|(s, v)| (s.as_str(), *v))
    }

    /// Number of sources depended on.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

#[derive(Debug)]
struct PlanEntry {
    plan: Arc<QueryPlan>,
    deps: DependencySet,
    stamp: AtomicU64,
}

/// An LRU-bounded memo of validated query plans, keyed on normalized
/// S2SQL text. Parse/semantic errors are never cached: a bad query
/// re-reports its error each time.
#[derive(Debug)]
pub struct PlanCache {
    entries: RwLock<HashMap<String, PlanEntry>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// Default LRU capacity (distinct normalized query texts).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        PlanCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` plans (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            entries: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Looks up the plan for a normalized query text.
    pub fn get(&self, key: &str) -> Option<Arc<QueryPlan>> {
        let hit = {
            let entries = self.entries.read();
            entries.get(key).map(|e| {
                e.stamp.store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
                Arc::clone(&e.plan)
            })
        };
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        if s2s_obs::enabled() {
            let name = if hit.is_some() {
                s2s_obs::names::PLAN_CACHE_HITS_TOTAL
            } else {
                s2s_obs::names::PLAN_CACHE_MISSES_TOTAL
            };
            s2s_obs::global().counter(name).inc();
        }
        hit
    }

    /// Stores a plan with no recorded dependencies (never dropped by
    /// targeted invalidation), evicting the least recently used entry
    /// at capacity.
    pub fn insert(&self, key: String, plan: Arc<QueryPlan>) {
        self.insert_with_deps(key, plan, DependencySet::new());
    }

    /// Stores a plan together with the sources its class was mapped to
    /// at plan time, evicting the least recently used entry at
    /// capacity.
    pub fn insert_with_deps(&self, key: String, plan: Arc<QueryPlan>, deps: DependencySet) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.write();
        if !entries.contains_key(&key) && entries.len() >= self.capacity {
            evict_lru(&mut entries, |e: &PlanEntry| &e.stamp);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if s2s_obs::enabled() {
                s2s_obs::global().counter(s2s_obs::names::PLAN_CACHE_EVICTIONS_TOTAL).inc();
            }
        }
        entries.insert(key, PlanEntry { plan, deps, stamp: AtomicU64::new(stamp) });
    }

    /// Drops every plan whose dependency set names `source`, returning
    /// how many were dropped. Called when a mapping edit touches the
    /// source; plans that never read it survive.
    pub fn invalidate_source(&self, source: &str) -> usize {
        let dropped = {
            let mut entries = self.entries.write();
            let before = entries.len();
            entries.retain(|_, e| !e.deps.depends_on(source));
            before - entries.len()
        };
        self.invalidations.fetch_add(dropped as u64, Ordering::Relaxed);
        if dropped > 0 && s2s_obs::enabled() {
            s2s_obs::global()
                .counter(s2s_obs::names::PLAN_CACHE_INVALIDATIONS_TOTAL)
                .add(dropped as u64);
        }
        dropped
    }

    /// Entries dropped by targeted invalidation (distinct from LRU
    /// evictions).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Sizing and freshness policy for a [`QueryResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultCacheConfig {
    /// Maximum cached answers (min 1).
    pub capacity: usize,
    /// Time-to-live in *simulated* time, measured against the engine's
    /// resilience clock; `None` disables expiry (mutation invalidation
    /// still applies).
    pub ttl: Option<SimDuration>,
}

impl Default for ResultCacheConfig {
    fn default() -> Self {
        ResultCacheConfig { capacity: 128, ttl: None }
    }
}

/// A cache hit: the answer plus the provenance of the run that
/// produced it.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The plan of the original run.
    pub plan: Arc<QueryPlan>,
    /// The answer of the original run.
    pub instances: Arc<InstanceSet>,
    /// The stats of the original (cache-miss) run, so a hit can report
    /// the completeness and task shape of the answer it replays.
    pub origin: QueryStats,
}

#[derive(Debug)]
struct ResultEntry {
    plan: Arc<QueryPlan>,
    instances: Arc<InstanceSet>,
    origin: QueryStats,
    deps: DependencySet,
    inserted_at: SimDuration,
    stamp: AtomicU64,
}

/// Entries plus the per-source invalidation floor, guarded by one lock
/// so admission checks and invalidations are atomic with respect to
/// each other (the floor is what makes the admission-time version check
/// race-free: a mutation first raises the floor, then drops entries;
/// an insert whose dependencies predate the floor is refused even if it
/// lands after the drop).
#[derive(Debug, Default)]
struct ResultState {
    entries: HashMap<String, ResultEntry>,
    /// Highest mutation version seen per source: inserts that read an
    /// older version of the source are stale and refused.
    floors: HashMap<String, u64>,
}

/// An LRU + TTL memo of whole query answers, keyed on normalized S2SQL
/// text. See the module docs for the admission and invalidation rules.
#[derive(Debug)]
pub struct QueryResultCache {
    state: RwLock<ResultState>,
    config: ResultCacheConfig,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for QueryResultCache {
    fn default() -> Self {
        QueryResultCache::new(ResultCacheConfig::default())
    }
}

impl QueryResultCache {
    /// An empty cache with the given policy.
    pub fn new(config: ResultCacheConfig) -> Self {
        QueryResultCache {
            state: RwLock::new(ResultState::default()),
            config: ResultCacheConfig { capacity: config.capacity.max(1), ..config },
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The active policy.
    pub fn config(&self) -> ResultCacheConfig {
        self.config
    }

    /// Looks up the cached answer for a normalized query text at
    /// simulated instant `now`. An entry past its TTL is dropped and
    /// counted as a miss.
    pub fn get(&self, key: &str, now: SimDuration) -> Option<CachedResult> {
        let (hit, expired) = {
            let state = self.state.read();
            match state.entries.get(key) {
                Some(e) if self.fresh(e, now) => {
                    e.stamp.store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
                    (
                        Some(CachedResult {
                            plan: Arc::clone(&e.plan),
                            instances: Arc::clone(&e.instances),
                            origin: e.origin,
                        }),
                        false,
                    )
                }
                Some(_) => (None, true),
                None => (None, false),
            }
        };
        if expired {
            // Re-check under the write lock: a racing refresh may have
            // replaced the entry with a fresh one.
            let mut state = self.state.write();
            if state.entries.get(key).is_some_and(|e| !self.fresh(e, now)) {
                state.entries.remove(key);
            }
        }
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        if s2s_obs::enabled() {
            let name = if hit.is_some() {
                s2s_obs::names::RESULT_CACHE_HITS_TOTAL
            } else {
                s2s_obs::names::RESULT_CACHE_MISSES_TOTAL
            };
            s2s_obs::global().counter(name).inc();
        }
        hit
    }

    fn fresh(&self, e: &ResultEntry, now: SimDuration) -> bool {
        match self.config.ttl {
            Some(ttl) => now.saturating_sub(e.inserted_at) < ttl,
            None => true,
        }
    }

    /// Stores an answer produced at simulated instant `now` together
    /// with the `(source, version)` dependencies the producing run
    /// read, evicting the least recently used entry at capacity. The
    /// caller enforces answer-quality admission (complete, failure-free
    /// answers only); *this* method enforces freshness admission: if
    /// any recorded dependency predates the per-source invalidation
    /// floor — a mutation landed while the query was in flight — the
    /// stale answer is refused and `false` is returned.
    pub fn insert(
        &self,
        key: String,
        plan: Arc<QueryPlan>,
        instances: Arc<InstanceSet>,
        origin: QueryStats,
        deps: DependencySet,
        now: SimDuration,
    ) -> bool {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut state = self.state.write();
        let stale = deps
            .iter()
            .any(|(source, version)| state.floors.get(source).is_some_and(|f| version < *f));
        if stale {
            return false;
        }
        if !state.entries.contains_key(&key) && state.entries.len() >= self.config.capacity {
            evict_lru(&mut state.entries, |e: &ResultEntry| &e.stamp);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if s2s_obs::enabled() {
                s2s_obs::global().counter(s2s_obs::names::RESULT_CACHE_EVICTIONS_TOTAL).inc();
            }
        }
        state.entries.insert(
            key,
            ResultEntry {
                plan,
                instances,
                origin,
                deps,
                inserted_at: now,
                stamp: AtomicU64::new(stamp),
            },
        );
        true
    }

    /// Drops every cached answer — the fallback for mutations whose
    /// blast radius no dependency set can bound (registering a *new*
    /// source or attribute: existing answers may be missing data the
    /// newcomer would have contributed).
    pub fn invalidate_all(&self) {
        let dropped = {
            let mut state = self.state.write();
            let n = state.entries.len();
            state.entries.clear();
            n as u64
        };
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        if dropped > 0 && s2s_obs::enabled() {
            s2s_obs::global()
                .counter(s2s_obs::names::RESULT_CACHE_INVALIDATIONS_TOTAL)
                .add(dropped);
        }
    }

    /// Surgical invalidation for a mutation of `source` producing data
    /// `version`: raises the source's admission floor to `version`,
    /// then drops exactly the entries whose dependency set read the
    /// source at an older version. Entries that never read the source
    /// replay untouched. Returns how many entries were dropped.
    pub fn invalidate_source(&self, source: &str, version: u64) -> usize {
        let dropped = {
            let mut state = self.state.write();
            let floor = state.floors.entry(source.to_string()).or_insert(0);
            *floor = (*floor).max(version);
            let before = state.entries.len();
            state.entries.retain(|_, e| e.deps.version_of(source).is_none_or(|v| v >= version));
            before - state.entries.len()
        };
        self.invalidations.fetch_add(dropped as u64, Ordering::Relaxed);
        if dropped > 0 && s2s_obs::enabled() {
            s2s_obs::global()
                .counter(s2s_obs::names::RESULT_CACHE_INVALIDATIONS_TOTAL)
                .add(dropped as u64);
        }
        dropped
    }

    /// Drops every entry that read `source` at *any* version, without
    /// raising the admission floor — the mapping-edit path. The data
    /// version is unchanged (nothing at the source moved), but answers
    /// built under the displaced rule answer the wrong question.
    /// Registration holds `&mut S2s`, so no old-rule query can be in
    /// flight to race the drop. Returns how many entries were dropped.
    pub fn invalidate_dependents(&self, source: &str) -> usize {
        let dropped = {
            let mut state = self.state.write();
            let before = state.entries.len();
            state.entries.retain(|_, e| !e.deps.depends_on(source));
            before - state.entries.len()
        };
        self.invalidations.fetch_add(dropped as u64, Ordering::Relaxed);
        if dropped > 0 && s2s_obs::enabled() {
            s2s_obs::global()
                .counter(s2s_obs::names::RESULT_CACHE_INVALIDATIONS_TOTAL)
                .add(dropped as u64);
        }
        dropped
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.state.read().entries.len()
    }

    /// Whether the cache holds no answers.
    pub fn is_empty(&self) -> bool {
        self.state.read().entries.is_empty()
    }

    /// Counter snapshot (hits, misses, LRU evictions).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Entries dropped by mutation invalidation (distinct from LRU
    /// evictions).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use s2s_owl::Ontology;
    use s2s_rdf::Graph;

    fn plan_of(text: &str) -> Arc<QueryPlan> {
        let onto = Ontology::builder("http://example.org/schema#")
            .class("Watch", None)
            .unwrap()
            .datatype_property("price", "Watch", s2s_rdf::vocab::xsd::DECIMAL)
            .unwrap()
            .build()
            .unwrap();
        Arc::new(query::plan(&query::parse(text).unwrap(), &onto).unwrap())
    }

    fn answer() -> Arc<InstanceSet> {
        Arc::new(InstanceSet {
            graph: Graph::new(),
            individuals: Vec::new(),
            errors: Vec::new(),
            completeness: 1.0,
            round_trips: 0,
            cache_hits: 0,
        })
    }

    #[test]
    fn plan_cache_hits_and_evicts() {
        let cache = PlanCache::with_capacity(2);
        assert!(cache.get("SELECT watch").is_none());
        cache.insert("SELECT watch".into(), plan_of("SELECT watch"));
        assert!(cache.get("SELECT watch").is_some());
        cache.insert("SELECT watch WHERE price < 10".into(), plan_of("SELECT watch"));
        // Touch the first so the second is the LRU victim.
        assert!(cache.get("SELECT watch").is_some());
        cache.insert("SELECT watch WHERE price < 20".into(), plan_of("SELECT watch"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("SELECT watch WHERE price < 10").is_none());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn result_cache_ttl_expires_in_sim_time() {
        let cache = QueryResultCache::new(ResultCacheConfig {
            capacity: 8,
            ttl: Some(SimDuration::from_millis(100)),
        });
        let key = "SELECT watch";
        cache.insert(
            key.into(),
            plan_of(key),
            answer(),
            QueryStats::default(),
            DependencySet::new(),
            SimDuration::from_millis(10),
        );
        assert!(cache.get(key, SimDuration::from_millis(50)).is_some());
        // 10 + 100 = 110: expired, dropped, counted as a miss.
        assert!(cache.get(key, SimDuration::from_millis(110)).is_none());
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn result_cache_invalidation_counts_entries() {
        let cache = QueryResultCache::new(ResultCacheConfig::default());
        for text in ["SELECT a", "SELECT b", "SELECT c"] {
            cache.insert(
                text.into(),
                plan_of("SELECT watch"),
                answer(),
                QueryStats::default(),
                DependencySet::new(),
                SimDuration::ZERO,
            );
        }
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert_eq!(cache.invalidations(), 3);
        // Idempotent: an empty invalidation adds nothing.
        cache.invalidate_all();
        assert_eq!(cache.invalidations(), 3);
    }

    #[test]
    fn result_cache_lru_evicts_at_capacity() {
        let cache = QueryResultCache::new(ResultCacheConfig { capacity: 2, ttl: None });
        let now = SimDuration::ZERO;
        let deps = DependencySet::new;
        cache.insert(
            "a".into(),
            plan_of("SELECT watch"),
            answer(),
            QueryStats::default(),
            deps(),
            now,
        );
        cache.insert(
            "b".into(),
            plan_of("SELECT watch"),
            answer(),
            QueryStats::default(),
            deps(),
            now,
        );
        assert!(cache.get("a", now).is_some());
        cache.insert(
            "c".into(),
            plan_of("SELECT watch"),
            answer(),
            QueryStats::default(),
            deps(),
            now,
        );
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b", now).is_none());
        assert!(cache.get("a", now).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    fn deps_on(pairs: &[(&str, u64)]) -> DependencySet {
        let mut deps = DependencySet::new();
        for (s, v) in pairs {
            deps.record(s, *v);
        }
        deps
    }

    #[test]
    fn dependency_set_records_oldest_version() {
        let mut deps = DependencySet::new();
        deps.record("DB", 5);
        deps.record("DB", 3);
        deps.record("DB", 9);
        assert_eq!(deps.version_of("DB"), Some(3));
        assert!(deps.depends_on("DB"));
        assert!(!deps.depends_on("XML"));
        assert_eq!(deps.iter().collect::<Vec<_>>(), vec![("DB", 3)]);
    }

    #[test]
    fn result_invalidation_drops_only_dependent_entries() {
        let cache = QueryResultCache::new(ResultCacheConfig::default());
        let now = SimDuration::ZERO;
        let plan = plan_of("SELECT watch");
        let stats = QueryStats::default;
        cache.insert("q-db".into(), plan.clone(), answer(), stats(), deps_on(&[("DB", 0)]), now);
        cache.insert("q-xml".into(), plan.clone(), answer(), stats(), deps_on(&[("XML", 0)]), now);
        cache.insert(
            "q-both".into(),
            plan.clone(),
            answer(),
            stats(),
            deps_on(&[("DB", 0), ("XML", 0)]),
            now,
        );
        // Mutating DB to version 1 drops the two entries that read DB
        // at version 0; the XML-only entry survives and replays.
        assert_eq!(cache.invalidate_source("DB", 1), 2);
        assert!(cache.get("q-xml", now).is_some());
        assert!(cache.get("q-db", now).is_none());
        assert!(cache.get("q-both", now).is_none());
        assert_eq!(cache.invalidations(), 2);
        // An entry that already read the post-mutation version is kept.
        cache.insert("q-db2".into(), plan, answer(), stats(), deps_on(&[("DB", 1)]), now);
        assert_eq!(cache.invalidate_source("DB", 1), 0);
        assert!(cache.get("q-db2", now).is_some());
    }

    #[test]
    fn admission_floor_refuses_stale_insert() {
        let cache = QueryResultCache::new(ResultCacheConfig::default());
        let now = SimDuration::ZERO;
        let plan = plan_of("SELECT watch");
        // A mutation lands while a query that read DB@0 is in flight.
        cache.invalidate_source("DB", 1);
        assert!(
            !cache.insert(
                "late".into(),
                plan.clone(),
                answer(),
                QueryStats::default(),
                deps_on(&[("DB", 0)]),
                now
            ),
            "an answer that read the pre-mutation snapshot must be refused"
        );
        assert!(cache.get("late", now).is_none());
        // The same query re-run against the new snapshot is admitted.
        assert!(cache.insert(
            "late".into(),
            plan,
            answer(),
            QueryStats::default(),
            deps_on(&[("DB", 1)]),
            now
        ));
        assert!(cache.get("late", now).is_some());
    }

    #[test]
    fn ttl_and_dependency_invalidation_compose() {
        let cache = QueryResultCache::new(ResultCacheConfig {
            capacity: 8,
            ttl: Some(SimDuration::from_millis(100)),
        });
        let plan = plan_of("SELECT watch");
        let stats = QueryStats::default;
        let t0 = SimDuration::ZERO;
        cache.insert("a".into(), plan.clone(), answer(), stats(), deps_on(&[("DB", 0)]), t0);
        cache.insert("b".into(), plan.clone(), answer(), stats(), deps_on(&[("XML", 0)]), t0);
        // Dependency invalidation drops `a` well before its TTL.
        assert_eq!(cache.invalidate_source("DB", 1), 1);
        assert!(cache.get("a", SimDuration::from_millis(10)).is_none());
        assert!(cache.get("b", SimDuration::from_millis(10)).is_some());
        // TTL still expires the survivor even though no mutation ever
        // touched XML.
        assert!(cache.get("b", SimDuration::from_millis(150)).is_none());
        // And a post-expiry reinsert remains subject to the floor.
        assert!(!cache.insert(
            "a".into(),
            plan,
            answer(),
            stats(),
            deps_on(&[("DB", 0)]),
            SimDuration::from_millis(150)
        ));
    }

    #[test]
    fn plan_cache_invalidates_by_mapped_source() {
        let cache = PlanCache::new();
        cache.insert_with_deps("q1".into(), plan_of("SELECT watch"), deps_on(&[("DB", 0)]));
        cache.insert_with_deps("q2".into(), plan_of("SELECT watch"), deps_on(&[("XML", 0)]));
        cache.insert("q3".into(), plan_of("SELECT watch"));
        assert_eq!(cache.invalidate_source("DB"), 1);
        assert!(cache.get("q1").is_none());
        assert!(cache.get("q2").is_some());
        assert!(cache.get("q3").is_some(), "dep-free plans survive targeted drops");
        assert_eq!(cache.invalidations(), 1);
    }
}
