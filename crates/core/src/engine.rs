//! The resident engine's query-level caches.
//!
//! The paper's mediator handles one query at a time; a resident,
//! concurrently shared [`crate::middleware::S2s`] adds two cache layers
//! *above* the extraction and compiled-rule caches:
//!
//! * [`PlanCache`] — memoizes the parse/validate/plan front half of
//!   query handling, keyed on [`crate::query::normalize`]d S2SQL text.
//!   The ontology is immutable for the life of an engine, so plans
//!   never go stale; the cache is LRU-bounded but never invalidated.
//! * [`QueryResultCache`] — memoizes whole query answers (the
//!   [`InstanceSet`] plus the stats of the run that produced it),
//!   same normalized key, LRU + optional TTL in *simulated* time, and
//!   invalidated wholesale on any source-registry or mapping mutation.
//!   Only complete, failure-free answers are admitted, so a degraded
//!   result is never replayed after the sources recover.
//!
//! Both caches key on the normalized text rather than the parsed query
//! so a hit skips the parser entirely; normalization is injective with
//! respect to the parser's token stream, so two queries share a key
//! only if the parser cannot tell them apart.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use s2s_netsim::SimDuration;

use crate::cache::{evict_lru, CacheStats};
use crate::instance::InstanceSet;
use crate::middleware::QueryStats;
use crate::query::QueryPlan;

#[derive(Debug)]
struct PlanEntry {
    plan: Arc<QueryPlan>,
    stamp: AtomicU64,
}

/// An LRU-bounded memo of validated query plans, keyed on normalized
/// S2SQL text. Parse/semantic errors are never cached: a bad query
/// re-reports its error each time.
#[derive(Debug)]
pub struct PlanCache {
    entries: RwLock<HashMap<String, PlanEntry>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// Default LRU capacity (distinct normalized query texts).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        PlanCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` plans (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            entries: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up the plan for a normalized query text.
    pub fn get(&self, key: &str) -> Option<Arc<QueryPlan>> {
        let hit = {
            let entries = self.entries.read();
            entries.get(key).map(|e| {
                e.stamp.store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
                Arc::clone(&e.plan)
            })
        };
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        if s2s_obs::enabled() {
            let name = if hit.is_some() {
                s2s_obs::names::PLAN_CACHE_HITS_TOTAL
            } else {
                s2s_obs::names::PLAN_CACHE_MISSES_TOTAL
            };
            s2s_obs::global().counter(name).inc();
        }
        hit
    }

    /// Stores a plan, evicting the least recently used entry at
    /// capacity.
    pub fn insert(&self, key: String, plan: Arc<QueryPlan>) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.write();
        if !entries.contains_key(&key) && entries.len() >= self.capacity {
            evict_lru(&mut entries, |e: &PlanEntry| &e.stamp);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if s2s_obs::enabled() {
                s2s_obs::global().counter(s2s_obs::names::PLAN_CACHE_EVICTIONS_TOTAL).inc();
            }
        }
        entries.insert(key, PlanEntry { plan, stamp: AtomicU64::new(stamp) });
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Sizing and freshness policy for a [`QueryResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultCacheConfig {
    /// Maximum cached answers (min 1).
    pub capacity: usize,
    /// Time-to-live in *simulated* time, measured against the engine's
    /// resilience clock; `None` disables expiry (mutation invalidation
    /// still applies).
    pub ttl: Option<SimDuration>,
}

impl Default for ResultCacheConfig {
    fn default() -> Self {
        ResultCacheConfig { capacity: 128, ttl: None }
    }
}

/// A cache hit: the answer plus the provenance of the run that
/// produced it.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The plan of the original run.
    pub plan: Arc<QueryPlan>,
    /// The answer of the original run.
    pub instances: Arc<InstanceSet>,
    /// The stats of the original (cache-miss) run, so a hit can report
    /// the completeness and task shape of the answer it replays.
    pub origin: QueryStats,
}

#[derive(Debug)]
struct ResultEntry {
    plan: Arc<QueryPlan>,
    instances: Arc<InstanceSet>,
    origin: QueryStats,
    inserted_at: SimDuration,
    stamp: AtomicU64,
}

/// An LRU + TTL memo of whole query answers, keyed on normalized S2SQL
/// text. See the module docs for the admission and invalidation rules.
#[derive(Debug)]
pub struct QueryResultCache {
    entries: RwLock<HashMap<String, ResultEntry>>,
    config: ResultCacheConfig,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for QueryResultCache {
    fn default() -> Self {
        QueryResultCache::new(ResultCacheConfig::default())
    }
}

impl QueryResultCache {
    /// An empty cache with the given policy.
    pub fn new(config: ResultCacheConfig) -> Self {
        QueryResultCache {
            entries: RwLock::new(HashMap::new()),
            config: ResultCacheConfig { capacity: config.capacity.max(1), ..config },
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The active policy.
    pub fn config(&self) -> ResultCacheConfig {
        self.config
    }

    /// Looks up the cached answer for a normalized query text at
    /// simulated instant `now`. An entry past its TTL is dropped and
    /// counted as a miss.
    pub fn get(&self, key: &str, now: SimDuration) -> Option<CachedResult> {
        let (hit, expired) = {
            let entries = self.entries.read();
            match entries.get(key) {
                Some(e) if self.fresh(e, now) => {
                    e.stamp.store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
                    (
                        Some(CachedResult {
                            plan: Arc::clone(&e.plan),
                            instances: Arc::clone(&e.instances),
                            origin: e.origin,
                        }),
                        false,
                    )
                }
                Some(_) => (None, true),
                None => (None, false),
            }
        };
        if expired {
            // Re-check under the write lock: a racing refresh may have
            // replaced the entry with a fresh one.
            let mut entries = self.entries.write();
            if entries.get(key).is_some_and(|e| !self.fresh(e, now)) {
                entries.remove(key);
            }
        }
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        if s2s_obs::enabled() {
            let name = if hit.is_some() {
                s2s_obs::names::RESULT_CACHE_HITS_TOTAL
            } else {
                s2s_obs::names::RESULT_CACHE_MISSES_TOTAL
            };
            s2s_obs::global().counter(name).inc();
        }
        hit
    }

    fn fresh(&self, e: &ResultEntry, now: SimDuration) -> bool {
        match self.config.ttl {
            Some(ttl) => now.saturating_sub(e.inserted_at) < ttl,
            None => true,
        }
    }

    /// Stores an answer produced at simulated instant `now`, evicting
    /// the least recently used entry at capacity. The caller enforces
    /// admission (complete, failure-free answers only).
    pub fn insert(
        &self,
        key: String,
        plan: Arc<QueryPlan>,
        instances: Arc<InstanceSet>,
        origin: QueryStats,
        now: SimDuration,
    ) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.write();
        if !entries.contains_key(&key) && entries.len() >= self.config.capacity {
            evict_lru(&mut entries, |e: &ResultEntry| &e.stamp);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if s2s_obs::enabled() {
                s2s_obs::global().counter(s2s_obs::names::RESULT_CACHE_EVICTIONS_TOTAL).inc();
            }
        }
        entries.insert(
            key,
            ResultEntry { plan, instances, origin, inserted_at: now, stamp: AtomicU64::new(stamp) },
        );
    }

    /// Drops every cached answer — called on any source-registry or
    /// mapping mutation, so a stale answer is never served.
    pub fn invalidate_all(&self) {
        let dropped = {
            let mut entries = self.entries.write();
            let n = entries.len();
            entries.clear();
            n as u64
        };
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        if dropped > 0 && s2s_obs::enabled() {
            s2s_obs::global()
                .counter(s2s_obs::names::RESULT_CACHE_INVALIDATIONS_TOTAL)
                .add(dropped);
        }
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache holds no answers.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Counter snapshot (hits, misses, LRU evictions).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Entries dropped by mutation invalidation (distinct from LRU
    /// evictions).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use s2s_owl::Ontology;
    use s2s_rdf::Graph;

    fn plan_of(text: &str) -> Arc<QueryPlan> {
        let onto = Ontology::builder("http://example.org/schema#")
            .class("Watch", None)
            .unwrap()
            .datatype_property("price", "Watch", s2s_rdf::vocab::xsd::DECIMAL)
            .unwrap()
            .build()
            .unwrap();
        Arc::new(query::plan(&query::parse(text).unwrap(), &onto).unwrap())
    }

    fn answer() -> Arc<InstanceSet> {
        Arc::new(InstanceSet {
            graph: Graph::new(),
            individuals: Vec::new(),
            errors: Vec::new(),
            completeness: 1.0,
            round_trips: 0,
            cache_hits: 0,
        })
    }

    #[test]
    fn plan_cache_hits_and_evicts() {
        let cache = PlanCache::with_capacity(2);
        assert!(cache.get("SELECT watch").is_none());
        cache.insert("SELECT watch".into(), plan_of("SELECT watch"));
        assert!(cache.get("SELECT watch").is_some());
        cache.insert("SELECT watch WHERE price < 10".into(), plan_of("SELECT watch"));
        // Touch the first so the second is the LRU victim.
        assert!(cache.get("SELECT watch").is_some());
        cache.insert("SELECT watch WHERE price < 20".into(), plan_of("SELECT watch"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("SELECT watch WHERE price < 10").is_none());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn result_cache_ttl_expires_in_sim_time() {
        let cache = QueryResultCache::new(ResultCacheConfig {
            capacity: 8,
            ttl: Some(SimDuration::from_millis(100)),
        });
        let key = "SELECT watch";
        cache.insert(
            key.into(),
            plan_of(key),
            answer(),
            QueryStats::default(),
            SimDuration::from_millis(10),
        );
        assert!(cache.get(key, SimDuration::from_millis(50)).is_some());
        // 10 + 100 = 110: expired, dropped, counted as a miss.
        assert!(cache.get(key, SimDuration::from_millis(110)).is_none());
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn result_cache_invalidation_counts_entries() {
        let cache = QueryResultCache::new(ResultCacheConfig::default());
        for text in ["SELECT a", "SELECT b", "SELECT c"] {
            cache.insert(
                text.into(),
                plan_of("SELECT watch"),
                answer(),
                QueryStats::default(),
                SimDuration::ZERO,
            );
        }
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert_eq!(cache.invalidations(), 3);
        // Idempotent: an empty invalidation adds nothing.
        cache.invalidate_all();
        assert_eq!(cache.invalidations(), 3);
    }

    #[test]
    fn result_cache_lru_evicts_at_capacity() {
        let cache = QueryResultCache::new(ResultCacheConfig { capacity: 2, ttl: None });
        let now = SimDuration::ZERO;
        cache.insert("a".into(), plan_of("SELECT watch"), answer(), QueryStats::default(), now);
        cache.insert("b".into(), plan_of("SELECT watch"), answer(), QueryStats::default(), now);
        assert!(cache.get("a", now).is_some());
        cache.insert("c".into(), plan_of("SELECT watch"), answer(), QueryStats::default(), now);
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b", now).is_none());
        assert!(cache.get("a", now).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }
}
