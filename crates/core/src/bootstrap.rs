//! Automatic mapping bootstrap: native schema → candidate ontology
//! mappings and extraction rules.
//!
//! Hand-written registration (paper Fig. 3) caps a catalog at demo
//! size: every attribute of every source needs a human to write the
//! path, the rule, and the record scenario. The paper's premise —
//! sources self-describe enough to integrate — points the other way:
//! a relational source carries `CREATE TABLE` metadata, an XML source
//! carries its element/attribute shape (à la Janus' XSD→OWL mapping
//! tables), a web page carries its tag shape and `class` hints, and a
//! text export carries its labeled-field headers. This module ingests
//! those native schemas and derives *candidates*: attribute mappings
//! with generated extraction rules, each scored by how strong the
//! name/type evidence is, plus an explicit conflict list for the cases
//! automation must not guess (ambiguous targets, ambiguous types, name
//! collisions, unmappable fields).
//!
//! The output is a [`BootstrapReport`]. A caller (or a test, or the
//! conformance fuzzer) can accept it wholesale, override individual
//! candidates ([`BootstrapReport::resolve`],
//! [`BootstrapReport::add_override`]), or reject fields
//! ([`BootstrapReport::reject`]). Accepted candidates flow through the
//! regular [`crate::S2s::register_attribute`] path, so the mapping
//! module, rule compilation, caches, planner capability analysis, and
//! views all see bootstrapped sources exactly as they see hand-written
//! ones — on the demo catalogs the two are fingerprint-identical (the
//! `bootstrap` arm of `s2s-conform` fuzzes that equivalence).
//!
//! # Confidence model
//!
//! | score | basis |
//! |-------|-------|
//! | 1.00  | caller override (asserted, not inferred) |
//! | 0.95  | exact case-insensitive name match |
//! | 0.90  | markup hint match (HTML `class` attribute) |
//! | 0.85  | normalized match (separators/case stripped) |
//! | 0.70  | stem match (field = property + separator suffix, e.g. `case_m`) |
//!
//! A candidate is only auto-accepted when exactly one property matches
//! at the best tier *and* the observed value shape agrees with the
//! property's declared range; anything weaker becomes a conflict.

use s2s_owl::{AttributePath, Ontology, PropertyKind};

use crate::error::S2sError;
use crate::mapping::{ExtractionRule, RecordScenario};
use crate::source::{Connection, SourceKind};

/// Confidence of an exact case-insensitive name match.
pub const CONFIDENCE_EXACT: f64 = 0.95;
/// Confidence of a markup-hint match (e.g. HTML `class="price"`).
pub const CONFIDENCE_HINT: f64 = 0.90;
/// Confidence of a normalized (separator/case-stripped) match.
pub const CONFIDENCE_NORMALIZED: f64 = 0.85;
/// Confidence of a stem match (`case_m` → `case`).
pub const CONFIDENCE_STEM: f64 = 0.70;
/// Confidence of a caller override.
pub const CONFIDENCE_OVERRIDE: f64 = 1.0;

/// Where a schema field was observed, with enough detail to generate
/// the extraction rule for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldProvenance {
    /// A relational column.
    DbColumn {
        /// The table.
        table: String,
        /// The column.
        column: String,
        /// The primary-key column to `ORDER BY`, when the table
        /// declares one (keeps multi-record value lists aligned).
        order_by: Option<String>,
    },
    /// A leaf element or attribute of an XML record.
    XmlLeaf {
        /// Root element local name.
        root: String,
        /// Record element local name (`None`: the root is the record).
        record: Option<String>,
        /// The leaf element or attribute local name.
        leaf: String,
        /// Whether the field is an XML attribute.
        attribute: bool,
    },
    /// A repeated leaf tag of an HTML page.
    HtmlTag {
        /// Lowercased tag name.
        tag: String,
    },
    /// A `label: value` field of a labeled text export.
    TextLabel {
        /// The label.
        label: String,
    },
}

/// One field recovered from a source's native schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaField {
    /// The field's native name (column, element, tag, or label).
    pub name: String,
    /// A markup name hint distinct from the field name (the HTML
    /// `class` attribute value when the tag carries exactly one).
    pub hint: Option<String>,
    /// Observed value samples (up to 8).
    pub samples: Vec<String>,
    /// Declared numeric-ness, when the native schema declares types
    /// (DB columns). `None` = no declaration; sniff the samples.
    pub declared_numeric: Option<bool>,
    /// Whether the field is a record-identity field (DB primary key).
    pub primary_key: bool,
    /// Where the field came from (drives rule generation).
    pub provenance: FieldProvenance,
}

impl SchemaField {
    /// Whether the observed values look numeric: a declared numeric
    /// type wins; otherwise every sample must parse as a number.
    pub fn looks_numeric(&self) -> bool {
        match self.declared_numeric {
            Some(d) => d,
            None => {
                !self.samples.is_empty() && self.samples.iter().all(|s| s.parse::<f64>().is_ok())
            }
        }
    }
}

/// The native-schema summary of one source.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaSummary {
    /// The source kind.
    pub kind: SourceKind,
    /// The native name of the record container (table, record element,
    /// page, export) — used to name proposed classes.
    pub container: String,
    /// Number of record instances observed.
    pub records: usize,
    /// The fields, in native order.
    pub fields: Vec<SchemaField>,
}

/// One auto-generated attribute-mapping candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingCandidate {
    /// The native field the candidate maps.
    pub field: String,
    /// The ontology attribute path (e.g. `thing.product.watch.brand`).
    pub path: String,
    /// The generated extraction rule.
    pub rule: ExtractionRule,
    /// The record scenario.
    pub scenario: RecordScenario,
    /// Confidence score (see the module docs).
    pub confidence: f64,
    /// Human-readable evidence for the match.
    pub basis: String,
    /// Whether the candidate will be registered by
    /// [`crate::S2s::apply_bootstrap`]. Defaults to `true`; cleared by
    /// [`BootstrapReport::reject`].
    pub accepted: bool,
    /// Whether the candidate has already been registered.
    pub applied: bool,
}

/// A case automation must not guess. Variants that an override can
/// sensibly accept carry the generated rule so
/// [`BootstrapReport::resolve`] can promote them without re-running
/// introspection.
#[derive(Debug, Clone, PartialEq)]
pub enum Conflict {
    /// Several ontology properties match the field equally well (or
    /// the field carries no name signal at all, like a bare `<b>` tag,
    /// and is matched on value shape alone).
    AmbiguousTarget {
        /// The field.
        field: String,
        /// The candidate attribute paths, best-first.
        options: Vec<String>,
        /// The rule that extracts the field's values.
        rule: ExtractionRule,
        /// The record scenario.
        scenario: RecordScenario,
    },
    /// The name matches but the observed value shape contradicts the
    /// property's declared range.
    AmbiguousType {
        /// The field.
        field: String,
        /// The matched attribute path.
        path: String,
        /// What the property's range expects (`numeric` / `string`).
        expected: String,
        /// What the samples look like.
        observed: String,
        /// The rule that extracts the field's values.
        rule: ExtractionRule,
        /// The record scenario.
        scenario: RecordScenario,
    },
    /// Two or more fields map to the same property; none is
    /// auto-accepted.
    NameCollision {
        /// The contested attribute path.
        path: String,
        /// The colliding fields with their generated rules.
        fields: Vec<(String, ExtractionRule)>,
        /// The record scenario.
        scenario: RecordScenario,
    },
    /// No ontology property plausibly matches the field.
    Unmappable {
        /// The field.
        field: String,
        /// Why.
        reason: String,
    },
}

impl Conflict {
    /// The native field(s) the conflict is about.
    pub fn fields(&self) -> Vec<&str> {
        match self {
            Conflict::AmbiguousTarget { field, .. }
            | Conflict::AmbiguousType { field, .. }
            | Conflict::Unmappable { field, .. } => vec![field.as_str()],
            Conflict::NameCollision { fields, .. } => {
                fields.iter().map(|(f, _)| f.as_str()).collect()
            }
        }
    }

    /// A short kebab-case kind tag (for logs and reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Conflict::AmbiguousTarget { .. } => "ambiguous-target",
            Conflict::AmbiguousType { .. } => "ambiguous-type",
            Conflict::NameCollision { .. } => "name-collision",
            Conflict::Unmappable { .. } => "unmappable",
        }
    }
}

/// A proposed new ontology class for a schema no existing class
/// covers. Never registered automatically — ontology growth is a
/// curation decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassCandidate {
    /// Proposed class name (the native container name).
    pub name: String,
    /// Proposed datatype-property names (the field names).
    pub properties: Vec<String>,
}

/// The result of bootstrapping one source: scored candidates, explicit
/// conflicts, and (for wholly foreign schemas) proposed classes.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapReport {
    /// The source id.
    pub source: String,
    /// The source kind.
    pub kind: SourceKind,
    /// Number of record instances observed during introspection.
    pub records: usize,
    /// Auto-generated candidates (accepted by default).
    pub candidates: Vec<MappingCandidate>,
    /// Cases automation refused to guess.
    pub conflicts: Vec<Conflict>,
    /// Proposed new classes for unmatched schemas.
    pub proposals: Vec<ClassCandidate>,
}

impl BootstrapReport {
    /// The candidate for a native field, if any.
    pub fn candidate(&self, field: &str) -> Option<&MappingCandidate> {
        self.candidates.iter().find(|c| c.field == field)
    }

    /// Candidates that will be registered (accepted and not yet
    /// applied).
    pub fn pending(&self) -> impl Iterator<Item = &MappingCandidate> {
        self.candidates.iter().filter(|c| c.accepted && !c.applied)
    }

    /// Whether the report carries no conflicts.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Rejects a field: its candidate (if any) will not be registered.
    /// Returns whether a candidate was present.
    pub fn reject(&mut self, field: &str) -> bool {
        match self.candidates.iter_mut().find(|c| c.field == field) {
            Some(c) => {
                c.accepted = false;
                true
            }
            None => false,
        }
    }

    /// Resolves a conflicted field by overriding its target attribute
    /// path. The generated rule carried by the conflict is reused; the
    /// promoted candidate scores [`CONFIDENCE_OVERRIDE`]. Also
    /// re-points an existing (unapplied) candidate.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::Bootstrap`] if the field has neither a
    /// conflict carrying a rule nor an unapplied candidate.
    pub fn resolve(&mut self, field: &str, path: &str) -> Result<(), S2sError> {
        if let Some(c) = self.candidates.iter_mut().find(|c| c.field == field && !c.applied) {
            c.path = path.to_string();
            c.confidence = CONFIDENCE_OVERRIDE;
            c.basis = "caller override".to_string();
            c.accepted = true;
            return Ok(());
        }
        let found = self.conflicts.iter().find_map(|conflict| match conflict {
            Conflict::AmbiguousTarget { field: f, rule, scenario, .. }
            | Conflict::AmbiguousType { field: f, rule, scenario, .. }
                if f == field =>
            {
                Some((rule.clone(), *scenario))
            }
            Conflict::NameCollision { fields, scenario, .. } => {
                fields.iter().find(|(f, _)| f == field).map(|(_, rule)| (rule.clone(), *scenario))
            }
            _ => None,
        });
        let (rule, scenario) = found.ok_or_else(|| S2sError::Bootstrap {
            source: self.source.clone(),
            message: format!("no conflicted field `{field}` to resolve"),
        })?;
        self.candidates.push(MappingCandidate {
            field: field.to_string(),
            path: path.to_string(),
            rule,
            scenario,
            confidence: CONFIDENCE_OVERRIDE,
            basis: "caller override".to_string(),
            accepted: true,
            applied: false,
        });
        Ok(())
    }

    /// Adds a fully caller-specified candidate (escape hatch for
    /// fields introspection could not see at all).
    pub fn add_override(
        &mut self,
        field: &str,
        path: &str,
        rule: ExtractionRule,
        scenario: RecordScenario,
    ) {
        self.candidates.push(MappingCandidate {
            field: field.to_string(),
            path: path.to_string(),
            rule,
            scenario,
            confidence: CONFIDENCE_OVERRIDE,
            basis: "caller override".to_string(),
            accepted: true,
            applied: false,
        });
    }

    /// Overrides the record scenario on every unapplied candidate —
    /// for callers that know a source describes a single record even
    /// though its shape repeats.
    pub fn override_scenario(&mut self, scenario: RecordScenario) {
        for c in self.candidates.iter_mut().filter(|c| !c.applied) {
            c.scenario = scenario;
        }
    }
}

/// Recovers the native schema of a connection.
///
/// # Errors
///
/// Returns [`S2sError::Webdoc`] if a web/text URL cannot be fetched
/// and [`S2sError::Bootstrap`] if the source exposes no fields at all.
pub fn introspect(source_id: &str, connection: &Connection) -> Result<SchemaSummary, S2sError> {
    const MAX_SAMPLES: usize = 8;
    let summary = match connection {
        Connection::Database { db } => {
            let mut fields = Vec::new();
            let mut container = String::new();
            let mut records = 0usize;
            for schema in db.schemas() {
                if container.is_empty() {
                    container = schema.name().to_string();
                }
                let table = db.table(schema.name()).expect("schema from this database");
                records = records.max(table.len());
                let order_by =
                    schema.primary_key_index().map(|i| schema.columns()[i].name().to_string());
                for (ci, col) in schema.columns().iter().enumerate() {
                    let samples: Vec<String> = table
                        .scan()
                        .take(MAX_SAMPLES)
                        .map(|(_, row)| row[ci].to_string())
                        .collect();
                    fields.push(SchemaField {
                        name: col.name().to_string(),
                        hint: None,
                        samples,
                        declared_numeric: Some(!matches!(
                            col.data_type(),
                            s2s_minidb::DataType::Text
                        )),
                        primary_key: col.primary_key(),
                        provenance: FieldProvenance::DbColumn {
                            table: schema.name().to_string(),
                            column: col.name().to_string(),
                            order_by: order_by.clone(),
                        },
                    });
                }
            }
            SchemaSummary { kind: SourceKind::Database, container, records, fields }
        }
        Connection::Xml { document } => {
            let shape = s2s_xml::document_shape(document);
            let fields = shape
                .fields
                .iter()
                .map(|f| SchemaField {
                    name: f.name.clone(),
                    hint: None,
                    samples: f.samples.clone(),
                    declared_numeric: None,
                    primary_key: false,
                    provenance: FieldProvenance::XmlLeaf {
                        root: shape.root.clone(),
                        record: shape.record_element.clone(),
                        leaf: f.name.clone(),
                        attribute: f.from_attribute,
                    },
                })
                .collect();
            SchemaSummary {
                kind: SourceKind::Xml,
                container: shape.record_element.clone().unwrap_or_else(|| shape.root.clone()),
                records: shape.record_count,
                fields,
            }
        }
        Connection::Web { store, url } => {
            let doc = store.fetch(url)?;
            if !doc.is_html() {
                return Err(S2sError::Bootstrap {
                    source: source_id.to_string(),
                    message: format!("web source url `{url}` is not an HTML document"),
                });
            }
            let html = s2s_webdoc::HtmlDocument::parse(doc.raw());
            let mut fields = Vec::new();
            let mut records = 0usize;
            for stat in html.tag_survey() {
                if STRUCTURAL_TAGS.contains(&stat.name.as_str()) || stat.samples.is_empty() {
                    continue;
                }
                records = records.max(stat.count);
                let hint = match stat.classes.as_slice() {
                    [one] => Some(one.clone()),
                    _ => None,
                };
                fields.push(SchemaField {
                    name: stat.name.clone(),
                    hint,
                    samples: stat.samples.clone(),
                    declared_numeric: None,
                    primary_key: false,
                    provenance: FieldProvenance::HtmlTag { tag: stat.name.clone() },
                });
            }
            SchemaSummary {
                kind: SourceKind::WebPage,
                container: "page".to_string(),
                records,
                fields,
            }
        }
        Connection::Text { store, url } => {
            let doc = store.fetch(url)?;
            let mut fields = Vec::new();
            let mut records = 0usize;
            for f in s2s_textmatch::sniff_labeled_fields(&doc.text()) {
                records = records.max(f.count);
                fields.push(SchemaField {
                    name: f.label.clone(),
                    hint: None,
                    samples: f.samples.clone(),
                    declared_numeric: None,
                    primary_key: false,
                    provenance: FieldProvenance::TextLabel { label: f.label.clone() },
                });
            }
            SchemaSummary {
                kind: SourceKind::TextFile,
                container: "export".to_string(),
                records,
                fields,
            }
        }
    };
    if summary.fields.is_empty() {
        return Err(S2sError::Bootstrap {
            source: source_id.to_string(),
            message: "introspection found no schema fields to map".to_string(),
        });
    }
    Ok(summary)
}

/// HTML tags that carry page structure rather than record fields.
const STRUCTURAL_TAGS: &[&str] = &[
    "html", "head", "title", "meta", "link", "body", "div", "p", "ul", "ol", "li", "table",
    "thead", "tbody", "tr", "th", "td", "a", "script", "style", "br", "hr",
];

/// One name-evidence match of a field against a property.
struct NameMatch {
    property: s2s_rdf::Iri,
    confidence: f64,
    basis: String,
}

/// Generates the bootstrap report for one source against `ontology`.
///
/// # Errors
///
/// Propagates [`introspect`] failures; path construction against the
/// ontology cannot fail for properties the matcher found in it.
pub fn bootstrap(
    ontology: &Ontology,
    source_id: &str,
    connection: &Connection,
) -> Result<BootstrapReport, S2sError> {
    let summary = introspect(source_id, connection)?;
    let mut report = BootstrapReport {
        source: source_id.to_string(),
        kind: summary.kind,
        records: summary.records,
        candidates: Vec::new(),
        conflicts: Vec::new(),
        proposals: Vec::new(),
    };

    // Phase 1: name evidence per field.
    let mut matched: Vec<(usize, NameMatch)> = Vec::new();
    for (fi, field) in summary.fields.iter().enumerate() {
        let matches = name_matches(ontology, field);
        match best_tier(matches) {
            BestTier::One(m) => matched.push((fi, m)),
            BestTier::Tie(ms) => {
                // Several properties at the same tier: ambiguous target.
                let scenario = scenario_for(&summary);
                let options = paths_for(ontology, ms.iter().map(|m| &m.property));
                report.conflicts.push(Conflict::AmbiguousTarget {
                    field: field.name.clone(),
                    options,
                    rule: rule_for(field),
                    scenario,
                });
            }
            BestTier::None => {
                // No name signal. A value-shape match is offered as an
                // ambiguous target (override territory); otherwise the
                // field is unmappable.
                let shape_options = shape_matches(ontology, field);
                if field.primary_key {
                    report.conflicts.push(Conflict::Unmappable {
                        field: field.name.clone(),
                        reason: "primary-key column with no matching ontology property".to_string(),
                    });
                } else if shape_options.is_empty() {
                    report.conflicts.push(Conflict::Unmappable {
                        field: field.name.clone(),
                        reason: "no ontology property matches by name or value shape".to_string(),
                    });
                } else {
                    report.conflicts.push(Conflict::AmbiguousTarget {
                        field: field.name.clone(),
                        options: paths_for(ontology, shape_options.iter().copied()),
                        rule: rule_for(field),
                        scenario: scenario_for(&summary),
                    });
                }
            }
        }
    }

    // Phase 2: collision detection across matched fields.
    let mut by_property: Vec<(s2s_rdf::Iri, Vec<usize>)> = Vec::new();
    for (fi, m) in &matched {
        match by_property.iter_mut().find(|(p, _)| p == &m.property) {
            Some((_, v)) => v.push(*fi),
            None => by_property.push((m.property.clone(), vec![*fi])),
        }
    }

    // Phase 3: anchor-class selection over the uncontested properties.
    let uncontested: Vec<&s2s_rdf::Iri> =
        by_property.iter().filter(|(_, fis)| fis.len() == 1).map(|(p, _)| p).collect();
    let anchor = anchor_class(ontology, &uncontested);

    let scenario = scenario_for(&summary);
    for (property, fis) in &by_property {
        let path = path_for(ontology, anchor.as_ref(), property);
        if fis.len() > 1 {
            report.conflicts.push(Conflict::NameCollision {
                path,
                fields: fis
                    .iter()
                    .map(|&fi| (summary.fields[fi].name.clone(), rule_for(&summary.fields[fi])))
                    .collect(),
                scenario,
            });
            continue;
        }
        let fi = fis[0];
        let field = &summary.fields[fi];
        let m = &matched.iter().find(|(i, _)| *i == fi).expect("indexed from matched").1;

        // Phase 4: value-shape agreement with the declared range.
        let expects_numeric = property_numeric(ontology, property);
        let observed_numeric = field.looks_numeric();
        if expects_numeric && !observed_numeric && !field.samples.is_empty() {
            report.conflicts.push(Conflict::AmbiguousType {
                field: field.name.clone(),
                path,
                expected: "numeric".to_string(),
                observed: "string".to_string(),
                rule: rule_for(field),
                scenario,
            });
            continue;
        }

        report.candidates.push(MappingCandidate {
            field: field.name.clone(),
            path,
            rule: rule_for(field),
            scenario,
            confidence: m.confidence,
            basis: m.basis.clone(),
            accepted: true,
            applied: false,
        });
    }

    // Phase 5: a wholly foreign schema proposes a new class instead.
    if report.candidates.is_empty() && matched.is_empty() {
        report.proposals.push(ClassCandidate {
            name: summary.container.clone(),
            properties: summary
                .fields
                .iter()
                .filter(|f| !f.primary_key)
                .map(|f| f.name.clone())
                .collect(),
        });
    }

    Ok(report)
}

/// All name-evidence matches of `field` against the ontology's
/// datatype properties, best tier first per property.
fn name_matches(ontology: &Ontology, field: &SchemaField) -> Vec<NameMatch> {
    let name = field.name.to_ascii_lowercase();
    let norm = normalize(&name);
    let hint = field.hint.as_deref().map(str::to_ascii_lowercase);
    let mut out = Vec::new();
    for p in ontology.properties().filter(|p| p.kind() == PropertyKind::Datatype) {
        let prop = p.iri().local_name().to_ascii_lowercase();
        let prop_norm = normalize(&prop);
        let m = if prop == name {
            Some((CONFIDENCE_EXACT, format!("exact name match on `{prop}`")))
        } else if hint.as_deref() == Some(prop.as_str()) {
            Some((CONFIDENCE_HINT, format!("markup hint `class=\"{prop}\"`")))
        } else if !prop_norm.is_empty() && prop_norm == norm {
            Some((CONFIDENCE_NORMALIZED, format!("normalized match on `{prop}`")))
        } else if is_stem(&name, &prop) {
            Some((CONFIDENCE_STEM, format!("stem match `{name}` → `{prop}`")))
        } else {
            None
        };
        if let Some((confidence, basis)) = m {
            out.push(NameMatch { property: p.iri().clone(), confidence, basis });
        }
    }
    out
}

/// Datatype properties whose declared range agrees with the field's
/// observed value shape — the weakest evidence, offered only as
/// override options.
fn shape_matches<'o>(ontology: &'o Ontology, field: &SchemaField) -> Vec<&'o s2s_rdf::Iri> {
    if field.samples.is_empty() {
        return Vec::new();
    }
    let numeric = field.looks_numeric();
    ontology
        .properties()
        .filter(|p| p.kind() == PropertyKind::Datatype)
        .filter(|p| property_numeric_def(p) == numeric)
        .map(|p| p.iri())
        .collect()
}

enum BestTier {
    One(NameMatch),
    Tie(Vec<NameMatch>),
    None,
}

fn best_tier(mut matches: Vec<NameMatch>) -> BestTier {
    if matches.is_empty() {
        return BestTier::None;
    }
    let best = matches.iter().map(|m| m.confidence).fold(0.0f64, f64::max);
    matches.retain(|m| m.confidence == best);
    if matches.len() == 1 {
        BestTier::One(matches.remove(0))
    } else {
        BestTier::Tie(matches)
    }
}

/// Lowercase with every non-alphanumeric character removed.
fn normalize(s: &str) -> String {
    s.chars().filter(char::is_ascii_alphanumeric).collect::<String>().to_ascii_lowercase()
}

/// Whether `name` is `prop` plus a separated suffix (`case_m`,
/// `price-usd`) — a common relational naming convention.
fn is_stem(name: &str, prop: &str) -> bool {
    name.len() > prop.len()
        && name.starts_with(prop)
        && matches!(name.as_bytes()[prop.len()], b'_' | b'-' | b'.')
}

/// Whether a property's declared range is numeric.
fn property_numeric(ontology: &Ontology, property: &s2s_rdf::Iri) -> bool {
    ontology.property(property).is_some_and(property_numeric_def)
}

fn property_numeric_def(p: &s2s_owl::PropertyDef) -> bool {
    p.ranges().any(|r| {
        matches!(
            r.local_name().to_ascii_lowercase().as_str(),
            "decimal" | "integer" | "int" | "long" | "float" | "double"
        )
    })
}

/// The most specific class that can anchor every uncontested matched
/// property (every property's domain is the class or one of its
/// superclasses). Deterministic: among equally deep classes the
/// lexicographically smallest IRI wins.
fn anchor_class(ontology: &Ontology, properties: &[&s2s_rdf::Iri]) -> Option<s2s_rdf::Iri> {
    if properties.is_empty() {
        return None;
    }
    let covers = |class: &s2s_rdf::Iri| {
        properties.iter().all(|prop| {
            ontology
                .property(prop)
                .is_some_and(|p| p.domains().any(|d| ontology.is_subclass_of(class, d)))
        })
    };
    ontology
        .classes()
        .filter(|c| covers(c.iri()))
        .max_by(|a, b| {
            let depth = |c: &s2s_owl::ClassDef| ontology.superclasses(c.iri()).len();
            depth(a).cmp(&depth(b)).then_with(|| b.iri().as_str().cmp(a.iri().as_str()))
        })
        .map(|c| c.iri().clone())
}

/// The canonical attribute path for `property`, anchored at the
/// selected class when it applies, else at the property's first
/// domain.
fn path_for(ontology: &Ontology, anchor: Option<&s2s_rdf::Iri>, property: &s2s_rdf::Iri) -> String {
    let domain_ok = |class: &s2s_rdf::Iri| {
        ontology
            .property(property)
            .is_some_and(|p| p.domains().any(|d| ontology.is_subclass_of(class, d)))
    };
    let class = match anchor {
        Some(a) if domain_ok(a) => a.clone(),
        _ => ontology
            .property(property)
            .and_then(|p| p.domains().next().cloned())
            .expect("matched properties have a domain"),
    };
    AttributePath::for_attribute(ontology, &class, property)
        .expect("class and property exist in this ontology")
        .to_string()
}

fn paths_for<'i>(
    ontology: &Ontology,
    properties: impl Iterator<Item = &'i s2s_rdf::Iri>,
) -> Vec<String> {
    let mut out: Vec<String> = properties.map(|p| path_for(ontology, None, p)).collect();
    out.sort();
    out.dedup();
    out
}

/// The record scenario a schema shape implies: sources whose native
/// shape is a record *container* (a table, a repeated record element, a
/// repeated tag, a line-oriented export) are multi-record even when
/// only one instance is present; only an XML document whose root *is*
/// the record is single-record.
fn scenario_for(summary: &SchemaSummary) -> RecordScenario {
    match summary.kind {
        SourceKind::Xml if summary.records == 1 => {
            match summary.fields.first().map(|f| &f.provenance) {
                Some(FieldProvenance::XmlLeaf { record: None, .. }) => RecordScenario::SingleRecord,
                _ => RecordScenario::MultiRecord,
            }
        }
        _ => RecordScenario::MultiRecord,
    }
}

/// Generates the extraction rule for a field from its provenance.
fn rule_for(field: &SchemaField) -> ExtractionRule {
    match &field.provenance {
        FieldProvenance::DbColumn { table, column, order_by } => ExtractionRule::Sql {
            query: match order_by {
                Some(pk) => format!("SELECT {column} FROM {table} ORDER BY {pk}"),
                None => format!("SELECT {column} FROM {table}"),
            },
            column: column.clone(),
        },
        FieldProvenance::XmlLeaf { root, record, leaf, attribute } => {
            let step = if *attribute { format!("@{leaf}") } else { format!("{leaf}/text()") };
            ExtractionRule::XPath {
                path: match record {
                    Some(r) => format!("/{root}/{r}/{step}"),
                    None => format!("/{root}/{step}"),
                },
            }
        }
        FieldProvenance::HtmlTag { tag } => {
            ExtractionRule::Webl { program: format!("var v = TagTexts(Text(PAGE), \"{tag}\");") }
        }
        FieldProvenance::TextLabel { label } => {
            let value = if field.looks_numeric() { "([0-9.]+)" } else { r"([\w-]+)" };
            ExtractionRule::TextRegex { pattern: format!("{label}: {value}"), group: 1 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn watch_ontology() -> Ontology {
        Ontology::builder("http://bootstrap.example/schema#")
            .class("Product", None)
            .unwrap()
            .class("Watch", Some("Product"))
            .unwrap()
            .datatype_property("brand", "Product", "http://www.w3.org/2001/XMLSchema#string")
            .unwrap()
            .datatype_property("price", "Product", "http://www.w3.org/2001/XMLSchema#decimal")
            .unwrap()
            .datatype_property("case", "Watch", "http://www.w3.org/2001/XMLSchema#string")
            .unwrap()
            .build()
            .unwrap()
    }

    fn db_connection(sql: &[&str]) -> Connection {
        let mut db = s2s_minidb::Database::new("t");
        for stmt in sql {
            db.execute(stmt).unwrap();
        }
        Connection::Database { db: Arc::new(db) }
    }

    #[test]
    fn db_columns_bootstrap_with_stem_and_exact_matches() {
        let conn = db_connection(&[
            "CREATE TABLE watches (id INTEGER PRIMARY KEY, brand TEXT, price REAL, case_m TEXT)",
            "INSERT INTO watches VALUES (1, 'seiko', 120.5, 'steel')",
        ]);
        let report = bootstrap(&watch_ontology(), "DB", &conn).unwrap();
        assert_eq!(report.candidates.len(), 3);
        let brand = report.candidate("brand").unwrap();
        assert_eq!(brand.path, "thing.product.watch.brand");
        assert_eq!(brand.confidence, CONFIDENCE_EXACT);
        assert_eq!(
            brand.rule,
            ExtractionRule::Sql {
                query: "SELECT brand FROM watches ORDER BY id".into(),
                column: "brand".into()
            }
        );
        let case = report.candidate("case_m").unwrap();
        assert_eq!(case.path, "thing.product.watch.case");
        assert_eq!(case.confidence, CONFIDENCE_STEM);
        // The primary key has no property: surfaced, not guessed.
        assert!(matches!(
            &report.conflicts[..],
            [Conflict::Unmappable { field, .. }] if field == "id"
        ));
    }

    #[test]
    fn xml_container_bootstraps_multi_record() {
        let doc = s2s_xml::parse(
            "<catalog><watch><brand>seiko</brand><price>120</price><case>steel</case></watch>\
             </catalog>",
        )
        .unwrap();
        let conn = Connection::Xml { document: Arc::new(doc) };
        let report = bootstrap(&watch_ontology(), "XML", &conn).unwrap();
        assert_eq!(report.candidates.len(), 3);
        let brand = report.candidate("brand").unwrap();
        assert_eq!(
            brand.rule,
            ExtractionRule::XPath { path: "/catalog/watch/brand/text()".into() }
        );
        assert_eq!(brand.scenario, RecordScenario::MultiRecord);
    }

    #[test]
    fn html_class_hint_matches_and_bare_tags_are_ambiguous() {
        let mut store = s2s_webdoc::WebStore::new();
        store.register_html(
            "http://x/list",
            "<html><body><ul><li><b>seiko</b> <span class=\"price\">120</span> \
             <i>steel</i></li></ul></body></html>",
        );
        let conn = Connection::Web { store: Arc::new(store), url: "http://x/list".into() };
        let report = bootstrap(&watch_ontology(), "WEB", &conn).unwrap();
        let span = report.candidate("span").unwrap();
        assert_eq!(span.path, "thing.product.watch.price");
        assert_eq!(span.confidence, CONFIDENCE_HINT);
        // `b` and `i` have no name signal: string-shaped options only.
        let ambiguous: Vec<&Conflict> = report
            .conflicts
            .iter()
            .filter(|c| matches!(c, Conflict::AmbiguousTarget { .. }))
            .collect();
        assert_eq!(ambiguous.len(), 2);
        for c in ambiguous {
            if let Conflict::AmbiguousTarget { options, .. } = c {
                assert_eq!(
                    options,
                    &vec![
                        "thing.product.brand".to_string(),
                        "thing.product.watch.case".to_string()
                    ]
                );
            }
        }
    }

    #[test]
    fn text_labels_bootstrap_with_numeric_sniffing() {
        let mut store = s2s_webdoc::WebStore::new();
        store.register_text("file:///x.txt", "brand: seiko | price: 120 | case: steel\n");
        let conn = Connection::Text { store: Arc::new(store), url: "file:///x.txt".into() };
        let report = bootstrap(&watch_ontology(), "TXT", &conn).unwrap();
        let price = report.candidate("price").unwrap();
        assert_eq!(
            price.rule,
            ExtractionRule::TextRegex { pattern: "price: ([0-9.]+)".into(), group: 1 }
        );
        let brand = report.candidate("brand").unwrap();
        assert_eq!(
            brand.rule,
            ExtractionRule::TextRegex { pattern: r"brand: ([\w-]+)".into(), group: 1 }
        );
    }

    #[test]
    fn name_collision_and_unmappable_both_surface_and_override_resolves() {
        let conn = db_connection(&[
            "CREATE TABLE prices (id INTEGER PRIMARY KEY, price REAL, price_usd REAL)",
            "INSERT INTO prices VALUES (1, 1.5, 2.5)",
        ]);
        let mut report = bootstrap(&watch_ontology(), "DB2", &conn).unwrap();
        // Both `price` (exact) and `price_usd` (stem) hit the same
        // property: no candidate is auto-accepted.
        assert!(report.candidates.is_empty());
        let kinds: Vec<&str> = report.conflicts.iter().map(Conflict::kind).collect();
        assert!(kinds.contains(&"name-collision"), "{kinds:?}");
        assert!(kinds.contains(&"unmappable"), "{kinds:?}");
        // An override picks the winner and round-trips into a
        // registrable candidate.
        report.resolve("price", "thing.product.watch.price").unwrap();
        let c = report.candidate("price").unwrap();
        assert_eq!(c.confidence, CONFIDENCE_OVERRIDE);
        assert_eq!(
            c.rule,
            ExtractionRule::Sql {
                query: "SELECT price FROM prices ORDER BY id".into(),
                column: "price".into()
            }
        );
        // Resolving a field that never existed is a bootstrap error.
        let err = report.resolve("ghost", "thing.product.watch.price").unwrap_err();
        assert!(matches!(err, S2sError::Bootstrap { .. }));
    }

    #[test]
    fn foreign_schema_proposes_a_class() {
        let conn = db_connection(&[
            "CREATE TABLE cargo (manifest TEXT, tonnage REAL)",
            "INSERT INTO cargo VALUES ('m', 1.0)",
        ]);
        let report = bootstrap(&watch_ontology(), "SHIP", &conn).unwrap();
        assert!(report.candidates.is_empty());
        assert_eq!(report.proposals.len(), 1);
        assert_eq!(report.proposals[0].name, "cargo");
        assert_eq!(report.proposals[0].properties, vec!["manifest", "tonnage"]);
    }
}
