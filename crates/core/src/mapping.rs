//! The Mapping Module (paper §2.3).
//!
//! Mapping is "the result of information crossing between the ontology
//! schema and the data sources". It is keyed on **attributes** (not
//! classes), identified by ontology paths (Fig. 4), and performed in the
//! three steps of Fig. 3:
//!
//! 1. **attribute naming** — pick the unique attribute id/path,
//! 2. **extraction rules** — the per-source-type rule code,
//! 3. **attribute mapping** — associate id → (rule, source id), e.g.
//!    `thing.product.brand = watch.webl, wpage_81`.
//!
//! §2.3 also distinguishes the two record scenarios: a source may hold
//! one record (a product page) or *n* records (a product database);
//! [`RecordScenario`] captures that and drives how extracted values are
//! grouped into instances.

use std::collections::BTreeMap;

use s2s_owl::paths::ResolvedAttribute;
use s2s_owl::{AttributePath, Ontology};
use s2s_rdf::Iri;

use crate::error::S2sError;
use crate::source::{SourceId, SourceKind};

/// An extraction rule, written in the language fitting the source type
/// (paper §2.3.1 step 2: SQL for databases, XPath for XML, WebL for web
/// pages; we add anchored regular expressions for plain text).
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractionRule {
    /// A SQL query; the named column of the result carries the values.
    Sql {
        /// The query text.
        query: String,
        /// Which result column holds the attribute values.
        column: String,
    },
    /// An XPath expression; each match contributes one value.
    XPath {
        /// The path text.
        path: String,
    },
    /// An XQuery-lite FLWOR query (see [`s2s_xml::xquery`]); each
    /// returned string contributes one value.
    XQuery {
        /// The query text.
        query: String,
    },
    /// A WebL program; the final value (list → many values) is the
    /// extraction result.
    Webl {
        /// The program source.
        program: String,
    },
    /// A regular expression for plain text; `group` selects the capture
    /// group carrying the value, one value per match.
    TextRegex {
        /// The pattern.
        pattern: String,
        /// Capture group index (0 = whole match).
        group: usize,
    },
}

impl ExtractionRule {
    /// The source kinds this rule can run against.
    pub fn compatible_with(&self, kind: SourceKind) -> bool {
        matches!(
            (self, kind),
            (ExtractionRule::Sql { .. }, SourceKind::Database)
                | (ExtractionRule::XPath { .. }, SourceKind::Xml)
                | (ExtractionRule::XQuery { .. }, SourceKind::Xml)
                | (ExtractionRule::Webl { .. }, SourceKind::WebPage)
                | (ExtractionRule::Webl { .. }, SourceKind::TextFile)
                | (ExtractionRule::TextRegex { .. }, SourceKind::TextFile)
                | (ExtractionRule::TextRegex { .. }, SourceKind::WebPage)
        )
    }

    /// The rule text (used for wire-size accounting).
    pub fn text(&self) -> &str {
        match self {
            ExtractionRule::Sql { query, .. } => query,
            ExtractionRule::XPath { path } => path,
            ExtractionRule::XQuery { query } => query,
            ExtractionRule::Webl { program } => program,
            ExtractionRule::TextRegex { pattern, .. } => pattern,
        }
    }

    /// A short language label for display.
    pub fn language(&self) -> &'static str {
        match self {
            ExtractionRule::Sql { .. } => "sql",
            ExtractionRule::XPath { .. } => "xpath",
            ExtractionRule::XQuery { .. } => "xquery",
            ExtractionRule::Webl { .. } => "webl",
            ExtractionRule::TextRegex { .. } => "regex",
        }
    }

    /// The single source-side field this rule reads, when that is
    /// statically knowable: the SQL result column, or the element named
    /// by a simple XPath step ending in `text()`. `None` means the rule
    /// may read anything (WebL programs, regexes, complex XPaths) — the
    /// incremental-maintenance layer then treats *every* change event
    /// as touching it, which is conservative but sound.
    pub fn touched_field(&self) -> Option<&str> {
        match self {
            ExtractionRule::Sql { column, .. } => Some(column),
            ExtractionRule::XPath { path } => {
                let mut steps: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
                if steps.last() == Some(&"text()") {
                    steps.pop();
                }
                let last = steps.last()?;
                let simple = !last.is_empty()
                    && last.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
                simple.then_some(*last)
            }
            _ => None,
        }
    }
}

/// One-record vs n-record source scenario (paper §2.3: "data sources
/// might have one data record […] or might have n data records").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordScenario {
    /// The source describes one record; every rule yields at most one
    /// value and all attributes belong to the same single instance.
    SingleRecord,
    /// The source holds many records; rules yield aligned value lists
    /// (the i-th values of all attributes belong to record i).
    MultiRecord,
}

/// A completed attribute mapping (paper Fig. 3 output):
/// `attribute id = rule, source id`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeMapping {
    path: AttributePath,
    resolved: ResolvedAttribute,
    rule: ExtractionRule,
    source: SourceId,
    scenario: RecordScenario,
}

impl AttributeMapping {
    /// The attribute path (unique id).
    pub fn path(&self) -> &AttributePath {
        &self.path
    }

    /// The ontology class the attribute belongs to.
    pub fn class(&self) -> &Iri {
        &self.resolved.class
    }

    /// The ontology property the attribute maps to.
    pub fn property(&self) -> &Iri {
        &self.resolved.property
    }

    /// The extraction rule.
    pub fn rule(&self) -> &ExtractionRule {
        &self.rule
    }

    /// The data source id.
    pub fn source(&self) -> &SourceId {
        &self.source
    }

    /// The record scenario.
    pub fn scenario(&self) -> RecordScenario {
        self.scenario
    }

    /// A copy of this mapping with its extraction rule replaced — the
    /// hook the federated pushdown planner uses to substitute a
    /// natively rewritten rule (same attribute, same source, same
    /// scenario) without re-resolving the path against the ontology.
    pub fn with_rule(&self, rule: ExtractionRule) -> AttributeMapping {
        AttributeMapping { rule, ..self.clone() }
    }
}

/// The attribute repository: all registered mappings, indexed by path
/// and by class.
#[derive(Debug, Clone, Default)]
pub struct MappingModule {
    by_path: BTreeMap<AttributePath, AttributeMapping>,
    /// class IRI → paths mapped for that class (including inherited
    /// attribute registrations made against the class itself).
    by_class: BTreeMap<Iri, Vec<AttributePath>>,
}

impl MappingModule {
    /// An empty module.
    pub fn new() -> Self {
        MappingModule::default()
    }

    /// Registers an attribute mapping, performing the paper's three
    /// steps: the path is validated against the ontology (naming), the
    /// rule is stored (extraction rules), and the association to the
    /// source is recorded (attribute mapping).
    ///
    /// Several sources may map the same attribute — each registration is
    /// keyed by `(path, source)`; re-registering the same pair replaces
    /// the rule, and the displaced mapping is returned so callers can
    /// distinguish a fresh registration (`None`) from an **edit**
    /// (`Some(old)`) — edits drive targeted cache invalidation instead
    /// of a wholesale clear.
    ///
    /// # Errors
    ///
    /// Returns [`S2sError::Owl`] if the path does not resolve against
    /// `ontology`.
    pub fn register(
        &mut self,
        ontology: &Ontology,
        path: AttributePath,
        rule: ExtractionRule,
        source: SourceId,
        scenario: RecordScenario,
    ) -> Result<Option<AttributeMapping>, S2sError> {
        let resolved = path.resolve(ontology)?;
        // Key by (path, source): extend the path with a source marker in
        // the by_path map? Paths must stay clean; instead allow one rule
        // per (path, source) by storing a composite key.
        let key = composite(&path, &source);
        let mapping = AttributeMapping {
            path: path.clone(),
            resolved: resolved.clone(),
            rule,
            source,
            scenario,
        };
        let displaced = self.by_path.insert(key, mapping);
        if displaced.is_none() {
            self.by_class.entry(resolved.class).or_default().push(path);
        }
        Ok(displaced)
    }

    /// All mappings for `path`, across sources.
    pub fn mappings_for(&self, path: &AttributePath) -> Vec<&AttributeMapping> {
        self.by_path.values().filter(|m| m.path() == path).collect()
    }

    /// All mappings whose attribute belongs to `class` (exactly — use
    /// the ontology to expand sub/superclasses first if needed).
    pub fn mappings_for_class(&self, class: &Iri) -> Vec<&AttributeMapping> {
        self.by_path.values().filter(|m| m.class() == class).collect()
    }

    /// All mappings registered against `source`.
    pub fn mappings_for_source(&self, source: &SourceId) -> Vec<&AttributeMapping> {
        self.by_path.values().filter(|m| m.source() == source).collect()
    }

    /// Every mapping, in key order.
    pub fn iter(&self) -> impl Iterator<Item = &AttributeMapping> {
        self.by_path.values()
    }

    /// Number of registered mappings.
    pub fn len(&self) -> usize {
        self.by_path.len()
    }

    /// Whether no mappings are registered.
    pub fn is_empty(&self) -> bool {
        self.by_path.is_empty()
    }

    /// Whether `path` has at least one mapping.
    pub fn contains(&self, path: &AttributePath) -> bool {
        !self.mappings_for(path).is_empty()
    }
}

/// Composite key: path plus source id, so one attribute can be fed by
/// several sources.
fn composite(path: &AttributePath, source: &SourceId) -> AttributePath {
    // Paths are ordered maps keys; a parallel composite path with the
    // source appended keeps ordering stable and unique.
    let mut segments: Vec<String> = path.class_segments().to_vec();
    segments.push(format!("src-{}", source.as_str().to_ascii_lowercase().replace('_', "-")));
    AttributePath::new(segments, path.attribute_name()).unwrap_or_else(|_| path.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_owl::Ontology;

    fn onto() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .class("Watch", Some("Product"))
            .unwrap()
            .datatype_property("brand", "Product", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .datatype_property("case", "Watch", s2s_rdf::vocab::xsd::STRING)
            .unwrap()
            .build()
            .unwrap()
    }

    fn path(s: &str) -> AttributePath {
        s.parse().unwrap()
    }

    #[test]
    fn paper_registration_example() {
        // thing.product.brand = watch.webl, wpage_81
        let o = onto();
        let mut m = MappingModule::new();
        m.register(
            &o,
            path("thing.product.brand"),
            ExtractionRule::Webl { program: "var x = 1;".into() },
            "wpage_81".into(),
            RecordScenario::SingleRecord,
        )
        .unwrap();
        assert_eq!(m.len(), 1);
        let found = m.mappings_for(&path("thing.product.brand"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].source().as_str(), "wpage_81");
        assert_eq!(found[0].rule().language(), "webl");
        assert_eq!(found[0].class().local_name(), "Product");
    }

    #[test]
    fn bad_path_rejected() {
        let o = onto();
        let mut m = MappingModule::new();
        let err = m.register(
            &o,
            path("thing.gadget.brand"),
            ExtractionRule::XPath { path: "//b".into() },
            "x".into(),
            RecordScenario::SingleRecord,
        );
        assert!(matches!(err, Err(S2sError::Owl(_))));
    }

    #[test]
    fn multiple_sources_same_attribute() {
        let o = onto();
        let mut m = MappingModule::new();
        for src in ["DB_ID_45", "wpage_81"] {
            m.register(
                &o,
                path("thing.product.brand"),
                ExtractionRule::TextRegex { pattern: "x".into(), group: 0 },
                src.into(),
                RecordScenario::SingleRecord,
            )
            .unwrap();
        }
        assert_eq!(m.mappings_for(&path("thing.product.brand")).len(), 2);
        assert_eq!(m.mappings_for_source(&"DB_ID_45".into()).len(), 1);
    }

    #[test]
    fn re_registration_replaces_rule() {
        let o = onto();
        let mut m = MappingModule::new();
        for pattern in ["a", "b"] {
            m.register(
                &o,
                path("thing.product.brand"),
                ExtractionRule::TextRegex { pattern: pattern.into(), group: 0 },
                "S".into(),
                RecordScenario::SingleRecord,
            )
            .unwrap();
        }
        let found = m.mappings_for(&path("thing.product.brand"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule().text(), "b");
    }

    #[test]
    fn class_index() {
        let o = onto();
        let mut m = MappingModule::new();
        m.register(
            &o,
            path("thing.product.brand"),
            ExtractionRule::XPath { path: "//brand".into() },
            "X".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        m.register(
            &o,
            path("thing.product.watch.case"),
            ExtractionRule::XPath { path: "//case".into() },
            "X".into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let product = o.class_iri("Product").unwrap();
        let watch = o.class_iri("Watch").unwrap();
        assert_eq!(m.mappings_for_class(&product).len(), 1);
        assert_eq!(m.mappings_for_class(&watch).len(), 1);
    }

    #[test]
    fn re_registration_reports_displaced_mapping() {
        let o = onto();
        let mut m = MappingModule::new();
        let fresh = m
            .register(
                &o,
                path("thing.product.brand"),
                ExtractionRule::TextRegex { pattern: "a".into(), group: 0 },
                "S".into(),
                RecordScenario::SingleRecord,
            )
            .unwrap();
        assert!(fresh.is_none());
        let displaced = m
            .register(
                &o,
                path("thing.product.brand"),
                ExtractionRule::TextRegex { pattern: "b".into(), group: 0 },
                "S".into(),
                RecordScenario::SingleRecord,
            )
            .unwrap();
        assert_eq!(displaced.unwrap().rule().text(), "a");
    }

    #[test]
    fn touched_field_extraction() {
        let sql =
            ExtractionRule::Sql { query: "SELECT brand FROM w".into(), column: "brand".into() };
        assert_eq!(sql.touched_field(), Some("brand"));
        let xp = ExtractionRule::XPath { path: "/catalog/watch/price/text()".into() };
        assert_eq!(xp.touched_field(), Some("price"));
        let xp2 = ExtractionRule::XPath { path: "//watch/case_m".into() };
        assert_eq!(xp2.touched_field(), Some("case_m"));
        let wild = ExtractionRule::XPath { path: "//watch/*/text()".into() };
        assert_eq!(wild.touched_field(), None);
        let webl = ExtractionRule::Webl { program: "1;".into() };
        assert_eq!(webl.touched_field(), None);
        let rx = ExtractionRule::TextRegex { pattern: "brand: (\\w+)".into(), group: 1 };
        assert_eq!(rx.touched_field(), None);
    }

    #[test]
    fn rule_compatibility_matrix() {
        let sql = ExtractionRule::Sql { query: "SELECT 1".into(), column: "a".into() };
        assert!(sql.compatible_with(SourceKind::Database));
        assert!(!sql.compatible_with(SourceKind::WebPage));
        let xp = ExtractionRule::XPath { path: "//a".into() };
        assert!(xp.compatible_with(SourceKind::Xml));
        assert!(!xp.compatible_with(SourceKind::Database));
        let webl = ExtractionRule::Webl { program: "1;".into() };
        assert!(webl.compatible_with(SourceKind::WebPage));
        assert!(webl.compatible_with(SourceKind::TextFile));
        let rx = ExtractionRule::TextRegex { pattern: "a".into(), group: 0 };
        assert!(rx.compatible_with(SourceKind::TextFile));
        assert!(rx.compatible_with(SourceKind::WebPage));
        assert!(!rx.compatible_with(SourceKind::Xml));
    }
}
