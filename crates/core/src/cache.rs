//! Extraction-result caching.
//!
//! The paper notes mappings "should not need substantial maintenance
//! after being created" and sources "do not normally change their
//! structures" — the same stability argument makes extraction results
//! cacheable across queries. [`ExtractionCache`] memoizes the raw value
//! lists per `(source, rule)`; a repeat query serves those attributes
//! with zero simulated network cost.
//!
//! Scope and invalidation: registered sources are immutable snapshots
//! (`Arc`-shared), so entries only go stale when a mutation swaps a
//! source's snapshot. The mutation path drops exactly that source's
//! entries ([`ExtractionCache::invalidate_source`] — the cache key
//! leads with the source id); [`ExtractionCache::clear`] remains the
//! blunt full refresh for operators.
//!
//! Bounding: a resident engine keeps its caches for the life of the
//! process, so the map is LRU-bounded ([`ExtractionCache::with_capacity`],
//! default [`ExtractionCache::DEFAULT_CAPACITY`]). Recency is a global
//! tick stamped on each hit; at capacity, inserting a new key evicts the
//! stalest entry and bumps the `evictions` counter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::mapping::AttributeMapping;

/// Cache key: source id, rule language, rule text, scenario.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    source: String,
    language: &'static str,
    rule: String,
    single_record: bool,
}

impl Key {
    fn of(mapping: &AttributeMapping) -> Self {
        Key {
            source: mapping.source().to_string(),
            language: mapping.rule().language(),
            rule: mapping.rule().text().to_string(),
            single_record: mapping.scenario() == crate::mapping::RecordScenario::SingleRecord,
        }
    }
}

/// Hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries dropped by the LRU capacity bound.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    values: Arc<Vec<String>>,
    /// Global-tick value of the last touch; the smallest stamp is the
    /// least recently used entry.
    stamp: AtomicU64,
}

/// A concurrent, LRU-bounded memo of extraction results.
#[derive(Debug)]
pub struct ExtractionCache {
    entries: RwLock<HashMap<Key, Entry>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ExtractionCache {
    fn default() -> Self {
        ExtractionCache::new()
    }
}

impl ExtractionCache {
    /// Default LRU capacity (distinct `(source, rule)` entries).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        ExtractionCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        ExtractionCache {
            entries: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The LRU capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the values for a mapping, refreshing its recency.
    pub fn get(&self, mapping: &AttributeMapping) -> Option<Arc<Vec<String>>> {
        let hit = {
            let entries = self.entries.read();
            entries.get(&Key::of(mapping)).map(|e| {
                e.stamp.store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
                Arc::clone(&e.values)
            })
        };
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        if s2s_obs::enabled() {
            let name = if hit.is_some() {
                "s2s_extraction_cache_hits_total"
            } else {
                "s2s_extraction_cache_misses_total"
            };
            s2s_obs::global().counter(name).inc();
        }
        hit
    }

    /// Stores the values for a mapping, evicting the least recently
    /// used entry if the cache is at capacity.
    pub fn insert(&self, mapping: &AttributeMapping, values: Vec<String>) {
        let key = Key::of(mapping);
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.write();
        if !entries.contains_key(&key) && entries.len() >= self.capacity {
            evict_lru(&mut entries, |e| &e.stamp);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if s2s_obs::enabled() {
                s2s_obs::global().counter(s2s_obs::names::EXTRACTION_CACHE_EVICTIONS_TOTAL).inc();
            }
        }
        entries.insert(key, Entry { values: Arc::new(values), stamp: AtomicU64::new(stamp) });
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops every entry, returning how many were dropped.
    pub fn clear(&self) -> usize {
        let mut entries = self.entries.write();
        let n = entries.len();
        entries.clear();
        n
    }

    /// Drops exactly the entries extracted from `source`, returning how
    /// many were dropped. Entries for other sources keep serving.
    pub fn invalidate_source(&self, source: &str) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|k, _| k.source != source);
        before - entries.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Removes the entry with the smallest recency stamp. O(n) scan — the
/// caches are small (thousands of entries) and eviction only runs at
/// capacity, so a heap is not worth the bookkeeping.
pub(crate) fn evict_lru<K, V>(
    entries: &mut HashMap<K, V>,
    stamp_of: impl Fn(&V) -> &AtomicU64,
) -> Option<K>
where
    K: Clone + Eq + std::hash::Hash,
{
    let victim = entries
        .iter()
        .min_by_key(|(_, v)| stamp_of(v).load(Ordering::Relaxed))
        .map(|(k, _)| k.clone())?;
    entries.remove(&victim);
    Some(victim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ExtractionRule, MappingModule, RecordScenario};
    use s2s_owl::Ontology;

    fn mapping(rule_text: &str, source: &str) -> AttributeMapping {
        let o = Ontology::builder("http://x.example/#")
            .class("A", None)
            .unwrap()
            .datatype_property("p", "A", "http://www.w3.org/2001/XMLSchema#string")
            .unwrap()
            .build()
            .unwrap();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.a.p".parse().unwrap(),
            ExtractionRule::TextRegex { pattern: rule_text.into(), group: 0 },
            source.into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let mapping = m.iter().next().unwrap().clone();
        mapping
    }

    #[test]
    fn miss_then_hit() {
        let cache = ExtractionCache::new();
        let m = mapping("x", "S");
        assert!(cache.get(&m).is_none());
        cache.insert(&m, vec!["a".into(), "b".into()]);
        assert_eq!(cache.get(&m).unwrap().as_slice(), ["a", "b"]);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_rules_and_sources_do_not_collide() {
        let cache = ExtractionCache::new();
        cache.insert(&mapping("x", "S1"), vec!["1".into()]);
        cache.insert(&mapping("x", "S2"), vec!["2".into()]);
        cache.insert(&mapping("y", "S1"), vec!["3".into()]);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&mapping("x", "S2")).unwrap().as_slice(), ["2"]);
    }

    #[test]
    fn clear_empties_and_reports_count() {
        let cache = ExtractionCache::new();
        cache.insert(&mapping("x", "S"), vec![]);
        assert!(!cache.is_empty());
        assert_eq!(cache.clear(), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.clear(), 0);
    }

    #[test]
    fn invalidate_source_is_surgical() {
        let cache = ExtractionCache::new();
        cache.insert(&mapping("x", "S1"), vec!["1".into()]);
        cache.insert(&mapping("y", "S1"), vec!["2".into()]);
        cache.insert(&mapping("x", "S2"), vec!["3".into()]);
        assert_eq!(cache.invalidate_source("S1"), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&mapping("x", "S2")).is_some());
        assert_eq!(cache.invalidate_source("S1"), 0);
        assert_eq!(cache.invalidate_source("unregistered"), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ExtractionCache::with_capacity(2);
        let (a, b, c) = (mapping("a", "S"), mapping("b", "S"), mapping("c", "S"));
        cache.insert(&a, vec!["a".into()]);
        cache.insert(&b, vec!["b".into()]);
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get(&a).is_some());
        cache.insert(&c, vec!["c".into()]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache = ExtractionCache::with_capacity(2);
        let (a, b) = (mapping("a", "S"), mapping("b", "S"));
        cache.insert(&a, vec!["1".into()]);
        cache.insert(&b, vec!["2".into()]);
        cache.insert(&a, vec!["1b".into()]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&a).unwrap().as_slice(), ["1b"]);
    }
}
