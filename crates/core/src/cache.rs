//! Extraction-result caching.
//!
//! The paper notes mappings "should not need substantial maintenance
//! after being created" and sources "do not normally change their
//! structures" — the same stability argument makes extraction results
//! cacheable across queries. [`ExtractionCache`] memoizes the raw value
//! lists per `(source, rule)`; a repeat query serves those attributes
//! with zero simulated network cost.
//!
//! Scope and invalidation: registered sources are immutable snapshots
//! (`Arc`-shared), so entries never go stale within a deployment;
//! [`ExtractionCache::clear`] supports explicit refresh when an operator
//! swaps a source.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::mapping::AttributeMapping;

/// Cache key: source id, rule language, rule text, scenario.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    source: String,
    language: &'static str,
    rule: String,
    single_record: bool,
}

impl Key {
    fn of(mapping: &AttributeMapping) -> Self {
        Key {
            source: mapping.source().to_string(),
            language: mapping.rule().language(),
            rule: mapping.rule().text().to_string(),
            single_record: mapping.scenario() == crate::mapping::RecordScenario::SingleRecord,
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

/// A concurrent memo of extraction results.
#[derive(Debug, Default)]
pub struct ExtractionCache {
    entries: RwLock<HashMap<Key, Arc<Vec<String>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ExtractionCache {
    /// An empty cache.
    pub fn new() -> Self {
        ExtractionCache::default()
    }

    /// Looks up the values for a mapping.
    pub fn get(&self, mapping: &AttributeMapping) -> Option<Arc<Vec<String>>> {
        let hit = self.entries.read().get(&Key::of(mapping)).cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        if s2s_obs::enabled() {
            let name = if hit.is_some() {
                "s2s_extraction_cache_hits_total"
            } else {
                "s2s_extraction_cache_misses_total"
            };
            s2s_obs::global().counter(name).inc();
        }
        hit
    }

    /// Stores the values for a mapping.
    pub fn insert(&self, mapping: &AttributeMapping, values: Vec<String>) {
        self.entries.write().insert(Key::of(mapping), Arc::new(values));
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops every entry (e.g. after swapping a source snapshot).
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ExtractionRule, MappingModule, RecordScenario};
    use s2s_owl::Ontology;

    fn mapping(rule_text: &str, source: &str) -> AttributeMapping {
        let o = Ontology::builder("http://x.example/#")
            .class("A", None)
            .unwrap()
            .datatype_property("p", "A", "http://www.w3.org/2001/XMLSchema#string")
            .unwrap()
            .build()
            .unwrap();
        let mut m = MappingModule::new();
        m.register(
            &o,
            "thing.a.p".parse().unwrap(),
            ExtractionRule::TextRegex { pattern: rule_text.into(), group: 0 },
            source.into(),
            RecordScenario::MultiRecord,
        )
        .unwrap();
        let mapping = m.iter().next().unwrap().clone();
        mapping
    }

    #[test]
    fn miss_then_hit() {
        let cache = ExtractionCache::new();
        let m = mapping("x", "S");
        assert!(cache.get(&m).is_none());
        cache.insert(&m, vec!["a".into(), "b".into()]);
        assert_eq!(cache.get(&m).unwrap().as_slice(), ["a", "b"]);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_rules_and_sources_do_not_collide() {
        let cache = ExtractionCache::new();
        cache.insert(&mapping("x", "S1"), vec!["1".into()]);
        cache.insert(&mapping("x", "S2"), vec!["2".into()]);
        cache.insert(&mapping("y", "S1"), vec!["3".into()]);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&mapping("x", "S2")).unwrap().as_slice(), ["2"]);
    }

    #[test]
    fn clear_empties() {
        let cache = ExtractionCache::new();
        cache.insert(&mapping("x", "S"), vec![]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
