//! The Instance Generator (paper §2.6).
//!
//! "This module serializes the output data format and handles the
//! errors from the queries and from the extraction phases. […] The
//! ontology population process (OWL instance generation) is executed in
//! an automatic way" — because the extracted fragments are keyed by
//! ontology attribute paths, so assembling individuals is direct
//! mapping.
//!
//! Record grouping: within one source, multi-record attribute value
//! lists are positionally aligned (record *i* gets the *i*-th value of
//! every attribute); single-record attributes apply to every record of
//! the source. One individual is generated per `(source, record)`,
//! filtered by the query conditions.

use std::collections::BTreeMap;

use s2s_owl::{Ontology, PropertyKind, Reasoner};
use s2s_rdf::turtle::PrefixMap;
use s2s_rdf::vocab::{rdf as rdfv, xsd};
use s2s_rdf::{Graph, Iri, Literal, Term, Triple};

use crate::error::S2sError;
use crate::extract::{AttributeResult, ExtractionFailure, ExtractionReport};
use crate::mapping::RecordScenario;
use crate::query::QueryPlan;

/// A generated ontology individual, kept in structured form alongside
/// the RDF graph for convenient inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// The minted IRI.
    pub iri: Iri,
    /// The class the individual instantiates.
    pub class: Iri,
    /// The source that contributed it.
    pub source: String,
    /// Property values (datatype and object properties alike, as raw
    /// strings).
    pub values: BTreeMap<Iri, Vec<String>>,
}

impl Individual {
    /// The first value of `property`, if any.
    pub fn value(&self, property: &Iri) -> Option<&str> {
        self.values.get(property).and_then(|v| v.first()).map(String::as_str)
    }
}

/// The generated output: OWL instances plus the error report.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSet {
    /// The RDF graph holding all individuals (types materialized).
    pub graph: Graph,
    /// Structured view of the individuals that passed the conditions.
    pub individuals: Vec<Individual>,
    /// Extraction failures carried through for reporting (§2.6: the
    /// generator "is responsible for providing information about any
    /// error that has occurred during the extraction process or in the
    /// query").
    pub errors: Vec<ExtractionFailure>,
    /// Fraction of requested attributes answered (`1.0` = complete);
    /// degraded results annotate their rendered output with it.
    pub completeness: f64,
    /// Endpoint round trips (attempts) spent producing this set — the
    /// observable batching win: a batched query makes one trip per
    /// source instead of one per attribute.
    pub round_trips: u64,
    /// Attributes served from the extraction cache instead of the
    /// network (filled in by the middleware; `0` when generated
    /// directly from a report).
    pub cache_hits: u64,
}

/// Output serialization formats (§2.6: "the S2S middleware supports the
/// output format OWL, but other outputs can easily be adapted").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// OWL instances in RDF/XML — the paper's native output.
    OwlRdfXml,
    /// Turtle.
    Turtle,
    /// N-Triples.
    NTriples,
    /// Plain XML (ontology-shaped element tree).
    Xml,
    /// Plain text, one `subject property value` line per triple.
    Text,
}

/// Options for [`generate_with_options`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenerateOptions {
    /// Attach provenance triples (`s2sprov:extractedFrom "<source id>"`)
    /// to every generated individual.
    pub provenance: bool,
}

/// The provenance property IRI used when [`GenerateOptions::provenance`]
/// is enabled.
pub fn provenance_property() -> Iri {
    Iri::new("http://s2s.middleware/prov#extractedFrom").expect("valid")
}

/// Generates OWL instances from an extraction report (no provenance).
///
/// Individuals failing the plan's conditions are dropped; individuals
/// from object-property values are minted and typed by the property
/// range.
pub fn generate(ontology: &Ontology, plan: &QueryPlan, report: &ExtractionReport) -> InstanceSet {
    generate_with_options(ontology, plan, report, GenerateOptions::default())
}

/// Like [`generate`], with options.
pub fn generate_with_options(
    ontology: &Ontology,
    plan: &QueryPlan,
    report: &ExtractionReport,
    options: GenerateOptions,
) -> InstanceSet {
    let data_ns = data_namespace(ontology);
    let mut graph = Graph::new();
    let mut individuals = Vec::new();

    // Group results by source.
    let mut by_source: BTreeMap<String, Vec<&AttributeResult>> = BTreeMap::new();
    for r in &report.results {
        by_source.entry(r.mapping.source().to_string()).or_default().push(r);
    }

    for (source, results) in &by_source {
        // Record count: single-record attributes contribute 1; others
        // their value count.
        let records = results
            .iter()
            .map(|r| match r.mapping.scenario() {
                RecordScenario::SingleRecord => 1,
                RecordScenario::MultiRecord => r.values.len(),
            })
            .max()
            .unwrap_or(0);

        // The individual's class: the most specific class among the
        // contributing mappings (a record fed by `watch`-level mappings
        // is a Watch even when the query selected `product`).
        let mut record_class = plan.class.clone();
        for r in results {
            if ontology.is_subclass_of(r.mapping.class(), &record_class) {
                record_class = r.mapping.class().clone();
            }
        }

        for i in 0..records {
            let mut values: BTreeMap<Iri, Vec<String>> = BTreeMap::new();
            for r in results {
                let v = match r.mapping.scenario() {
                    // A single-record value applies to every record.
                    RecordScenario::SingleRecord => r.values.first(),
                    RecordScenario::MultiRecord => r.values.get(i),
                };
                if let Some(v) = v {
                    values.entry(r.mapping.property().clone()).or_default().push(v.clone());
                }
            }
            if values.is_empty() {
                continue;
            }
            // Apply the query condition tree.
            if let Some(tree) = &plan.condition {
                if !tree.matches(&values) {
                    continue;
                }
            }
            // Apply the projection after the condition: condition
            // attributes may be filtered on without being output.
            if let Some(projection) = &plan.projection {
                values.retain(|property, _| projection.contains(property));
                if values.is_empty() {
                    continue;
                }
            }
            let iri = mint_iri(&data_ns, &record_class, source, i);
            individuals.push(Individual {
                iri,
                class: record_class.clone(),
                source: source.clone(),
                values,
            });
        }
    }

    // Populate the graph.
    for ind in &individuals {
        graph.insert(Triple::new(ind.iri.clone(), rdfv::type_(), ind.class.clone()));
        if options.provenance {
            graph.insert(Triple::new(
                ind.iri.clone(),
                provenance_property(),
                Literal::string(ind.source.clone()),
            ));
        }
        for (property, values) in &ind.values {
            let def = ontology.property(property);
            for v in values {
                let object: Term = match def.map(|d| d.kind()) {
                    Some(PropertyKind::Object) => {
                        // Mint an individual for the referenced entity.
                        let range = def.and_then(|d| d.ranges().next().cloned());
                        let ref_iri = mint_ref_iri(&data_ns, range.as_ref(), v);
                        if let (Ok(ref_iri), Some(range)) = (&ref_iri, &range) {
                            graph.insert(Triple::new(
                                ref_iri.clone(),
                                rdfv::type_(),
                                range.clone(),
                            ));
                        }
                        match ref_iri {
                            Ok(iri) => Term::from(iri),
                            Err(_) => Term::from(Literal::string(v.clone())),
                        }
                    }
                    _ => Term::from(typed_literal(def.and_then(|d| d.ranges().next()), v)),
                };
                graph.insert(Triple::new(ind.iri.clone(), property.clone(), object));
            }
        }
    }

    // Materialize supertypes and inferred typings.
    let reasoner = Reasoner::new(ontology);
    reasoner.materialize(&mut graph);

    if s2s_obs::enabled() {
        let m = s2s_obs::global();
        m.counter("s2s_instances_generated_total").add(individuals.len() as u64);
        m.counter("s2s_instance_triples_total").add(graph.len() as u64);
    }

    InstanceSet {
        graph,
        individuals,
        errors: report.failures.clone(),
        completeness: report.completeness(),
        round_trips: report.resilience.values().map(|h| h.attempts).sum(),
        cache_hits: 0,
    }
}

/// Serializes an instance set in the requested format.
pub fn render(set: &InstanceSet, ontology: &Ontology, format: OutputFormat) -> String {
    let mut prefixes = PrefixMap::with_well_known();
    prefixes.insert("s", ontology.namespace());
    prefixes.insert("d", data_namespace(ontology));
    match format {
        OutputFormat::OwlRdfXml => s2s_rdf::rdfxml::serialize(&set.graph, &prefixes),
        OutputFormat::Turtle => s2s_rdf::turtle::serialize(&set.graph, &prefixes),
        OutputFormat::NTriples => s2s_rdf::ntriples::serialize(&set.graph),
        OutputFormat::Xml => render_xml(set),
        OutputFormat::Text => render_text(set),
    }
}

fn render_xml(set: &InstanceSet) -> String {
    use s2s_xml::Element;
    let mut root = Element::new("instances");
    // Degraded results carry their completeness so consumers can tell
    // a partial answer from a full one (§2.6 error reporting).
    if set.completeness < 1.0 {
        root = root.with_attribute("completeness", format!("{:.3}", set.completeness));
    }
    // Execution-cost telemetry (how many wire exchanges and cache
    // answers produced this set), omitted when zero.
    if set.round_trips > 0 {
        root = root.with_attribute("round-trips", set.round_trips.to_string());
    }
    if set.cache_hits > 0 {
        root = root.with_attribute("cache-hits", set.cache_hits.to_string());
    }
    for ind in &set.individuals {
        let mut e = Element::new(ind.class.local_name().to_string())
            .with_attribute("about", ind.iri.as_str())
            .with_attribute("source", ind.source.clone());
        for (p, values) in &ind.values {
            for v in values {
                e = e.with_child(Element::new(p.local_name().to_string()).with_text(v.clone()));
            }
        }
        root = root.with_child(e);
    }
    for err in &set.errors {
        root = root.with_child(
            Element::new("error")
                .with_attribute("attribute", err.attribute.clone())
                .with_attribute("source", err.source.clone())
                .with_text(err.error.to_string()),
        );
    }
    s2s_xml::serialize(&s2s_xml::Document::new(root))
}

fn render_text(set: &InstanceSet) -> String {
    let mut out = String::new();
    for ind in &set.individuals {
        out.push_str(&format!(
            "{} [{}] from {}\n",
            ind.iri.as_str(),
            ind.class.local_name(),
            ind.source
        ));
        for (p, values) in &ind.values {
            for v in values {
                out.push_str(&format!("  {} = {v}\n", p.local_name()));
            }
        }
    }
    for err in &set.errors {
        out.push_str(&format!("! {}/{}: {}\n", err.source, err.attribute, err.error));
    }
    if set.completeness < 1.0 {
        out.push_str(&format!("! degraded result: completeness {:.3}\n", set.completeness));
    }
    if set.round_trips > 0 {
        out.push_str(&format!("# network round trips: {}\n", set.round_trips));
    }
    if set.cache_hits > 0 {
        out.push_str(&format!("# cache hits: {}\n", set.cache_hits));
    }
    out
}

/// The namespace individuals are minted under.
pub fn data_namespace(ontology: &Ontology) -> String {
    let ns = ontology.namespace();
    let trimmed = ns.trim_end_matches(['#', '/']);
    format!("{trimmed}/data/")
}

fn mint_iri(data_ns: &str, class: &Iri, source: &str, index: usize) -> Iri {
    let class = class.local_name().to_ascii_lowercase();
    let source = sanitize(source);
    Iri::new(format!("{data_ns}{class}/{source}/{index}"))
        .expect("minted IRIs are valid by construction")
}

fn mint_ref_iri(data_ns: &str, range: Option<&Iri>, value: &str) -> Result<Iri, S2sError> {
    let class = range.map(|r| r.local_name().to_ascii_lowercase()).unwrap_or_else(|| "ref".into());
    let v = sanitize(value);
    Iri::new(format!("{data_ns}{class}/{v}")).map_err(S2sError::Rdf)
}

fn sanitize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('-');
        }
    }
    if out.is_empty() {
        out.push('x');
    }
    out
}

fn typed_literal(range: Option<&Iri>, value: &str) -> Literal {
    match range.map(Iri::as_str) {
        Some(xsd::INTEGER) => value
            .trim()
            .parse::<i64>()
            .map(Literal::integer)
            .unwrap_or_else(|_| Literal::string(value)),
        Some(xsd::DECIMAL) | Some(xsd::DOUBLE) => value
            .trim()
            .parse::<f64>()
            .map(|_| Literal::typed(value.trim(), Iri::new(xsd::DECIMAL).expect("valid")))
            .unwrap_or_else(|_| Literal::string(value)),
        Some(xsd::BOOLEAN) => match value.trim() {
            "true" | "1" => Literal::boolean(true),
            "false" | "0" => Literal::boolean(false),
            _ => Literal::string(value),
        },
        _ => Literal::string(value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{AttributeResult, ExtractionReport};
    use crate::mapping::{ExtractionRule, MappingModule, RecordScenario};
    use crate::query::{parse, plan};
    use s2s_netsim::SimDuration;
    use s2s_owl::Ontology;

    fn onto() -> Ontology {
        Ontology::builder("http://example.org/schema#")
            .class("Product", None)
            .unwrap()
            .class("Provider", None)
            .unwrap()
            .datatype_property("brand", "Product", xsd::STRING)
            .unwrap()
            .datatype_property("price", "Product", xsd::DECIMAL)
            .unwrap()
            .object_property("provider", "Product", "Provider")
            .unwrap()
            .build()
            .unwrap()
    }

    /// Builds an AttributeResult by registering a throwaway mapping.
    fn result(
        o: &Ontology,
        path: &str,
        source: &str,
        scenario: RecordScenario,
        values: &[&str],
    ) -> AttributeResult {
        let mut m = MappingModule::new();
        m.register(
            o,
            path.parse().unwrap(),
            ExtractionRule::TextRegex { pattern: "x".into(), group: 0 },
            source.into(),
            scenario,
        )
        .unwrap();
        let mapping = m.iter().next().unwrap().clone();
        AttributeResult {
            mapping,
            values: values.iter().map(|s| s.to_string()).collect(),
            elapsed: SimDuration::from_micros(10),
        }
    }

    fn report(results: Vec<AttributeResult>) -> ExtractionReport {
        ExtractionReport { results, ..Default::default() }
    }

    #[test]
    fn multi_record_alignment() {
        let o = onto();
        let p = plan(&parse("SELECT product").unwrap(), &o).unwrap();
        let rep = report(vec![
            result(
                &o,
                "thing.product.brand",
                "DB",
                RecordScenario::MultiRecord,
                &["Seiko", "Casio"],
            ),
            result(
                &o,
                "thing.product.price",
                "DB",
                RecordScenario::MultiRecord,
                &["129.99", "59.5"],
            ),
        ]);
        let set = generate(&o, &p, &rep);
        assert_eq!(set.individuals.len(), 2);
        let brand = o.property_iri("brand").unwrap();
        let price = o.property_iri("price").unwrap();
        assert_eq!(set.individuals[0].value(&brand), Some("Seiko"));
        assert_eq!(set.individuals[0].value(&price), Some("129.99"));
        assert_eq!(set.individuals[1].value(&brand), Some("Casio"));
        assert_eq!(set.individuals[1].value(&price), Some("59.5"));
    }

    #[test]
    fn single_record_value_shared_across_records() {
        let o = onto();
        let p = plan(&parse("SELECT product").unwrap(), &o).unwrap();
        let rep = report(vec![
            result(&o, "thing.product.brand", "S", RecordScenario::MultiRecord, &["A", "B"]),
            result(&o, "thing.product.provider", "S", RecordScenario::SingleRecord, &["TimeHouse"]),
        ]);
        let set = generate(&o, &p, &rep);
        assert_eq!(set.individuals.len(), 2);
        let provider = o.property_iri("provider").unwrap();
        assert_eq!(set.individuals[0].value(&provider), Some("TimeHouse"));
        assert_eq!(set.individuals[1].value(&provider), Some("TimeHouse"));
    }

    #[test]
    fn conditions_filter_individuals() {
        let o = onto();
        let p = plan(&parse("SELECT product WHERE brand='Seiko'").unwrap(), &o).unwrap();
        let rep = report(vec![result(
            &o,
            "thing.product.brand",
            "DB",
            RecordScenario::MultiRecord,
            &["Seiko", "Casio", "Seiko"],
        )]);
        let set = generate(&o, &p, &rep);
        assert_eq!(set.individuals.len(), 2);
        let brand = o.property_iri("brand").unwrap();
        assert!(set.individuals.iter().all(|i| i.value(&brand) == Some("Seiko")));
    }

    #[test]
    fn missing_condition_property_excludes() {
        let o = onto();
        let p = plan(&parse("SELECT product WHERE price<100").unwrap(), &o).unwrap();
        let rep = report(vec![result(
            &o,
            "thing.product.brand",
            "DB",
            RecordScenario::MultiRecord,
            &["Seiko"],
        )]);
        let set = generate(&o, &p, &rep);
        assert!(set.individuals.is_empty());
    }

    #[test]
    fn object_property_values_become_typed_individuals() {
        let o = onto();
        let p = plan(&parse("SELECT product").unwrap(), &o).unwrap();
        let rep = report(vec![
            result(&o, "thing.product.brand", "DB", RecordScenario::SingleRecord, &["Seiko"]),
            result(
                &o,
                "thing.product.provider",
                "DB",
                RecordScenario::SingleRecord,
                &["TimeHouse"],
            ),
        ]);
        let set = generate(&o, &p, &rep);
        let provider_class = o.class_iri("Provider").unwrap();
        let providers: Vec<_> = set.graph.instances_of(&provider_class).collect();
        assert_eq!(providers.len(), 1);
        assert!(providers[0].as_iri().unwrap().as_str().contains("provider/timehouse"));
    }

    #[test]
    fn graph_gets_typed_literals() {
        let o = onto();
        let p = plan(&parse("SELECT product").unwrap(), &o).unwrap();
        let rep = report(vec![result(
            &o,
            "thing.product.price",
            "DB",
            RecordScenario::SingleRecord,
            &["59.5"],
        )]);
        let set = generate(&o, &p, &rep);
        let price = o.property_iri("price").unwrap();
        let lit = set
            .graph
            .match_pattern(None, Some(&price), None)
            .next()
            .unwrap()
            .object()
            .as_literal()
            .cloned()
            .unwrap();
        assert_eq!(lit.datatype().as_str(), xsd::DECIMAL);
        assert_eq!(lit.as_decimal(), Some(59.5));
    }

    #[test]
    fn errors_carried_into_output() {
        let o = onto();
        let p = plan(&parse("SELECT product").unwrap(), &o).unwrap();
        let mut rep = report(vec![result(
            &o,
            "thing.product.brand",
            "DB",
            RecordScenario::SingleRecord,
            &["Seiko"],
        )]);
        rep.failures.push(crate::extract::ExtractionFailure {
            attribute: "thing.product.price".into(),
            source: "DB2".into(),
            error: S2sError::UnknownSource { id: "DB2".into() },
        });
        let set = generate(&o, &p, &rep);
        assert_eq!(set.errors.len(), 1);
        let xml = render(&set, &o, OutputFormat::Xml);
        assert!(xml.contains("<error"), "{xml}");
        let text = render(&set, &o, OutputFormat::Text);
        assert!(text.contains("! DB2/thing.product.price"), "{text}");
    }

    #[test]
    fn all_formats_render_nonempty() {
        let o = onto();
        let p = plan(&parse("SELECT product").unwrap(), &o).unwrap();
        let rep = report(vec![result(
            &o,
            "thing.product.brand",
            "DB",
            RecordScenario::SingleRecord,
            &["Seiko"],
        )]);
        let set = generate(&o, &p, &rep);
        for fmt in [
            OutputFormat::OwlRdfXml,
            OutputFormat::Turtle,
            OutputFormat::NTriples,
            OutputFormat::Xml,
            OutputFormat::Text,
        ] {
            let out = render(&set, &o, fmt);
            assert!(out.contains("Seiko"), "{fmt:?}: {out}");
        }
        // The OWL output uses a typed node element (Fig. 2 style).
        let owl = render(&set, &o, OutputFormat::OwlRdfXml);
        assert!(owl.contains("<s:Product"), "{owl}");
    }

    #[test]
    fn turtle_output_reparses_to_same_graph() {
        let o = onto();
        let p = plan(&parse("SELECT product").unwrap(), &o).unwrap();
        let rep = report(vec![
            result(&o, "thing.product.brand", "DB", RecordScenario::MultiRecord, &["A", "B"]),
            result(&o, "thing.product.price", "DB", RecordScenario::MultiRecord, &["1", "2.5"]),
        ]);
        let set = generate(&o, &p, &rep);
        let ttl = render(&set, &o, OutputFormat::Turtle);
        let parsed = s2s_rdf::turtle::parse(&ttl).unwrap();
        assert_eq!(parsed, set.graph);
    }

    #[test]
    fn empty_report_yields_empty_set() {
        let o = onto();
        let p = plan(&parse("SELECT product").unwrap(), &o).unwrap();
        let set = generate(&o, &p, &report(vec![]));
        assert!(set.individuals.is_empty());
        assert!(set.graph.is_empty());
    }
}
