//! Mapping-specification files.
//!
//! The paper stores attribute-repository entries as associations like
//! `thing.product.brand = watch.webl, wpage_81` (§2.3.1 step 3), with
//! the rule code living in a referenced module. This module provides a
//! textual format carrying both halves, so a whole deployment's mapping
//! can be versioned as one document and loaded with
//! [`crate::middleware::S2s::load_spec`]:
//!
//! ```text
//! # watches.s2smap — comments start with '#'
//!
//! map thing.product.brand = webl, wpage_81, single {
//!     var b = TagTexts(Text(PAGE), "b")[0];
//! }
//!
//! map thing.product.watch.case = sql(case_m), DB_ID_45, multi {
//!     SELECT case_m FROM watches ORDER BY id
//! }
//!
//! map thing.product.watch.price = xpath, XML_7, multi {
//!     //watch/price/text()
//! }
//!
//! map thing.product.brand = regex(1), txt_9, multi {
//!     brand: (\w+)
//! }
//! ```
//!
//! Header: `map <attribute path> = <language>[(arg)], <source id>,
//! <single|multi> {`. The rule body runs to a line containing only `}`.
//! Languages: `sql(column)`, `xpath`, `webl`, `regex(group)`,
//! `xquery`.

use crate::error::S2sError;
use crate::mapping::{ExtractionRule, RecordScenario};

/// One parsed `map` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingSpec {
    /// The attribute path text.
    pub path: String,
    /// The extraction rule.
    pub rule: ExtractionRule,
    /// The source id.
    pub source: String,
    /// Single- or multi-record scenario.
    pub scenario: RecordScenario,
}

/// Parses a mapping-specification document.
///
/// # Errors
///
/// Returns [`S2sError::QuerySyntax`] (reusing the middleware's syntax
/// error type, with the byte offset of the offending line) for malformed
/// headers, unknown languages, or unterminated bodies.
pub fn parse(input: &str) -> Result<Vec<MappingSpec>, S2sError> {
    let mut specs = Vec::new();
    let mut lines = input.lines().enumerate().peekable();
    let mut offset = 0usize;
    let err = |offset: usize, message: String| S2sError::QuerySyntax { position: offset, message };

    while let Some((_, raw)) = lines.next() {
        let line_start = offset;
        offset += raw.len() + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix("map ") else {
            return Err(err(line_start, format!("expected `map`, found `{line}`")));
        };
        let Some((path, rest)) = rest.split_once('=') else {
            return Err(err(line_start, "expected `=` in map header".to_string()));
        };
        let path = path.trim().to_string();
        let rest = rest.trim();
        let Some(header) = rest.strip_suffix('{') else {
            return Err(err(line_start, "map header must end with `{`".to_string()));
        };
        let parts: Vec<&str> = header.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(err(
                line_start,
                format!("expected `language, source, scenario`, found `{header}`"),
            ));
        }
        let (lang, source, scenario) = (parts[0], parts[1], parts[2]);
        let scenario = match scenario {
            "single" => RecordScenario::SingleRecord,
            "multi" => RecordScenario::MultiRecord,
            other => {
                return Err(err(
                    line_start,
                    format!("scenario must be `single` or `multi`, found `{other}`"),
                ))
            }
        };

        // Body: up to a line that is exactly `}`.
        let mut body = String::new();
        let mut closed = false;
        for (_, raw) in lines.by_ref() {
            offset += raw.len() + 1;
            if raw.trim() == "}" {
                closed = true;
                break;
            }
            body.push_str(raw);
            body.push('\n');
        }
        if !closed {
            return Err(err(line_start, format!("unterminated body for `{path}`")));
        }
        let body_trimmed = body.trim().to_string();

        let rule = parse_language(lang, &body_trimmed, &body).map_err(|m| err(line_start, m))?;
        specs.push(MappingSpec { path, rule, source: source.to_string(), scenario });
    }
    Ok(specs)
}

fn parse_language(
    lang: &str,
    body_trimmed: &str,
    body_raw: &str,
) -> Result<ExtractionRule, String> {
    let (name, arg) = match lang.split_once('(') {
        Some((name, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("missing `)` in language `{lang}`"))?;
            (name.trim(), Some(arg.trim()))
        }
        None => (lang, None),
    };
    match (name, arg) {
        ("sql", Some(column)) if !column.is_empty() => {
            Ok(ExtractionRule::Sql { query: body_trimmed.to_string(), column: column.to_string() })
        }
        ("sql", _) => Err("sql requires a column: `sql(column)`".to_string()),
        ("xpath", None) => Ok(ExtractionRule::XPath { path: body_trimmed.to_string() }),
        ("xquery", None) => Ok(ExtractionRule::XQuery { query: body_trimmed.to_string() }),
        ("webl", None) => Ok(ExtractionRule::Webl { program: body_raw.to_string() }),
        ("regex", arg) => {
            let group = match arg {
                Some(g) => g.parse().map_err(|_| format!("bad regex group `{g}`"))?,
                None => 0,
            };
            Ok(ExtractionRule::TextRegex { pattern: body_trimmed.to_string(), group })
        }
        (other, _) => Err(format!("unknown rule language `{other}`")),
    }
}

/// Serializes specs back to the textual format (round-trip support for
/// tooling).
pub fn render(specs: &[MappingSpec]) -> String {
    let mut out = String::new();
    for s in specs {
        let scenario = match s.scenario {
            RecordScenario::SingleRecord => "single",
            RecordScenario::MultiRecord => "multi",
        };
        let lang = match &s.rule {
            ExtractionRule::Sql { column, .. } => format!("sql({column})"),
            ExtractionRule::XPath { .. } => "xpath".to_string(),
            ExtractionRule::XQuery { .. } => "xquery".to_string(),
            ExtractionRule::Webl { .. } => "webl".to_string(),
            ExtractionRule::TextRegex { group, .. } => format!("regex({group})"),
        };
        out.push_str(&format!("map {} = {lang}, {}, {scenario} {{\n", s.path, s.source));
        for line in s.rule.text().lines() {
            out.push_str("    ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("}\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
# test spec
map thing.product.brand = webl, wpage_81, single {
    var b = TagTexts(Text(PAGE), "b")[0];
}

map thing.product.watch.case = sql(case_m), DB_ID_45, multi {
    SELECT case_m FROM watches ORDER BY id
}

map thing.product.watch.price = xpath, XML_7, multi {
    //watch/price/text()
}

map thing.product.brand = regex(1), txt_9, multi {
    brand: (\w+)
}
"#;

    #[test]
    fn parses_all_languages() {
        let specs = parse(DOC).unwrap();
        assert_eq!(specs.len(), 4);
        assert!(matches!(specs[0].rule, ExtractionRule::Webl { .. }));
        assert_eq!(specs[0].scenario, RecordScenario::SingleRecord);
        assert_eq!(specs[0].source, "wpage_81");
        match &specs[1].rule {
            ExtractionRule::Sql { query, column } => {
                assert_eq!(column, "case_m");
                assert!(query.starts_with("SELECT"));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(specs[2].rule, ExtractionRule::XPath { .. }));
        match &specs[3].rule {
            ExtractionRule::TextRegex { pattern, group } => {
                assert_eq!(pattern, r"brand: (\w+)");
                assert_eq!(*group, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_render() {
        let specs = parse(DOC).unwrap();
        let text = render(&specs);
        let specs2 = parse(&text).unwrap();
        assert_eq!(specs.len(), specs2.len());
        for (a, b) in specs.iter().zip(&specs2) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.source, b.source);
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.rule.language(), b.rule.language());
            assert_eq!(a.rule.text().trim(), b.rule.text().trim());
        }
    }

    #[test]
    fn multiline_webl_body_preserved() {
        let doc = "map a.b = webl, S, single {\n    var x = \"1\";\n    var y = x + \"2\";\n}\n";
        let specs = parse(doc).unwrap();
        assert!(specs[0].rule.text().contains("var y"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("nonsense line").is_err());
        assert!(parse("map a.b = sql, S, multi {\nSELECT 1\n}").is_err()); // sql without column
        assert!(parse("map a.b = xpath, S, multi {\n//x").is_err()); // unterminated
        assert!(parse("map a.b = xpath, S, sometimes {\n//x\n}").is_err()); // bad scenario
        assert!(parse("map a.b = klingon, S, multi {\nx\n}").is_err()); // bad language
        assert!(parse("map a.b = xpath, S, multi\n").is_err()); // no brace
        assert!(parse("map a.b xpath, S, multi {\nx\n}").is_err()); // no `=`
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let doc = "# only comments\n\n# here\n";
        assert!(parse(doc).unwrap().is_empty());
    }

    #[test]
    fn regex_default_group() {
        let specs = parse("map a.b = regex, S, multi {\nfoo\n}").unwrap();
        assert!(matches!(specs[0].rule, ExtractionRule::TextRegex { group: 0, .. }));
    }
}
