//! Property tests for the middleware: the full pipeline returns exactly
//! the records matching the query, across strategies and source types.

use std::sync::Arc;

use proptest::prelude::*;
use s2s_core::extract::Strategy as ExecStrategy;
use s2s_core::mapping::{ExtractionRule, RecordScenario};
use s2s_core::query::{condition_matches, CondOp, ResolvedCondition};
use s2s_core::source::Connection;
use s2s_core::S2s;
use s2s_minidb::Database;
use s2s_owl::Ontology;
use s2s_rdf::Iri;

fn ontology() -> Ontology {
    Ontology::builder("http://prop.example/schema#")
        .class("Product", None)
        .unwrap()
        .datatype_property("brand", "Product", "http://www.w3.org/2001/XMLSchema#string")
        .unwrap()
        .datatype_property("price", "Product", "http://www.w3.org/2001/XMLSchema#decimal")
        .unwrap()
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
struct Row {
    brand: String,
    price: i64,
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        ("[A-D]", 0i64..200).prop_map(|(brand, price)| Row { brand, price }),
        0..30,
    )
}

fn deploy(rows: &[Row], strategy: ExecStrategy) -> S2s {
    let mut db = Database::new("d");
    db.execute("CREATE TABLE p (id INTEGER PRIMARY KEY, brand TEXT, price REAL)").unwrap();
    for (i, r) in rows.iter().enumerate() {
        db.execute(&format!("INSERT INTO p VALUES ({}, '{}', {})", i + 1, r.brand, r.price))
            .unwrap();
    }
    // The same rows as an XML source.
    let mut xml = String::from("<c>");
    for r in rows {
        xml.push_str(&format!("<p><b>{}</b><v>{}</v></p>", r.brand, r.price));
    }
    xml.push_str("</c>");

    let mut s2s = S2s::new(ontology()).with_strategy(strategy);
    s2s.register_source("DB", Connection::Database { db: Arc::new(db) }).unwrap();
    s2s.register_source(
        "XML",
        Connection::Xml { document: Arc::new(s2s_xml::parse(&xml).unwrap()) },
    )
    .unwrap();
    s2s.register_attribute(
        "thing.product.brand",
        ExtractionRule::Sql {
            query: "SELECT brand FROM p ORDER BY id".into(),
            column: "brand".into(),
        },
        "DB",
        RecordScenario::MultiRecord,
    )
    .unwrap();
    s2s.register_attribute(
        "thing.product.price",
        ExtractionRule::Sql {
            query: "SELECT price FROM p ORDER BY id".into(),
            column: "price".into(),
        },
        "DB",
        RecordScenario::MultiRecord,
    )
    .unwrap();
    s2s.register_attribute(
        "thing.product.brand",
        ExtractionRule::XPath { path: "//p/b/text()".into() },
        "XML",
        RecordScenario::MultiRecord,
    )
    .unwrap();
    s2s.register_attribute(
        "thing.product.price",
        ExtractionRule::XPath { path: "//p/v/text()".into() },
        "XML",
        RecordScenario::MultiRecord,
    )
    .unwrap();
    s2s
}

proptest! {
    /// SELECT with no conditions returns every record from every source.
    #[test]
    fn unconditional_query_total(rows in arb_rows()) {
        let s2s = deploy(&rows, ExecStrategy::Serial);
        let outcome = s2s.query("SELECT product").unwrap();
        prop_assert!(outcome.errors().is_empty());
        prop_assert_eq!(outcome.individuals().len(), rows.len() * 2);
    }

    /// Equality filters agree with a direct count, per source.
    #[test]
    fn brand_filter_agrees(rows in arb_rows(), probe in "[A-E]") {
        let s2s = deploy(&rows, ExecStrategy::Serial);
        let outcome = s2s.query(&format!("SELECT product WHERE brand='{probe}'")).unwrap();
        let expect = rows.iter().filter(|r| r.brand == probe).count() * 2;
        prop_assert_eq!(outcome.individuals().len(), expect);
    }

    /// Numeric range filters agree with a direct count.
    #[test]
    fn price_filter_agrees(rows in arb_rows(), threshold in 0i64..200) {
        let s2s = deploy(&rows, ExecStrategy::Serial);
        let outcome = s2s.query(&format!("SELECT product WHERE price<{threshold}")).unwrap();
        let expect = rows.iter().filter(|r| r.price < threshold).count() * 2;
        prop_assert_eq!(outcome.individuals().len(), expect);
    }

    /// Conjunctions intersect.
    #[test]
    fn conjunction_intersects(rows in arb_rows(), probe in "[A-D]", threshold in 0i64..200) {
        let s2s = deploy(&rows, ExecStrategy::Serial);
        let q = format!("SELECT product WHERE brand='{probe}' AND price>={threshold}");
        let outcome = s2s.query(&q).unwrap();
        let expect =
            rows.iter().filter(|r| r.brand == probe && r.price >= threshold).count() * 2;
        prop_assert_eq!(outcome.individuals().len(), expect);
    }

    /// Serial and parallel strategies produce the same answer set.
    #[test]
    fn strategy_invariance(rows in arb_rows(), workers in 2usize..8) {
        let serial = deploy(&rows, ExecStrategy::Serial);
        let parallel = deploy(&rows, ExecStrategy::Parallel { workers });
        let a = serial.query("SELECT product").unwrap();
        let b = parallel.query("SELECT product").unwrap();
        let key = |o: &s2s_core::middleware::QueryOutcome| {
            let mut v: Vec<String> =
                o.individuals().iter().map(|i| format!("{}:{:?}", i.source, i.values)).collect();
            v.sort();
            v
        };
        prop_assert_eq!(key(&a), key(&b));
    }

    /// Both materializations of the same records answer identically
    /// (schema heterogeneity is invisible at the semantic layer).
    #[test]
    fn cross_source_agreement(rows in arb_rows(), probe in "[A-D]") {
        let s2s = deploy(&rows, ExecStrategy::Serial);
        let outcome = s2s.query(&format!("SELECT product WHERE brand='{probe}'")).unwrap();
        let db_count = outcome.individuals().iter().filter(|i| i.source == "DB").count();
        let xml_count = outcome.individuals().iter().filter(|i| i.source == "XML").count();
        prop_assert_eq!(db_count, xml_count);
    }

    /// The graph triple count is consistent with the structured view.
    #[test]
    fn graph_consistent_with_individuals(rows in arb_rows()) {
        let s2s = deploy(&rows, ExecStrategy::Serial);
        let outcome = s2s.query("SELECT product").unwrap();
        let type_triples = outcome
            .instances
            .graph
            .match_pattern(None, Some(&s2s_rdf::vocab::rdf::type_()), None)
            .count();
        // Exactly one type triple per individual (no deeper hierarchy).
        prop_assert_eq!(type_triples, outcome.individuals().len());
    }

    /// S2SQL parsing never panics.
    #[test]
    fn s2sql_parser_total(q in any::<String>()) {
        let _ = s2s_core::query::parse(&q);
    }

    /// condition_matches: Eq/Ne are complementary on comparable values;
    /// Lt/Ge and Le/Gt are complementary for numeric pairs.
    #[test]
    fn condition_complements(value in -1000i64..1000, bound in -1000i64..1000) {
        let prop = Iri::new("http://prop.example/p").unwrap();
        let c = |op| ResolvedCondition { property: prop.clone(), op, value: bound.to_string() };
        let v = value.to_string();
        prop_assert_ne!(condition_matches(&c(CondOp::Eq), &v), condition_matches(&c(CondOp::Ne), &v));
        prop_assert_ne!(condition_matches(&c(CondOp::Lt), &v), condition_matches(&c(CondOp::Ge), &v));
        prop_assert_ne!(condition_matches(&c(CondOp::Le), &v), condition_matches(&c(CondOp::Gt), &v));
    }
}
